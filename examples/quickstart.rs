//! Quickstart: the complete enrichment pipeline on the paper's own `s27`.
//!
//! ```console
//! $ cargo run --example quickstart
//! ```

use path_delay_atpg::prelude::*;

fn main() {
    // 1. The circuit: the combinational core of ISCAS-89 s27, with the
    //    exact line numbering of the paper's Figure 1.
    let circuit = s27();
    println!(
        "s27: {} lines ({} inputs, {} outputs), {} paths, critical length {}",
        circuit.line_count(),
        circuit.inputs().len(),
        circuit.outputs().len(),
        circuit.path_count(),
        circuit.critical_delay(),
    );

    // 2. Enumerate the faults of the longest paths (the cap N_P does not
    //    bind on a circuit this small) and drop undetectable ones.
    let paths = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
    let (faults, stats) = FaultList::build(&circuit, &paths.store);
    println!(
        "fault population: {} candidates, {} detectable ({} + {} eliminated)",
        stats.candidates,
        faults.len(),
        stats.rule1_conflicts,
        stats.rule2_conflicts,
    );

    // 3. Split into P0 (must detect) and P1 (detect for free).
    let split = TargetSplit::by_cumulative_length(&faults, 10);
    println!(
        "split at length L_{} = {}: |P0| = {}, |P1| = {}",
        split.i0(),
        split.cutoffs()[0],
        split.p0().len(),
        split.p1().len(),
    );

    // 4. Basic generation (value-based compaction) for P0 alone...
    let basic = BasicAtpg::new(&circuit).with_seed(2002).run(split.p0());
    println!(
        "basic:  {} tests, {}/{} P0 faults detected",
        basic.tests().len(),
        basic.detected_in_set(0),
        split.p0().len(),
    );

    // ...and how much of P1 those tests catch by accident.
    let everything: FaultList = split
        .p0()
        .iter()
        .chain(split.p1().iter())
        .cloned()
        .collect();
    let accidental = basic.tests().coverage(&circuit, &everything);
    println!(
        "        accidental P0∪P1 coverage: {}/{}",
        accidental.detected_count(),
        everything.len(),
    );

    // 5. The paper's enrichment: same test count driver, P1 targeted too.
    let enriched = EnrichmentAtpg::new(&circuit).with_seed(2002).run(&split);
    println!(
        "enrich: {} tests, {}/{} P0 faults, {}/{} P0∪P1 faults detected",
        enriched.tests().len(),
        enriched.detected_in_set(0),
        split.p0().len(),
        enriched.detected_total(),
        split.total(),
    );

    // 6. Every test is a two-pattern vector pair over the 7 inputs.
    if let Some(test) = enriched.tests().tests().first() {
        println!("first test: {test}");
    }
}
