//! Non-unit delay models (a paper extension): the paper measures path
//! length as the number of lines, noting "other delay models can be
//! accommodated". This example installs a per-gate-type delay table on
//! `s27`, shows how the critical paths change, and re-runs the split.
//!
//! ```console
//! $ cargo run --example delay_models
//! ```

use path_delay_atpg::prelude::*;
use pdf_netlist::LineKind;

fn report(tag: &str, circuit: &pdf_netlist::Circuit) {
    let paths = PathEnumerator::new(circuit).with_cap(100_000).enumerate();
    let (faults, _) = FaultList::build(circuit, &paths.store);
    let histogram = LengthHistogram::from_lengths(faults.delays());
    println!("{tag}: critical delay {}", circuit.critical_delay());
    println!("  longest path(s):");
    for entry in paths.store.iter().take(3) {
        println!("    {} (delay {})", entry.path, entry.delay);
    }
    println!(
        "  {} detectable faults over {} length classes",
        faults.len(),
        histogram.len(),
    );
}

fn main() {
    // Unit model: every line (gate, branch, input) costs 1.
    let unit = s27();
    report("unit delay model", &unit);

    // Technology-flavoured model: inverters are fast, NAND/NOR medium,
    // AND/OR (compound cells) slow; branches model interconnect.
    let mut weighted = s27();
    weighted.set_delays(|_, line| match line.kind() {
        LineKind::Input => 1,
        LineKind::Branch { .. } => 2,
        LineKind::Gate(g) => match g {
            pdf_logic::GateKind::Not | pdf_logic::GateKind::Buf => 1,
            pdf_logic::GateKind::Nand | pdf_logic::GateKind::Nor => 3,
            pdf_logic::GateKind::And | pdf_logic::GateKind::Or => 4,
            pdf_logic::GateKind::Xor | pdf_logic::GateKind::Xnor => 6,
        },
    });
    println!();
    report("per-gate-type delay model", &weighted);

    // The ranking of paths changes: enumeration, splits and the whole
    // enrichment pipeline follow the installed model transparently.
    let paths = PathEnumerator::new(&weighted).with_cap(100_000).enumerate();
    let (faults, _) = FaultList::build(&weighted, &paths.store);
    let split = TargetSplit::by_cumulative_length(&faults, 10);
    let outcome = EnrichmentAtpg::new(&weighted).with_seed(1).run(&split);
    println!(
        "\nenrichment under the weighted model: {} tests, {}/{} faults",
        outcome.tests().len(),
        outcome.detected_total(),
        split.total(),
    );
}
