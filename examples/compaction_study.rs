//! Compares the paper's four compaction strategies (Sec. 2.2) on one
//! circuit: test count, fault coverage, and the work the justifier did.
//!
//! ```console
//! $ cargo run --release --example compaction_study [circuit]
//! ```

use path_delay_atpg::prelude::*;
use pdf_atpg::{AtpgConfig, Compaction};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "b03".to_owned());
    let circuit = if name == "s27" {
        s27()
    } else {
        match pdf_netlist::stand_in_profile(&name) {
            Some(p) => p.generate().to_circuit().expect("combinational"),
            None => {
                eprintln!("unknown circuit `{name}`");
                std::process::exit(1);
            }
        }
    };

    let paths = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
    let (faults, _) = FaultList::build(&circuit, &paths.store);
    let split = TargetSplit::by_cumulative_length(&faults, 1_000);
    println!(
        "{name}: targeting |P0| = {} faults (of {} detectable)",
        split.p0().len(),
        faults.len(),
    );
    println!(
        "\n{:<10} {:>7} {:>10} {:>9} {:>12} {:>12} {:>10}",
        "heuristic", "tests", "detected", "aborted", "sec.accepts", "free accepts", "seconds"
    );

    for compaction in Compaction::ALL {
        let config = AtpgConfig {
            compaction,
            ..AtpgConfig::default()
        };
        let start = std::time::Instant::now();
        let outcome = BasicAtpg::new(&circuit).with_config(config).run(split.p0());
        let seconds = start.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>7} {:>10} {:>9} {:>12} {:>12} {:>10.2}",
            compaction.label(),
            outcome.tests().len(),
            outcome.detected_in_set(0),
            outcome.stats().aborted_primaries,
            outcome.stats().secondary_accepts,
            outcome.stats().free_accepts,
            seconds,
        );
    }

    println!(
        "\nExpected shape (paper Tables 3-4): all heuristics detect nearly \
         the same faults; every compaction heuristic needs far fewer tests \
         than `uncomp`."
    );
}
