//! Bringing your own circuit: parse `.bench` text (sequential, with an
//! XOR), extract the combinational core, decompose parity gates, and run
//! path delay fault analysis on the result.
//!
//! ```console
//! $ cargo run --example custom_circuit
//! ```

use path_delay_atpg::prelude::*;

const MY_DESIGN: &str = "\
# a toy accumulator slice
INPUT(d0)
INPUT(d1)
INPUT(en)
OUTPUT(out)
q = DFF(nxt)
sum = XOR(d0, d1)
gated = AND(sum, en)
nxt = OR(gated, fb)
fb = AND(q, en)
out = NOT(q)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse and validate.
    let netlist = parse_bench(MY_DESIGN, "acc_slice")?;
    println!(
        "parsed `{}`: {} inputs, {} outputs, {} gates, {} flip-flops",
        netlist.name(),
        netlist.input_count(),
        netlist.output_count(),
        netlist.gate_count(),
        netlist.dff_count(),
    );

    // Sequential circuits are tested through their combinational core:
    // flip-flop outputs become pseudo inputs, data inputs pseudo outputs.
    let core = netlist.combinational_core();
    println!(
        "combinational core: {} inputs, {} outputs",
        core.input_count(),
        core.output_count(),
    );

    // Robust sensitization needs controlling values, so parity gates are
    // decomposed into AND/OR/NOT networks first.
    let circuit = core.decompose_parity().to_circuit()?;
    println!(
        "line-level: {} lines ({} branches), {} physical paths, critical \
         length {}",
        circuit.line_count(),
        circuit.branch_count(),
        circuit.path_count(),
        circuit.critical_delay(),
    );

    // Enumerate every path (the cap cannot bind here) and list the fault
    // population with its per-fault requirements.
    let paths = PathEnumerator::new(&circuit).with_cap(100_000).enumerate();
    let (faults, stats) = FaultList::build(&circuit, &paths.store);
    println!(
        "\nfaults: {} candidates, {} detectable",
        stats.candidates,
        faults.len(),
    );
    for entry in faults.iter().take(5) {
        println!("  {}  A(p) = {}", entry.fault, entry.assignments);
    }

    // Generate a compact robust test set for everything.
    let outcome = BasicAtpg::new(&circuit).with_seed(42).run(&faults);
    println!(
        "\n{} two-pattern tests detect {}/{} faults:",
        outcome.tests().len(),
        outcome.detected_total(),
        faults.len(),
    );
    for (i, test) in outcome.tests().tests().iter().enumerate() {
        println!("  t{i}: {test}");
    }

    // Export for visualization.
    println!("\nGraphviz available via pdf_netlist::to_dot (not printed).");
    let _dot = pdf_netlist::to_dot(&circuit);
    Ok(())
}
