//! The paper's headline experiment on one benchmark-scale circuit: how
//! many next-to-longest-path faults does a compact test set miss, and how
//! many does enrichment recover without adding tests?
//!
//! ```console
//! $ cargo run --release --example enrichment_flow [circuit]
//! ```
//!
//! `circuit` is one of the synthetic stand-ins (`s641`, `s953`, `s1196`,
//! `s1423`, `s1488`, `b03`, `b04`, `b09`, `s1423*`, `s5378*`, `s9234*`);
//! default `b09`.

use path_delay_atpg::prelude::*;
use pdf_atpg::AtpgConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "b09".to_owned());
    let Some(profile) = pdf_netlist::stand_in_profile(&name) else {
        eprintln!("unknown circuit `{name}`");
        std::process::exit(1);
    };
    let circuit = profile
        .generate()
        .to_circuit()
        .expect("stand-ins are combinational");
    println!(
        "{name}: {} lines, {} inputs, {} paths, critical length {}",
        circuit.line_count(),
        circuit.inputs().len(),
        circuit.path_count(),
        circuit.critical_delay(),
    );

    // The paper's workload: N_P = 10000 fault cap, N_P0 = 1000.
    let paths = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
    let (faults, _) = FaultList::build(&circuit, &paths.store);
    let split = TargetSplit::by_cumulative_length(&faults, 1_000);
    println!(
        "P = {} detectable faults; P0 = {} (lengths >= {}), P1 = {}",
        faults.len(),
        split.p0().len(),
        split.cutoffs()[0],
        split.p1().len(),
    );

    // The length spectrum around the cut (Table 2's shape).
    let histogram = LengthHistogram::from_lengths(faults.delays());
    println!("\nlength classes (top 10):");
    println!("{:>4} {:>8} {:>10}", "i", "L_i", "N_p(L_i)");
    for (i, class) in histogram.classes().iter().take(10).enumerate() {
        println!("{i:>4} {:>8} {:>10}", class.length, class.cumulative);
    }

    let config = AtpgConfig::default();

    println!("\nbasic (value-based compaction), targets = P0 only:");
    let basic = BasicAtpg::new(&circuit)
        .with_config(config.clone())
        .run(split.p0());
    let everything: FaultList = split
        .p0()
        .iter()
        .chain(split.p1().iter())
        .cloned()
        .collect();
    let accidental = basic.tests().coverage(&circuit, &everything);
    println!(
        "  {} tests; P0: {}/{}; accidental P0∪P1: {}/{}",
        basic.tests().len(),
        basic.detected_in_set(0),
        split.p0().len(),
        accidental.detected_count(),
        everything.len(),
    );

    println!("\nenrichment, targets = P0 then P1:");
    let enriched = EnrichmentAtpg::new(&circuit)
        .with_config(config)
        .run(&split);
    println!(
        "  {} tests; P0: {}/{}; P0∪P1: {}/{}",
        enriched.tests().len(),
        enriched.detected_in_set(0),
        split.p0().len(),
        enriched.detected_total(),
        split.total(),
    );

    let p1_accidental = accidental.detected_count() - basic.detected_in_set(0);
    let p1_enriched = enriched.detected_total() - enriched.detected_in_set(0);
    println!(
        "\nP1 faults detected: {} accidentally vs {} enriched — {} extra \
         faults at {} extra tests",
        p1_accidental,
        p1_enriched,
        p1_enriched.saturating_sub(p1_accidental),
        enriched.tests().len() as i64 - basic.tests().len() as i64,
    );
}
