//! End-to-end matrix harness tests: a clean cross-product has no
//! violations, an injected failure is found, auto-minimized into a
//! deterministic smallest repro regardless of worker count, and the
//! artifact replays to the same failure.
//!
//! The worker-count test mutates `PDF_SIM_THREADS` (a process-global),
//! so these tests live in their own binary and serialize on a mutex.

use std::sync::{Arc, Mutex, PoisonError};

use pdf_matrix::{CellConfig, Invariant, MatrixAxes, MatrixRunner, ReproCase, RunMode};
use pdf_sim::{SimBackend, SimWidth};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: Option<&str>, body: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let saved = std::env::var("PDF_SIM_THREADS").ok();
    match threads {
        Some(v) => std::env::set_var("PDF_SIM_THREADS", v),
        None => std::env::remove_var("PDF_SIM_THREADS"),
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    match saved {
        Some(v) => std::env::set_var("PDF_SIM_THREADS", v),
        None => std::env::remove_var("PDF_SIM_THREADS"),
    }
    result.unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// A fast s27-only matrix that still exercises every invariant family:
/// both backends, both event modes, uncompacted + compacted, two k
/// values, learning on/off, direct + checkpoint/resume, budget on/off,
/// serial + pooled generation.
fn s27_axes() -> MatrixAxes {
    MatrixAxes {
        circuits: vec!["s27".to_owned()],
        backends: vec![SimBackend::Scalar, SimBackend::Packed],
        widths: vec![SimWidth::W64],
        events: vec![true, false],
        compactions: vec![
            pdf_atpg::Compaction::Uncompacted,
            pdf_atpg::Compaction::ValueBased,
        ],
        ks: vec![2, 3],
        n_ps: vec![300],
        n_p0s: vec![10],
        learnings: vec![false, true],
        sensitizes: vec![false],
        run_modes: vec![
            RunMode::Direct,
            RunMode::CheckpointResume {
                cancel_after_polls: 5,
            },
        ],
        threads: vec![1, 2],
        seeds: vec![2002],
        budgets: vec![None, Some(10)],
        faults: vec![None],
    }
}

#[test]
fn clean_s27_matrix_passes_all_invariants() {
    with_threads(None, || {
        let outcome = MatrixRunner::new(s27_axes()).run();
        assert_eq!(outcome.observations.len(), 2 * 2 * 2 * 2 * 2 * 2 * 2 * 2);
        let details: Vec<String> = outcome
            .violations
            .iter()
            .map(|v| v.detail.clone())
            .collect();
        assert!(outcome.passed(), "violations: {details:#?}");
        let report = outcome.to_report_json();
        assert_eq!(
            report.get("schema").and_then(pdf_telemetry::Json::as_str),
            Some("pdf-matrix-report")
        );
        // The report must parse back through the shared JSON parser.
        let parsed = pdf_telemetry::Json::parse(&report.to_pretty()).unwrap();
        assert_eq!(
            parsed.get("cells").and_then(pdf_telemetry::Json::as_num),
            Some(outcome.observations.len() as f64)
        );
    });
}

#[test]
fn clean_b09_slice_passes_all_invariants() {
    with_threads(None, || {
        let axes = MatrixAxes {
            circuits: vec!["b09".to_owned()],
            backends: vec![SimBackend::Scalar, SimBackend::Packed],
            widths: vec![SimWidth::W64],
            events: vec![true],
            compactions: vec![pdf_atpg::Compaction::Uncompacted],
            ks: vec![2, 3],
            n_ps: vec![300],
            n_p0s: vec![60],
            learnings: vec![false, true],
            sensitizes: vec![false],
            run_modes: vec![RunMode::Direct],
            threads: vec![1, 4],
            seeds: vec![2002],
            budgets: vec![None],
            faults: vec![None],
        };
        let outcome = MatrixRunner::new(axes).run();
        let details: Vec<String> = outcome
            .violations
            .iter()
            .map(|v| v.detail.clone())
            .collect();
        assert!(outcome.passed(), "violations: {details:#?}");
    });
}

/// The injected-failure runner of the minimizer tests: corrupts the test
/// text of every scalar-backend cell, which breaks the identity invariant
/// between the scalar and packed members of each throughput group. Keyed
/// on the backend axis alone so the failure survives both circuit
/// shrinking and the reset of every *other* config axis.
fn corrupted_runner() -> MatrixRunner {
    let axes = MatrixAxes {
        circuits: vec!["s27".to_owned()],
        backends: vec![SimBackend::Scalar, SimBackend::Packed],
        widths: vec![SimWidth::W64, SimWidth::W512],
        events: vec![true, false],
        compactions: vec![pdf_atpg::Compaction::ValueBased],
        ks: vec![2],
        n_ps: vec![300],
        n_p0s: vec![10],
        learnings: vec![false],
        sensitizes: vec![false],
        run_modes: vec![RunMode::Direct],
        threads: vec![1],
        seeds: vec![2002],
        budgets: vec![None],
        faults: vec![None],
    };
    MatrixRunner::new(axes).with_injection(Arc::new(|config: &CellConfig, observation| {
        if config.backend == SimBackend::Scalar {
            observation.tests_text.push_str("INJECTED-CORRUPTION\n");
        }
    }))
}

#[test]
fn injected_failure_minimizes_to_a_deterministic_smallest_repro() {
    let run = || {
        let outcome = corrupted_runner().run();
        assert!(!outcome.passed(), "the injection must be caught");
        assert!(outcome
            .violations
            .iter()
            .all(|v| v.invariant == Invariant::Ident));
        assert_eq!(outcome.violations.len(), outcome.repros.len());
        outcome
    };

    let serial = with_threads(Some("1"), run);
    let parallel = with_threads(Some("4"), run);

    // Satellite requirement: the same seeded corruption shrinks to the
    // byte-identical smallest repro under different worker counts.
    let serial_artifacts: Vec<String> = serial
        .repros
        .iter()
        .map(|r| r.to_json().to_pretty())
        .collect();
    let parallel_artifacts: Vec<String> = parallel
        .repros
        .iter()
        .map(|r| r.to_json().to_pretty())
        .collect();
    assert_eq!(serial_artifacts, parallel_artifacts);

    let repro = &serial.repros[0];
    // Config axes reset toward defaults wherever the failure survives:
    // the corruption only needs one scalar and one packed cell, so width
    // and events land on their defaults.
    for cell in &repro.cells {
        assert_eq!(cell.width, SimWidth::W64, "{}", cell.label());
        assert!(cell.events, "{}", cell.label());
    }
    // The circuit shrank: the s27 combinational core has 10 gates and 4
    // outputs; a backend-keyed corruption needs almost none of them.
    let bench = repro.bench.as_deref().expect("circuit must be shrinkable");
    let shrunk = pdf_netlist::parse_bench(bench, "shrunk").unwrap();
    let core = pdf_netlist::iscas::s27_netlist().combinational_core();
    assert!(
        shrunk.gate_count() < core.gate_count(),
        "{} vs {} gates:\n{bench}",
        shrunk.gate_count(),
        core.gate_count()
    );
    assert_eq!(shrunk.output_count(), 1, "{bench}");

    // The artifact round-trips and replays (with the injection applied)
    // to the same invariant failure.
    let text = repro.to_json().to_pretty();
    let parsed = ReproCase::parse(&text).unwrap();
    let circuit = parsed.resolve_circuit().unwrap();
    let detail = with_threads(None, || {
        corrupted_runner().probe(&circuit, &parsed.cells, parsed.invariant)
    });
    assert!(
        detail.is_some(),
        "the minimized artifact must replay to the same failure"
    );

    // Without the injection the artifact is clean — the probe measures
    // the bug, not the harness.
    let clean = with_threads(None, || pdf_matrix::replay(&parsed).unwrap());
    assert!(clean.is_none());
}

/// A minimal chaos slice: checkpointed s27 cells under injected torn
/// writes and transient read errors, next to their clean twins.
fn chaos_axes() -> MatrixAxes {
    MatrixAxes {
        circuits: vec!["s27".to_owned()],
        backends: vec![SimBackend::Scalar],
        widths: vec![SimWidth::W64],
        events: vec![true],
        compactions: vec![pdf_atpg::Compaction::Uncompacted],
        ks: vec![2],
        n_ps: vec![300],
        n_p0s: vec![10],
        learnings: vec![false],
        sensitizes: vec![false],
        run_modes: vec![
            RunMode::Direct,
            RunMode::CheckpointResume {
                cancel_after_polls: 5,
            },
        ],
        threads: vec![1],
        seeds: vec![2002],
        budgets: vec![None],
        faults: vec![
            None,
            Some("checkpoint.write:torn@2".to_owned()),
            Some("checkpoint.read:io@1".to_owned()),
        ],
    }
}

#[test]
fn chaos_cells_heal_and_match_their_clean_twin() {
    with_threads(None, || {
        let outcome = MatrixRunner::new(chaos_axes()).run();
        assert_eq!(outcome.observations.len(), 6);
        assert!(
            outcome
                .observations
                .iter()
                .any(|o| o.config.faults.is_some()),
            "the faults axis must produce chaos cells"
        );
        let details: Vec<String> = outcome
            .violations
            .iter()
            .map(|v| v.detail.clone())
            .collect();
        assert!(outcome.passed(), "violations: {details:#?}");
    });
}

#[test]
fn a_malformed_faults_spec_is_a_chaos_violation_not_a_panic() {
    with_threads(None, || {
        let mut axes = chaos_axes();
        axes.run_modes = vec![RunMode::Direct];
        axes.faults = vec![None, Some("checkpoint.write:bogus@0".to_owned())];
        let outcome = MatrixRunner::new(axes).run();
        assert!(!outcome.passed());
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::Chaos && v.detail.contains("invalid faults axis")));
    });
}

#[test]
fn sampled_chaos_cells_get_their_clean_twin_injected() {
    let mut axes = chaos_axes();
    // Order the axis so the first sampled cell is a chaos cell whose
    // clean twin is outside the sample.
    axes.faults = vec![Some("checkpoint.write:torn@2".to_owned()), None];
    let runner = MatrixRunner::new(axes).with_max_cells(1);
    let cells = runner.cells();
    assert_eq!(cells.len(), 2, "the missing clean twin must be appended");
    assert!(cells[0].faults.is_some());
    assert_eq!(cells[1], cells[0].clean_twin());
}

/// A minimal sensitize slice: one on/off twin pair on s27 so the
/// soundness family has a subset + detection + exact-audit check.
fn sensitize_axes() -> MatrixAxes {
    MatrixAxes {
        circuits: vec!["s27".to_owned()],
        backends: vec![SimBackend::Scalar],
        widths: vec![SimWidth::W64],
        events: vec![true],
        compactions: vec![pdf_atpg::Compaction::Uncompacted],
        ks: vec![2],
        n_ps: vec![300],
        n_p0s: vec![10],
        learnings: vec![false],
        sensitizes: vec![false, true],
        run_modes: vec![RunMode::Direct],
        threads: vec![1],
        seeds: vec![2002],
        budgets: vec![None],
        faults: vec![None],
    }
}

#[test]
fn sensitize_pair_passes_the_soundness_invariant() {
    with_threads(None, || {
        let outcome = MatrixRunner::new(sensitize_axes()).run();
        assert_eq!(outcome.observations.len(), 2);
        let on = outcome
            .observations
            .iter()
            .find(|o| o.config.sensitize)
            .expect("the sensitize axis must produce an on cell");
        assert!(
            on.sensitize_testable.is_empty(),
            "exact audit refuted eliminations: {:?}",
            on.sensitize_testable
        );
        let details: Vec<String> = outcome
            .violations
            .iter()
            .map(|v| v.detail.clone())
            .collect();
        assert!(outcome.passed(), "violations: {details:#?}");
    });
}

#[test]
fn sampled_sensitize_cells_get_their_off_twin_injected() {
    let mut axes = sensitize_axes();
    // Sample down to a single sensitize-on cell; its off reference must
    // be appended the way chaos cells get their clean twin.
    axes.sensitizes = vec![true];
    let runner = MatrixRunner::new(axes).with_max_cells(1);
    let cells = runner.cells();
    assert_eq!(cells.len(), 2, "the missing off twin must be appended");
    assert!(cells[0].sensitize);
    assert_eq!(cells[1], cells[0].sensitize_twin());
}

#[test]
fn stride_sampling_keeps_identity_groups_checkable() {
    with_threads(None, || {
        // A sampled run still executes and passes: sampling the smoke
        // matrix down must not fabricate violations from orphaned groups.
        let outcome = MatrixRunner::new(s27_axes()).with_max_cells(24).run();
        assert_eq!(outcome.observations.len(), 24);
        let details: Vec<String> = outcome
            .violations
            .iter()
            .map(|v| v.detail.clone())
            .collect();
        assert!(outcome.passed(), "violations: {details:#?}");
    });
}
