//! The `pdf-matrix-repro` artifact: a self-contained JSON file holding
//! the minimized circuit and cell configurations that reproduce one
//! invariant violation, plus the replay entry point that re-runs it.

use pdf_netlist::Circuit;
use pdf_telemetry::Json;

use crate::cell::CellConfig;
use crate::invariants::Invariant;
use crate::minimize::netlist_by_name;

/// Schema name stamped into every artifact.
pub const REPRO_SCHEMA: &str = "pdf-matrix-repro";
/// Current schema version.
pub const REPRO_VERSION: u32 = 1;

/// A minimized, replayable reproduction of one invariant violation.
#[derive(Clone, Debug)]
pub struct ReproCase {
    /// The invariant family that failed.
    pub invariant: Invariant,
    /// The failure detail of the minimized reproduction.
    pub detail: String,
    /// The circuit name the violation was found on.
    pub circuit: String,
    /// The minimized circuit as `.bench` text (`None`: replay resolves
    /// `circuit` by name instead).
    pub bench: Option<String>,
    /// The minimized witness cells.
    pub cells: Vec<CellConfig>,
}

impl ReproCase {
    /// Serializes the artifact.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .field("schema", REPRO_SCHEMA)
            .field("version", REPRO_VERSION)
            .field("invariant", self.invariant.label())
            .field("detail", self.detail.as_str())
            .field("circuit", self.circuit.as_str())
            .field(
                "bench",
                self.bench.as_deref().map_or(Json::Null, Json::from),
            )
            .field(
                "cells",
                Json::Arr(self.cells.iter().map(CellConfig::to_json).collect()),
            )
    }

    /// Parses an artifact, validating schema and version.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field.
    pub fn from_json(json: &Json) -> Result<ReproCase, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema`")?;
        if schema != REPRO_SCHEMA {
            return Err(format!(
                "unexpected schema `{schema}` (want `{REPRO_SCHEMA}`)"
            ));
        }
        let version = json
            .get("version")
            .and_then(Json::as_num)
            .ok_or("missing `version`")?;
        if version as u32 != REPRO_VERSION {
            return Err(format!(
                "unsupported version {version} (want {REPRO_VERSION})"
            ));
        }
        let invariant = json
            .get("invariant")
            .and_then(Json::as_str)
            .and_then(Invariant::from_label)
            .ok_or("missing or unknown `invariant`")?;
        let detail = json
            .get("detail")
            .and_then(Json::as_str)
            .ok_or("missing `detail`")?
            .to_owned();
        let circuit = json
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or("missing `circuit`")?
            .to_owned();
        let bench = match json.get("bench") {
            Some(Json::Str(b)) => Some(b.clone()),
            Some(Json::Null) | None => None,
            Some(other) => return Err(format!("malformed `bench`: {other:?}")),
        };
        let cells = json
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing `cells`")?
            .iter()
            .map(|c| CellConfig::from_json(c).ok_or_else(|| format!("malformed cell: {c:?}")))
            .collect::<Result<Vec<CellConfig>, String>>()?;
        if cells.is_empty() {
            return Err("empty `cells`".to_owned());
        }
        Ok(ReproCase {
            invariant,
            detail,
            circuit,
            bench,
            cells,
        })
    }

    /// Parses an artifact from its serialized text.
    ///
    /// # Errors
    ///
    /// Returns a message for both JSON-level and schema-level failures.
    pub fn parse(text: &str) -> Result<ReproCase, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        ReproCase::from_json(&json)
    }

    /// Resolves the circuit the replay must run on: the embedded bench
    /// text when present, the named circuit otherwise.
    ///
    /// # Errors
    ///
    /// Returns a message when the bench text does not parse or the name
    /// resolves to nothing.
    pub fn resolve_circuit(&self) -> Result<Circuit, String> {
        if let Some(bench) = &self.bench {
            let netlist = pdf_netlist::parse_bench(bench, &self.circuit)
                .map_err(|e| format!("embedded bench does not parse: {e:?}"))?;
            return netlist
                .to_circuit()
                .map_err(|e| format!("embedded bench is not combinational: {e:?}"));
        }
        if self.circuit == "s27" {
            return Ok(pdf_netlist::iscas::s27());
        }
        netlist_by_name(&self.circuit)
            .and_then(|n| n.to_circuit().ok())
            .ok_or_else(|| format!("unknown circuit `{}`", self.circuit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::MatrixAxes;

    fn case() -> ReproCase {
        let axes = MatrixAxes::smoke();
        ReproCase {
            invariant: Invariant::Ident,
            detail: "tests differ".to_owned(),
            circuit: "b09".to_owned(),
            bench: None,
            cells: vec![axes.cell(0), axes.cell(1)],
        }
    }

    #[test]
    fn artifact_round_trips() {
        let repro = case();
        let text = repro.to_json().to_pretty();
        let back = ReproCase::parse(&text).unwrap();
        assert_eq!(back.invariant, repro.invariant);
        assert_eq!(back.detail, repro.detail);
        assert_eq!(back.circuit, repro.circuit);
        assert_eq!(back.bench, repro.bench);
        assert_eq!(back.cells, repro.cells);
    }

    #[test]
    fn artifact_rejects_bad_schema_and_version() {
        let good = case().to_json();
        let bad_schema = Json::object()
            .field("schema", "something-else")
            .field("version", 1u32);
        assert!(ReproCase::from_json(&bad_schema)
            .unwrap_err()
            .contains("schema"));
        let text = good
            .to_pretty()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(ReproCase::parse(&text).unwrap_err().contains("version"));
    }

    #[test]
    fn replay_resolves_named_and_embedded_circuits() {
        let mut repro = case();
        assert!(repro.resolve_circuit().is_ok());
        repro.circuit = "no-such-circuit".to_owned();
        assert!(repro.resolve_circuit().is_err());
        repro.bench = Some(pdf_netlist::iscas::S27_BENCH.to_owned());
        // Embedded bench wins over the (unknown) name; s27 is sequential,
        // so resolving its raw bench must fail combinationality…
        assert!(repro.resolve_circuit().is_err());
        // …while the combinational core parses and converts.
        let core = pdf_netlist::iscas::s27_netlist().combinational_core();
        repro.bench = Some(pdf_netlist::to_bench_string(&core));
        assert!(repro.resolve_circuit().is_ok());
    }
}
