//! One cell of the configuration matrix: the full axis assignment, the
//! lazily-decoded cross-product, and the runner that turns a cell into a
//! [`CellObservation`].

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use pdf_atpg::{
    AtpgConfig, CancelToken, Checkpoint, CheckpointPolicy, Compaction, EnrichmentAtpg, RunBudget,
    SimBackend, SimOptions, SimWidth, TargetSplit,
};
use pdf_faults::{FaultList, Sensitization};
use pdf_netlist::Circuit;
use pdf_paths::PathEnumerator;
use pdf_telemetry::Json;

/// How the cell's generation run is driven through the run-control layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// One uninterrupted run.
    Direct,
    /// Three runs: uninterrupted, cancelled after the given number of
    /// budget polls (with a checkpoint written every completed test), and
    /// resumed from that checkpoint. The resume invariant compares the
    /// composite against the uninterrupted run.
    CheckpointResume {
        /// Budget polls before the cancel token trips.
        cancel_after_polls: u64,
    },
}

impl RunMode {
    /// A short label for report keys (`direct` / `resume@N`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RunMode::Direct => "direct".to_owned(),
            RunMode::CheckpointResume { cancel_after_polls } => {
                format!("resume@{cancel_after_polls}")
            }
        }
    }

    fn parse(s: &str) -> Option<RunMode> {
        if s == "direct" {
            return Some(RunMode::Direct);
        }
        let polls = s.strip_prefix("resume@")?.parse().ok()?;
        Some(RunMode::CheckpointResume {
            cancel_after_polls: polls,
        })
    }
}

/// One fully-specified configuration cell of the matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CellConfig {
    /// Circuit name (resolvable by [`crate::resolve_circuit`]).
    pub circuit: String,
    /// Simulation engine.
    pub backend: SimBackend,
    /// Packed tile width.
    pub width: SimWidth,
    /// Event-driven propagation.
    pub events: bool,
    /// Compaction heuristic.
    pub compaction: Compaction,
    /// Number of target sets (`>= 2`; the paper uses 2).
    pub k: usize,
    /// Enumeration cap `N_P`.
    pub n_p: usize,
    /// `P_0` sizing threshold `N_P0`.
    pub n_p0: usize,
    /// Static implication learning on/off.
    pub learning: bool,
    /// Static sensitizability pre-elimination on/off. Off must be
    /// byte-identical to builds predating the pass; on may only remove
    /// faults the classifier *proves* unsensitizable — the sensitize
    /// invariant re-proves every elimination by exact search and against
    /// the off twin's detections.
    pub sensitize: bool,
    /// Direct run or the cancel/checkpoint/resume dance.
    pub run_mode: RunMode,
    /// Generation worker-thread count. A throughput knob like the sim
    /// axes: every observation must be byte-identical at every count.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Generous wall-clock budget in minutes (`None` = unlimited). A
    /// never-exhausted budget must not perturb results — its polling is
    /// covered by the identity invariant.
    pub budget_minutes: Option<u64>,
    /// Failpoint spec (`site:kind@N,...`) armed while the cell runs, or
    /// `None` for a clean cell. Restricted to I/O fault kinds that must
    /// heal (retry, recovery) — the chaos invariant compares every
    /// injected cell byte-for-byte against its clean twin.
    pub faults: Option<String>,
}

impl CellConfig {
    /// The canonical default cell (smoke-sized workload on `s27`).
    #[must_use]
    pub fn default_cell() -> CellConfig {
        CellConfig {
            circuit: "s27".to_owned(),
            backend: SimBackend::Packed,
            width: SimWidth::W64,
            events: true,
            compaction: Compaction::ValueBased,
            k: 2,
            n_p: 300,
            n_p0: 60,
            learning: false,
            sensitize: false,
            run_mode: RunMode::Direct,
            threads: 1,
            seed: 2002,
            budget_minutes: None,
            faults: None,
        }
    }

    /// The cell's clean twin: the same configuration with no failpoints
    /// armed. The chaos invariant groups by this twin's label.
    #[must_use]
    pub fn clean_twin(&self) -> CellConfig {
        CellConfig {
            faults: None,
            ..self.clone()
        }
    }

    /// The cell's sensitize-off twin: the same configuration without the
    /// false-path pre-elimination. The sensitize invariant compares the
    /// on cell's population and detections against this twin's.
    #[must_use]
    pub fn sensitize_twin(&self) -> CellConfig {
        CellConfig {
            sensitize: false,
            ..self.clone()
        }
    }

    /// The options block the cell's throughput axes select.
    #[must_use]
    pub fn sim_options(&self) -> SimOptions {
        SimOptions::default()
            .with_backend(self.backend)
            .with_width(self.width)
            .with_events(self.events)
    }

    /// A compact one-line label (`b09 packed/w64/events values k=2 ...`).
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} {} {} k={} np={} np0={} learn={} sens={} {} t={} seed={} budget={} faults={}",
            self.circuit,
            self.sim_options().label(),
            self.compaction.label(),
            self.k,
            self.n_p,
            self.n_p0,
            if self.learning { "on" } else { "off" },
            if self.sensitize { "on" } else { "off" },
            self.run_mode.label(),
            self.threads,
            self.seed,
            self.budget_minutes
                .map_or("none".to_owned(), |m| format!("{m}m")),
            self.faults.as_deref().unwrap_or("none"),
        )
    }

    /// The cell as a JSON object (the repro-artifact cell schema).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .field("circuit", self.circuit.as_str())
            .field("backend", self.backend.label())
            .field("width", self.width.label())
            .field("events", self.events)
            .field("compaction", self.compaction.label())
            .field("k", self.k)
            .field("n_p", self.n_p)
            .field("n_p0", self.n_p0)
            .field("learning", self.learning)
            .field("sensitize", self.sensitize)
            .field("run_mode", self.run_mode.label())
            .field("threads", self.threads)
            .field("seed", self.seed)
            .field(
                "budget_minutes",
                self.budget_minutes.map_or(Json::Null, Json::from),
            )
            .field(
                "faults",
                self.faults.as_deref().map_or(Json::Null, Json::from),
            )
    }

    /// Parses a cell from its [`CellConfig::to_json`] form.
    #[must_use]
    pub fn from_json(json: &Json) -> Option<CellConfig> {
        let s = |k: &str| json.get(k).and_then(Json::as_str);
        let n = |k: &str| json.get(k).and_then(Json::as_num);
        let b = |k: &str| match json.get(k) {
            Some(Json::Bool(v)) => Some(*v),
            _ => None,
        };
        Some(CellConfig {
            circuit: s("circuit")?.to_owned(),
            backend: s("backend")?.parse().ok()?,
            width: s("width")?.parse().ok()?,
            events: b("events")?,
            compaction: compaction_from_label(s("compaction")?)?,
            k: n("k")? as usize,
            n_p: n("n_p")? as usize,
            n_p0: n("n_p0")? as usize,
            learning: b("learning")?,
            // Artifacts predating the sensitize axis replay with the
            // pass off (the byte-identical legacy behavior).
            sensitize: b("sensitize").unwrap_or(false),
            run_mode: RunMode::parse(s("run_mode")?)?,
            // Artifacts predating the threads axis replay single-threaded.
            threads: n("threads").map_or(1, |v| (v as usize).max(1)),
            seed: n("seed")? as u64,
            budget_minutes: match json.get("budget_minutes") {
                Some(Json::Num(m)) => Some(*m as u64),
                _ => None,
            },
            // Artifacts predating the faults axis replay clean.
            faults: match json.get("faults") {
                Some(Json::Str(spec)) => Some(spec.clone()),
                _ => None,
            },
        })
    }
}

/// Resolves a compaction heuristic from its `label()`.
#[must_use]
pub fn compaction_from_label(label: &str) -> Option<Compaction> {
    Compaction::ALL.into_iter().find(|c| c.label() == label)
}

/// The axes of the cross-product. `cells()` decodes indices lazily in
/// mixed radix — the full product is never materialized beyond the
/// (possibly sampled) cell list.
#[derive(Clone, Debug)]
pub struct MatrixAxes {
    /// Circuit names.
    pub circuits: Vec<String>,
    /// Simulation backends.
    pub backends: Vec<SimBackend>,
    /// Packed tile widths.
    pub widths: Vec<SimWidth>,
    /// Event-driven propagation settings.
    pub events: Vec<bool>,
    /// Compaction heuristics.
    pub compactions: Vec<Compaction>,
    /// Target-set counts.
    pub ks: Vec<usize>,
    /// Enumeration caps.
    pub n_ps: Vec<usize>,
    /// `P_0` thresholds.
    pub n_p0s: Vec<usize>,
    /// Static learning settings.
    pub learnings: Vec<bool>,
    /// Sensitizability pre-elimination settings.
    pub sensitizes: Vec<bool>,
    /// Run modes.
    pub run_modes: Vec<RunMode>,
    /// Generation worker-thread counts.
    pub threads: Vec<usize>,
    /// Seeds.
    pub seeds: Vec<u64>,
    /// Budget settings (minutes; `None` = unlimited).
    pub budgets: Vec<Option<u64>>,
    /// Failpoint specs (`None` = clean). Only healing I/O kinds belong
    /// here: every chaos cell must end up byte-identical to its clean
    /// twin (panic-kind injection is covered by dedicated pool tests).
    pub faults: Vec<Option<String>>,
}

impl MatrixAxes {
    /// The bounded smoke matrix CI runs on every push: tiny circuits,
    /// every invariant family exercised, 512 raw cells before sampling.
    #[must_use]
    pub fn smoke() -> MatrixAxes {
        MatrixAxes {
            circuits: vec!["s27".to_owned(), "b09".to_owned()],
            backends: vec![SimBackend::Scalar, SimBackend::Packed],
            widths: vec![SimWidth::W64, SimWidth::W512],
            events: vec![true, false],
            compactions: vec![Compaction::Uncompacted, Compaction::ValueBased],
            ks: vec![2, 3],
            n_ps: vec![300],
            n_p0s: vec![60],
            learnings: vec![false, true],
            sensitizes: vec![false, true],
            run_modes: vec![
                RunMode::Direct,
                RunMode::CheckpointResume {
                    cancel_after_polls: 7,
                },
            ],
            threads: vec![1, 4],
            seeds: vec![2002],
            budgets: vec![None, Some(10)],
            // torn@2 never tears an only-generation checkpoint: the
            // first save is good, so recovery always has a floor.
            faults: vec![
                None,
                Some("checkpoint.write:torn@2".to_owned()),
                Some("checkpoint.read:io@1".to_owned()),
            ],
        }
    }

    /// The nightly full-axis matrix: more circuits, every heuristic, two
    /// seeds, larger workloads.
    #[must_use]
    pub fn full() -> MatrixAxes {
        MatrixAxes {
            circuits: vec![
                "s27".to_owned(),
                "b03".to_owned(),
                "b09".to_owned(),
                "b09+r".to_owned(),
                "s1196".to_owned(),
            ],
            backends: vec![SimBackend::Scalar, SimBackend::Packed],
            widths: vec![SimWidth::W64, SimWidth::W256, SimWidth::W512],
            events: vec![true, false],
            compactions: Compaction::ALL.to_vec(),
            ks: vec![2, 3, 4],
            n_ps: vec![300, 1000],
            n_p0s: vec![60, 200],
            learnings: vec![false, true],
            sensitizes: vec![false, true],
            run_modes: vec![
                RunMode::Direct,
                RunMode::CheckpointResume {
                    cancel_after_polls: 3,
                },
                RunMode::CheckpointResume {
                    cancel_after_polls: 11,
                },
            ],
            threads: vec![1, 2, 4, 8],
            seeds: vec![2002, 7],
            budgets: vec![None, Some(10)],
            faults: vec![
                None,
                Some("checkpoint.write:torn@2".to_owned()),
                Some("checkpoint.write:io@1".to_owned()),
                Some("checkpoint.read:io@1".to_owned()),
            ],
        }
    }

    /// The size of the raw cross-product.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.circuits.len()
            * self.backends.len()
            * self.widths.len()
            * self.events.len()
            * self.compactions.len()
            * self.ks.len()
            * self.n_ps.len()
            * self.n_p0s.len()
            * self.learnings.len()
            * self.sensitizes.len()
            * self.run_modes.len()
            * self.threads.len()
            * self.seeds.len()
            * self.budgets.len()
            * self.faults.len()
    }

    /// Decodes cell `index` of the cross-product (mixed-radix, circuit
    /// slowest so samples spread over circuits first).
    ///
    /// # Panics
    ///
    /// Panics when `index >= cell_count()` or any axis is empty.
    #[must_use]
    pub fn cell(&self, index: usize) -> CellConfig {
        assert!(index < self.cell_count(), "cell index out of range");
        let mut rest = index;
        let mut take = |len: usize| {
            let i = rest % len;
            rest /= len;
            i
        };
        // Fastest-varying axes first: throughput knobs, so neighboring
        // indices form identity groups and stride sampling spreads over
        // the semantic axes.
        let faults = self.faults[take(self.faults.len())].clone();
        let threads = self.threads[take(self.threads.len())];
        let backend = self.backends[take(self.backends.len())];
        let width = self.widths[take(self.widths.len())];
        let events = self.events[take(self.events.len())];
        let budget_minutes = self.budgets[take(self.budgets.len())];
        let run_mode = self.run_modes[take(self.run_modes.len())];
        let k = self.ks[take(self.ks.len())];
        let learning = self.learnings[take(self.learnings.len())];
        let sensitize = self.sensitizes[take(self.sensitizes.len())];
        let compaction = self.compactions[take(self.compactions.len())];
        let n_p = self.n_ps[take(self.n_ps.len())];
        let n_p0 = self.n_p0s[take(self.n_p0s.len())];
        let seed = self.seeds[take(self.seeds.len())];
        let circuit = self.circuits[take(self.circuits.len())].clone();
        CellConfig {
            circuit,
            backend,
            width,
            events,
            compaction,
            k,
            n_p,
            n_p0,
            learning,
            sensitize,
            run_mode,
            threads,
            seed,
            budget_minutes,
            faults,
        }
    }

    /// The cell list, deterministically stride-sampled down to at most
    /// `max_cells` when the raw product is larger: sample `j` is cell
    /// `j * count / max_cells`, so the samples spread evenly across the
    /// whole product and two runs with equal axes pick equal cells.
    #[must_use]
    pub fn cells(&self, max_cells: usize) -> Vec<CellConfig> {
        let count = self.cell_count();
        let max = max_cells.max(1);
        if count <= max {
            (0..count).map(|i| self.cell(i)).collect()
        } else {
            (0..max).map(|j| self.cell(j * count / max)).collect()
        }
    }
}

/// Everything observed from running one cell; the invariant checkers
/// compare these across cells.
#[derive(Clone, Debug)]
pub struct CellObservation {
    /// The cell that produced this observation.
    pub config: CellConfig,
    /// Canonical text of the generated test set.
    pub tests_text: String,
    /// Per-fault detection flags, split order (set 0 first).
    pub detected: Vec<bool>,
    /// Total faults detected across all sets.
    pub detected_total: usize,
    /// Population size per set.
    pub set_sizes: Vec<usize>,
    /// Fault identity keys, aligned with `detected`.
    pub fault_keys: Vec<String>,
    /// Whether the (generous) budget was reported exhausted.
    pub budget_exhausted: bool,
    /// For sensitize-on cells: fault keys the pre-elimination filter
    /// dropped but complete search proved *testable*. Always empty for a
    /// sound classifier — any entry is a sensitize violation.
    pub sensitize_testable: Vec<String>,
    /// For [`RunMode::CheckpointResume`]: the test text of the
    /// cancelled-then-resumed composite run.
    pub resume_tests_text: Option<String>,
    /// For [`RunMode::CheckpointResume`]: detected total of the resumed
    /// composite.
    pub resume_detected_total: Option<usize>,
    /// A run-level failure (resume rejection, checkpoint I/O) that is
    /// itself a violation.
    pub error: Option<String>,
}

/// Test-only corruption hook: applied to every observation right after
/// its cell runs, including the re-runs the minimizer performs — so an
/// injected failure survives shrinking, which is exactly what makes the
/// minimizer testable.
pub type Injection = Arc<dyn Fn(&CellConfig, &mut CellObservation) + Send + Sync>;

fn unique_checkpoint_path(cell: &CellConfig) -> std::path::PathBuf {
    let mut h = DefaultHasher::new();
    format!("{cell:?}").hash(&mut h);
    std::env::temp_dir().join(format!(
        "pdf_matrix_ckpt_{}_{:016x}.json",
        std::process::id(),
        h.finish()
    ))
}

/// Runs one cell on an already-resolved circuit.
///
/// The split is built with [`TargetSplit::by_nested_cumulative`], the
/// generator is always the enrichment procedure (the `k` axis covers the
/// paper's two-set scheme at `k = 2`), and [`RunMode::CheckpointResume`]
/// additionally performs the cancel/checkpoint/resume dance.
#[must_use]
pub fn run_cell(circuit: &Circuit, cell: &CellConfig) -> CellObservation {
    let learned = cell
        .learning
        .then(|| Arc::new(pdf_analyze::learn_implications(circuit)));
    let enumeration = PathEnumerator::new(circuit).with_cap(cell.n_p).enumerate();
    let analysis = cell.sensitize.then(|| {
        pdf_analyze::classify_store(
            circuit,
            &enumeration.store,
            Sensitization::Robust,
            learned.as_deref(),
        )
    });
    let (faults, _) = match &analysis {
        Some(a) => FaultList::build_with_filter(
            circuit,
            &enumeration.store,
            Sensitization::Robust,
            learned.as_deref(),
            Some(&|i, p| a.is_false(i, p)),
        ),
        None => FaultList::build_with_learned(
            circuit,
            &enumeration.store,
            Sensitization::Robust,
            learned.as_deref(),
        ),
    };
    // Soundness audit, in-cell: every fault the filter eliminated beyond
    // what the rules already drop is re-proven untestable by complete
    // search. A limit-exceeded search is inconclusive (not a violation);
    // a satisfiable one is recorded and fails the sensitize invariant.
    let sensitize_testable = if analysis.is_some() {
        let (unfiltered, _) = FaultList::build_with_learned(
            circuit,
            &enumeration.store,
            Sensitization::Robust,
            learned.as_deref(),
        );
        let kept: std::collections::BTreeSet<String> =
            faults.iter().map(|e| e.fault.to_string()).collect();
        let exact = pdf_atpg::ExactJustifier::new(circuit).with_node_limit(200_000);
        unfiltered
            .iter()
            .filter(|e| !kept.contains(&e.fault.to_string()))
            .filter(|e| {
                matches!(
                    exact.justify(&e.assignments),
                    pdf_atpg::ExactOutcome::Satisfiable(_)
                )
            })
            .map(|e| e.fault.to_string())
            .collect()
    } else {
        Vec::new()
    };
    let split = TargetSplit::by_nested_cumulative(&faults, cell.n_p0, cell.k.max(2));
    let fault_keys: Vec<String> = split
        .sets()
        .iter()
        .flat_map(|s| s.iter().map(|e| e.fault.to_string()))
        .collect();
    let set_sizes: Vec<usize> = split.sets().iter().map(FaultList::len).collect();

    let budget = || match cell.budget_minutes {
        Some(m) => RunBudget::with_deadline(pdf_atpg::Deadline::after(
            std::time::Duration::from_secs(m * 60),
        )),
        None => RunBudget::unlimited(),
    };
    let base_config = AtpgConfig {
        seed: cell.seed,
        compaction: cell.compaction,
        sim: cell.sim_options(),
        budget: budget(),
        learned: learned.clone(),
        threads: cell.threads.max(1),
        ..AtpgConfig::default()
    };

    let atpg = EnrichmentAtpg::new(circuit).with_config(base_config.clone());
    let outcome = atpg.run(&split);

    let mut observation = CellObservation {
        config: cell.clone(),
        tests_text: outcome.tests().to_text(),
        detected: outcome.detected().to_vec(),
        detected_total: outcome.detected_total(),
        set_sizes,
        fault_keys,
        budget_exhausted: outcome.budget_exhausted(),
        sensitize_testable,
        resume_tests_text: None,
        resume_detected_total: None,
        error: None,
    };

    if let RunMode::CheckpointResume { cancel_after_polls } = cell.run_mode {
        let path = unique_checkpoint_path(cell);
        let cancelled_config = AtpgConfig {
            budget: budget().and_cancel(CancelToken::cancel_after_polls(cancel_after_polls)),
            checkpoint: Some(CheckpointPolicy::new(&path, 1)),
            ..base_config.clone()
        };
        let _ = EnrichmentAtpg::new(circuit)
            .with_config(cancelled_config)
            .run(&split);
        match Checkpoint::load_with_recovery(&path) {
            Ok((checkpoint, _recovered)) => {
                let resumed = EnrichmentAtpg::new(circuit)
                    .with_config(AtpgConfig {
                        budget: budget(),
                        ..base_config
                    })
                    .run_resumed(&split, &checkpoint);
                match resumed {
                    Ok(out) => {
                        observation.resume_tests_text = Some(out.tests().to_text());
                        observation.resume_detected_total = Some(out.detected_total());
                    }
                    Err(e) => observation.error = Some(format!("resume rejected: {e}")),
                }
            }
            Err(e) => observation.error = Some(format!("checkpoint unreadable: {e}")),
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(pdf_atpg::previous_generation_path(&path));
    }

    observation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_decodes_every_index_exactly_once() {
        let axes = MatrixAxes::smoke();
        let count = axes.cell_count();
        assert_eq!(count, 2 * 2 * 2 * 2 * 2 * 2 * 2 * 2 * 2 * 2 * 2 * 3);
        let mut labels: Vec<String> = (0..count).map(|i| axes.cell(i).label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), count, "decoded cells must be distinct");
    }

    #[test]
    fn stride_sampling_is_deterministic_and_bounded() {
        let axes = MatrixAxes::smoke();
        let a = axes.cells(200);
        let b = axes.cells(200);
        assert_eq!(a.len(), 200);
        assert_eq!(a, b);
        // Sampling must still spread over the slowest axis (circuits).
        let circuits: std::collections::BTreeSet<&str> =
            a.iter().map(|c| c.circuit.as_str()).collect();
        assert_eq!(circuits.len(), 2);
        // Unbounded: the whole product.
        assert_eq!(axes.cells(usize::MAX).len(), axes.cell_count());
    }

    #[test]
    fn cell_json_round_trips() {
        let axes = MatrixAxes::full();
        for i in [0, 1, 17, axes.cell_count() - 1] {
            let cell = axes.cell(i);
            let back = CellConfig::from_json(&cell.to_json()).unwrap();
            assert_eq!(back, cell, "cell {i}");
        }
    }

    #[test]
    fn chaos_cells_sit_next_to_their_clean_twin() {
        let axes = MatrixAxes::smoke();
        // The faults axis is the fastest-varying: indices 3j, 3j+1, 3j+2
        // share every other coordinate, so sampled chaos cells pair with
        // a nearby clean twin and the chaos checker has its reference.
        for base in [0, 3, 33 * 3] {
            let clean = axes.cell(base);
            assert_eq!(clean.faults, None);
            for offset in 1..3 {
                let chaos = axes.cell(base + offset);
                assert!(chaos.faults.is_some());
                assert_eq!(chaos.clean_twin(), clean);
            }
        }
    }

    #[test]
    fn artifacts_without_the_sensitize_field_replay_with_the_pass_off() {
        let mut cell = CellConfig::default_cell();
        cell.sensitize = true;
        let json = cell.to_json();
        let stripped = match json {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "sensitize")
                    .collect(),
            ),
            other => other,
        };
        let back = CellConfig::from_json(&stripped).unwrap();
        assert!(
            !back.sensitize,
            "legacy artifacts must replay with sensitize off"
        );
        assert_eq!(back.sensitize_twin(), back);
    }

    #[test]
    fn run_mode_labels_round_trip() {
        for m in [
            RunMode::Direct,
            RunMode::CheckpointResume {
                cancel_after_polls: 42,
            },
        ] {
            assert_eq!(RunMode::parse(&m.label()), Some(m));
        }
        assert_eq!(RunMode::parse("resume@x"), None);
    }
}
