//! abi-cafe-style greedy auto-minimization of a failing matrix cell.
//!
//! Given a violation and the netlist its circuit came from, the minimizer
//! deterministically shrinks both the circuit (drop outputs, bypass
//! gates, drop dead inputs) and the cell configurations (reset axes
//! toward defaults) while the failure keeps reproducing, and returns the
//! smallest reproducer it reaches. Every step is a plain greedy
//! try-and-revert, so two runs over the same violation produce the same
//! artifact regardless of worker count — the minimizer itself is
//! sequential.

use std::collections::BTreeSet;

use pdf_logic::GateKind;
use pdf_netlist::{Circuit, Netlist, NetlistBuilder};

use crate::cell::{CellConfig, RunMode};
use crate::invariants::Invariant;

/// An editable netlist mirror the shrink passes mutate by name.
#[derive(Clone, Debug)]
struct MiniNetlist {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    /// `(kind, output signal, input signals)`.
    gates: Vec<(GateKind, String, Vec<String>)>,
}

impl MiniNetlist {
    /// Mirrors a combinational netlist. Sequential netlists (flip-flops)
    /// are not shrinkable; callers fall back to config-only shrinking.
    fn from_netlist(netlist: &Netlist) -> Option<MiniNetlist> {
        if netlist.dff_count() != 0 {
            return None;
        }
        let name_of = |id| netlist.signal_name(id).to_owned();
        Some(MiniNetlist {
            name: netlist.name().to_owned(),
            inputs: netlist.inputs().iter().map(|&i| name_of(i)).collect(),
            outputs: netlist.outputs().iter().map(|&o| name_of(o)).collect(),
            gates: netlist
                .gates()
                .iter()
                .map(|g| {
                    (
                        g.kind,
                        name_of(g.output),
                        g.inputs.iter().map(|&i| name_of(i)).collect(),
                    )
                })
                .collect(),
        })
    }

    fn to_netlist(&self) -> Option<Netlist> {
        let mut b = NetlistBuilder::new(self.name.clone());
        for i in &self.inputs {
            b.input(i);
        }
        for o in &self.outputs {
            b.output(o);
        }
        for (kind, out, ins) in &self.gates {
            let ins: Vec<&str> = ins.iter().map(String::as_str).collect();
            b.gate(*kind, out, &ins);
        }
        b.finish().ok()
    }

    fn to_circuit(&self) -> Option<Circuit> {
        self.to_netlist()?.to_circuit().ok()
    }

    fn size(&self) -> usize {
        self.inputs.len() + self.outputs.len() + self.gates.len()
    }

    /// Signals read by any gate or listed as an output.
    fn used_signals(&self) -> BTreeSet<String> {
        self.gates
            .iter()
            .flat_map(|(_, _, ins)| ins.iter().cloned())
            .chain(self.outputs.iter().cloned())
            .collect()
    }

    /// Removes gates whose output feeds neither another gate nor an
    /// output, to a fixpoint.
    fn prune_dead_gates(&mut self) {
        loop {
            let used = self.used_signals();
            let before = self.gates.len();
            self.gates.retain(|(_, out, _)| used.contains(out));
            if self.gates.len() == before {
                return;
            }
        }
    }

    /// Removes inputs no gate and no output reads (keeping at least one:
    /// a circuit with no inputs has no paths to enumerate).
    fn prune_dead_inputs(&mut self) {
        let used = self.used_signals();
        let kept: Vec<String> = self
            .inputs
            .iter()
            .filter(|i| used.contains(*i))
            .cloned()
            .collect();
        if !kept.is_empty() {
            self.inputs = kept;
        } else if let Some(first) = self.inputs.first().cloned() {
            self.inputs = vec![first];
        }
    }
}

/// The smallest reproducer the minimizer reached.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The shrunk circuit as `.bench` text (`None` when the circuit could
    /// not be shrunk — sequential netlist, no netlist source, or a
    /// failure that only reproduces on the original [`Circuit`]).
    pub bench: Option<String>,
    /// The shrunk witness cells.
    pub cells: Vec<CellConfig>,
    /// The failure detail of the final reproduction.
    pub detail: String,
}

/// The probe the minimizer drives: re-runs `cells` on `circuit` and
/// returns the failure detail when the given invariant family still
/// fails. Implemented by the runner so the injection hook stays applied.
pub type FailureProbe<'p> = dyn Fn(&Circuit, &[CellConfig], Invariant) -> Option<String> + 'p;

/// Greedily minimizes a failing scenario.
///
/// `circuit` is the original circuit the violation was observed on;
/// `netlist` is its structural source when one exists (enables circuit
/// shrinking); `cells` are the witness cells; `probe` re-runs them. The
/// result is deterministic: passes run in a fixed order, candidates are
/// tried in a fixed order, and each candidate is kept exactly when the
/// probe still fails.
#[must_use]
pub fn minimize(
    circuit: &Circuit,
    netlist: Option<&Netlist>,
    cells: &[CellConfig],
    invariant: Invariant,
    detail: &str,
    probe: &FailureProbe<'_>,
) -> Minimized {
    let mut cells = cells.to_vec();
    let mut detail = detail.to_owned();

    // Circuit shrink, when a combinational netlist reproduces the failure.
    let mut mini = netlist.and_then(MiniNetlist::from_netlist).filter(|m| {
        m.to_circuit()
            .is_some_and(|c| probe(&c, &cells, invariant).is_some())
    });
    if let Some(mini) = &mut mini {
        let still_fails = |candidate: &MiniNetlist, cells: &[CellConfig]| -> Option<String> {
            let circuit = candidate.to_circuit()?;
            probe(&circuit, cells, invariant)
        };
        // Up to three rounds of the three structural passes: dropping an
        // output often unlocks gate bypasses and vice versa.
        for _ in 0..3 {
            let before = mini.size();

            // Pass 1: drop outputs (cone-pruning the gates they carried).
            let mut oi = 0;
            while mini.outputs.len() > 1 && oi < mini.outputs.len() {
                let mut candidate = mini.clone();
                candidate.outputs.remove(oi);
                candidate.prune_dead_gates();
                candidate.prune_dead_inputs();
                if let Some(d) = still_fails(&candidate, &cells) {
                    *mini = candidate;
                    detail = d;
                } else {
                    oi += 1;
                }
            }

            // Pass 2: bypass gates — route each gate's first input in
            // place of its output everywhere (strictly upstream, so the
            // rewrite can never create a cycle) and drop the gate.
            let mut gi = mini.gates.len();
            while gi > 0 {
                gi -= 1;
                let (_, out, ins) = &mini.gates[gi];
                let Some(replacement) = ins.first().cloned() else {
                    continue;
                };
                let out = out.clone();
                let mut candidate = mini.clone();
                candidate.gates.remove(gi);
                for (_, _, ins) in &mut candidate.gates {
                    for i in ins {
                        if *i == out {
                            *i = replacement.clone();
                        }
                    }
                }
                for o in &mut candidate.outputs {
                    if *o == out {
                        *o = replacement.clone();
                    }
                }
                // The rewrite can alias two outputs onto one signal;
                // duplicate outputs would double-count paths.
                let mut seen = BTreeSet::new();
                candidate.outputs.retain(|o| seen.insert(o.clone()));
                candidate.prune_dead_gates();
                candidate.prune_dead_inputs();
                if let Some(d) = still_fails(&candidate, &cells) {
                    *mini = candidate;
                    gi = gi.min(mini.gates.len());
                    detail = d;
                }
            }

            // Pass 3: drop inputs nothing reads any more.
            let mut candidate = mini.clone();
            candidate.prune_dead_inputs();
            if candidate.size() < mini.size() {
                if let Some(d) = still_fails(&candidate, &cells) {
                    *mini = candidate;
                    detail = d;
                }
            }

            if mini.size() == before {
                break;
            }
        }
    }

    // Config shrink: reset each axis of each cell toward the default
    // cell, keeping a reset exactly when the failure survives it. Probe
    // against the shrunk circuit when one exists, else the original.
    let shrunk_circuit = mini.as_ref().and_then(MiniNetlist::to_circuit);
    let probe_circuit = shrunk_circuit.as_ref().unwrap_or(circuit);
    let default = CellConfig::default_cell();
    for i in 0..cells.len() {
        type Reset = fn(&mut CellConfig, &CellConfig);
        let resets: [Reset; 12] = [
            |c, _| c.faults = None,
            |c, d| c.threads = d.threads,
            |c, d| c.events = d.events,
            |c, d| c.width = d.width,
            |c, d| c.backend = d.backend,
            |c, _| c.budget_minutes = None,
            |c, _| c.run_mode = RunMode::Direct,
            |c, d| c.learning = d.learning,
            |c, d| c.sensitize = d.sensitize,
            |c, d| c.compaction = d.compaction,
            |c, d| c.k = d.k,
            |c, d| {
                c.n_p = d.n_p;
                c.n_p0 = d.n_p0;
            },
        ];
        for reset in resets {
            let mut candidate = cells.clone();
            reset(&mut candidate[i], &default);
            if candidate[i] == cells[i] {
                continue;
            }
            if let Some(d) = probe(probe_circuit, &candidate, invariant) {
                cells = candidate;
                detail = d;
            }
        }
    }

    Minimized {
        bench: mini
            .as_ref()
            .and_then(MiniNetlist::to_netlist)
            .map(|n| pdf_netlist::to_bench_string(&n)),
        cells,
        detail,
    }
}

/// Resolves the netlist behind a circuit name, when one exists: the
/// embedded `s27` netlist (combinational core) or a synthetic stand-in.
#[must_use]
pub fn netlist_by_name(name: &str) -> Option<Netlist> {
    if name == "s27" {
        return Some(pdf_netlist::iscas::s27_netlist().combinational_core());
    }
    pdf_netlist::stand_in_profile(name).map(|p| p.generate())
}
