//! The `pdf-matrix-report` JSON document summarizing one matrix run:
//! cell counts, per-invariant results, every violation, and the repro
//! artifacts the minimizer produced. Rendered with the shared
//! [`pdf_telemetry::Json`] writer so CI tooling parses it with the same
//! round-trip-tested parser as the telemetry reports.

use pdf_telemetry::Json;

use crate::cell::{CellConfig, CellObservation};
use crate::invariants::{Invariant, Violation};
use crate::repro::ReproCase;

/// Schema name stamped into every report.
pub const REPORT_SCHEMA: &str = "pdf-matrix-report";
/// Current schema version.
pub const REPORT_VERSION: u32 = 1;

/// The complete result of one matrix run.
#[derive(Clone, Debug)]
pub struct MatrixOutcome {
    /// One observation per executed cell, cell order.
    pub observations: Vec<CellObservation>,
    /// Every invariant violation found.
    pub violations: Vec<Violation>,
    /// One minimized repro per violation, same order.
    pub repros: Vec<ReproCase>,
}

impl MatrixOutcome {
    /// Whether the run is clean.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the run report.
    #[must_use]
    pub fn to_report_json(&self) -> Json {
        let per_invariant = Invariant::ALL.iter().fold(Json::object(), |obj, inv| {
            let count = self
                .violations
                .iter()
                .filter(|v| v.invariant == *inv)
                .count();
            obj.field(
                inv.label(),
                Json::object()
                    .field("violations", count)
                    .field("passed", count == 0),
            )
        });
        let violations = self
            .violations
            .iter()
            .map(|v| {
                Json::object()
                    .field("invariant", v.invariant.label())
                    .field("detail", v.detail.as_str())
                    .field(
                        "cells",
                        Json::Arr(v.cells.iter().map(CellConfig::to_json).collect()),
                    )
            })
            .collect();
        let circuits: std::collections::BTreeSet<&str> = self
            .observations
            .iter()
            .map(|o| o.config.circuit.as_str())
            .collect();
        Json::object()
            .field("schema", REPORT_SCHEMA)
            .field("version", REPORT_VERSION)
            .field("cells", self.observations.len())
            .field(
                "circuits",
                Json::Arr(circuits.into_iter().map(Json::from).collect()),
            )
            .field("passed", self.passed())
            .field("invariants", per_invariant)
            .field("violations", Json::Arr(violations))
            .field(
                "repros",
                Json::Arr(self.repros.iter().map(ReproCase::to_json).collect()),
            )
    }
}
