//! Combinatoric cross-configuration scenario harness for the path delay
//! fault ATPG pipeline.
//!
//! The paper's procedures carry many orthogonal knobs — circuit, delay
//! population sizing (`N_P`/`N_P0`), number of target sets `k`, compaction
//! heuristic, simulation backend/width/events, static learning, budgets
//! and checkpoint/resume. Each knob is tested in isolation elsewhere; this
//! crate tests their *products*. It enumerates the cross-product of axis
//! values ([`MatrixAxes`]), runs every (sampled) cell through the shared
//! generation session fanned out over worker threads, and checks six
//! cross-cell invariant families ([`invariants`]):
//!
//! * **ident** — throughput axes (backend × width × events × generous
//!   budget × run mode) never change results,
//! * **kmono** — uncompacted generation is independent of `k`,
//! * **resume** — cancel + checkpoint + resume equals uninterrupted,
//! * **learning** — static learning removes only proven-untestable faults,
//! * **chaos** — injected I/O faults ([`pdf_chaos`] failpoints on the
//!   checkpoint path) heal through retries and previous-generation
//!   recovery without changing a single result byte,
//! * **sensitize** — the false-path pre-elimination filter is sound: the
//!   filtered population is a subset of the unfiltered one, nothing the
//!   unfiltered cell detects is eliminated, and the in-cell exact-search
//!   audit confirms no eliminated fault is satisfiable.
//!
//! Any failing cell is auto-minimized abi-cafe-style ([`minimize`]) into
//! the smallest reproducing circuit + configuration, written as a
//! self-contained `pdf-matrix-repro` JSON artifact ([`ReproCase`]) that
//! replays to the same failure, and the whole run is summarized in a
//! `pdf-matrix-report` document ([`MatrixOutcome::to_report_json`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod invariants;
pub mod minimize;
pub mod report;
pub mod repro;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{OnceLock, PoisonError, RwLock};

use pdf_netlist::Circuit;
use pdf_sim::par_chunk_map;

pub use cell::{run_cell, CellConfig, CellObservation, Injection, MatrixAxes, RunMode};
pub use invariants::{check_all, Invariant, Violation};
pub use minimize::{minimize, netlist_by_name, FailureProbe, Minimized};
pub use report::{MatrixOutcome, REPORT_SCHEMA, REPORT_VERSION};
pub use repro::{ReproCase, REPRO_SCHEMA, REPRO_VERSION};

/// Resolves a circuit name the way every matrix entry point does: the
/// paper's exact `s27`, or a synthetic benchmark stand-in.
#[must_use]
pub fn resolve_circuit(name: &str) -> Option<Circuit> {
    if name == "s27" {
        return Some(pdf_netlist::iscas::s27());
    }
    netlist_by_name(name).and_then(|n| n.to_circuit().ok())
}

/// The process-wide chaos gate: the failpoint registry is global, so a
/// cell that arms failpoints takes the write side while clean cells run
/// concurrently under the read side. Shared across every [`MatrixRunner`]
/// in the process so concurrent in-process matrix runs cannot
/// cross-contaminate either.
fn chaos_gate() -> &'static RwLock<()> {
    static GATE: OnceLock<RwLock<()>> = OnceLock::new();
    GATE.get_or_init(|| RwLock::new(()))
}

/// Drop guard that disarms the failpoint registry even when the cell
/// panics, so one poisoned chaos cell cannot leak failpoints into the
/// rest of the matrix.
struct ArmedFailpoints;

impl ArmedFailpoints {
    fn install(spec: &pdf_chaos::FailpointSpec) -> ArmedFailpoints {
        pdf_chaos::install(spec);
        ArmedFailpoints
    }
}

impl Drop for ArmedFailpoints {
    fn drop(&mut self) {
        pdf_chaos::clear();
    }
}

/// The matrix driver: axes, sampling bound, and the optional test-only
/// observation injection.
pub struct MatrixRunner {
    axes: MatrixAxes,
    max_cells: usize,
    injection: Option<Injection>,
}

impl MatrixRunner {
    /// A runner over `axes` with no sampling bound.
    #[must_use]
    pub fn new(axes: MatrixAxes) -> MatrixRunner {
        MatrixRunner {
            axes,
            max_cells: usize::MAX,
            injection: None,
        }
    }

    /// Caps the number of executed cells; the cross-product is
    /// deterministically stride-sampled down to the cap.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: usize) -> MatrixRunner {
        self.max_cells = max_cells;
        self
    }

    /// Installs a test-only observation corruption hook. The hook runs
    /// after every cell execution — including the re-runs the minimizer
    /// performs, so injected failures survive shrinking.
    #[must_use]
    pub fn with_injection(mut self, injection: Injection) -> MatrixRunner {
        self.injection = Some(injection);
        self
    }

    /// The cells this runner would execute. Stride sampling can land on
    /// a chaos cell without its `faults: None` twin, or a sensitize-on
    /// cell without its off twin; the missing twins are appended so the
    /// chaos and sensitize families always have a reference cell. An
    /// appended twin is itself processed (a chaos+sensitize cell gets a
    /// clean twin that in turn gets its own sensitize-off twin).
    #[must_use]
    pub fn cells(&self) -> Vec<CellConfig> {
        let cells = self.axes.cells(self.max_cells);
        let mut seen: BTreeSet<String> = cells.iter().map(|c| c.label()).collect();
        let mut out = cells.clone();
        let mut queue = cells;
        while let Some(cell) = queue.pop() {
            let mut twins = Vec::new();
            if cell.faults.is_some() {
                twins.push(cell.clean_twin());
            }
            if cell.sensitize {
                twins.push(cell.sensitize_twin());
            }
            for twin in twins {
                if seen.insert(twin.label()) {
                    out.push(twin.clone());
                    queue.push(twin);
                }
            }
        }
        out
    }

    fn observe(&self, circuit: &Circuit, config: &CellConfig) -> CellObservation {
        let mut observation = match &config.faults {
            // The failpoint registry is process-global, so chaos cells
            // serialize behind a write lock while clean cells share a
            // read lock: workers still run clean cells concurrently, but
            // no cell ever executes under another cell's failpoints.
            Some(spec) => {
                let _gate = chaos_gate().write().unwrap_or_else(PoisonError::into_inner);
                match pdf_chaos::FailpointSpec::parse(spec) {
                    Ok(spec) => {
                        // The guard clears the registry (in reverse
                        // declaration order) before the gate releases.
                        let _armed = ArmedFailpoints::install(&spec);
                        run_cell(circuit, config)
                    }
                    Err(error) => {
                        let mut observation = run_cell(circuit, &config.clean_twin());
                        observation.config = config.clone();
                        observation.error = Some(format!("invalid faults axis: {error}"));
                        observation
                    }
                }
            }
            None => {
                let _gate = chaos_gate().read().unwrap_or_else(PoisonError::into_inner);
                run_cell(circuit, config)
            }
        };
        if let Some(injection) = &self.injection {
            injection(config, &mut observation);
        }
        observation
    }

    /// Re-runs `cells` on `circuit` and returns the detail of the first
    /// violation of `invariant`, if the family still fails — the probe
    /// the minimizer drives.
    #[must_use]
    pub fn probe(
        &self,
        circuit: &Circuit,
        cells: &[CellConfig],
        invariant: Invariant,
    ) -> Option<String> {
        let observations: Vec<CellObservation> =
            cells.iter().map(|c| self.observe(circuit, c)).collect();
        check_all(&observations)
            .into_iter()
            .find(|v| v.invariant == invariant)
            .map(|v| v.detail)
    }

    /// Runs the matrix: resolve circuits, fan the cells out over worker
    /// threads, check all invariant families, and minimize every
    /// violation into a repro artifact.
    ///
    /// # Panics
    ///
    /// Panics when an axis names a circuit that does not resolve — a
    /// misconfigured matrix must not silently shrink.
    #[must_use]
    pub fn run(&self) -> MatrixOutcome {
        let cells = self.cells();
        let mut circuits: BTreeMap<String, Circuit> = BTreeMap::new();
        for cell in &cells {
            if !circuits.contains_key(&cell.circuit) {
                let circuit = resolve_circuit(&cell.circuit)
                    .unwrap_or_else(|| panic!("unknown matrix circuit `{}`", cell.circuit));
                circuits.insert(cell.circuit.clone(), circuit);
            }
        }

        // One chunk per worker over the cell list; results come back in
        // cell order, so the whole observation list is deterministic.
        let observations: Vec<CellObservation> = par_chunk_map(&cells, 1, |_, chunk| {
            chunk
                .iter()
                .map(|cell| self.observe(&circuits[&cell.circuit], cell))
                .collect::<Vec<CellObservation>>()
        })
        .into_iter()
        .flatten()
        .collect();

        let violations = check_all(&observations);
        let repros = violations
            .iter()
            .map(|violation| {
                let name = &violation.cells[0].circuit;
                let netlist = netlist_by_name(name);
                let minimized = minimize(
                    &circuits[name],
                    netlist.as_ref(),
                    &violation.cells,
                    violation.invariant,
                    &violation.detail,
                    &|circuit, cells, invariant| self.probe(circuit, cells, invariant),
                );
                ReproCase {
                    invariant: violation.invariant,
                    detail: minimized.detail,
                    circuit: name.clone(),
                    bench: minimized.bench,
                    cells: minimized.cells,
                }
            })
            .collect();

        MatrixOutcome {
            observations,
            violations,
            repros,
        }
    }
}

/// Replays a repro artifact: re-runs its cells on its circuit and
/// re-checks its invariant family.
///
/// Returns the failure detail when the artifact still reproduces, `None`
/// when the underlying bug is fixed.
///
/// # Errors
///
/// Returns a message when the artifact's circuit cannot be resolved.
pub fn replay(repro: &ReproCase) -> Result<Option<String>, String> {
    let circuit = repro.resolve_circuit()?;
    let runner = MatrixRunner::new(MatrixAxes::smoke());
    Ok(runner.probe(&circuit, &repro.cells, repro.invariant))
}
