//! Combinatoric cross-configuration scenario harness for the path delay
//! fault ATPG pipeline.
//!
//! The paper's procedures carry many orthogonal knobs — circuit, delay
//! population sizing (`N_P`/`N_P0`), number of target sets `k`, compaction
//! heuristic, simulation backend/width/events, static learning, budgets
//! and checkpoint/resume. Each knob is tested in isolation elsewhere; this
//! crate tests their *products*. It enumerates the cross-product of axis
//! values ([`MatrixAxes`]), runs every (sampled) cell through the shared
//! generation session fanned out over worker threads, and checks four
//! cross-cell invariant families ([`invariants`]):
//!
//! * **ident** — throughput axes (backend × width × events × generous
//!   budget × run mode) never change results,
//! * **kmono** — uncompacted generation is independent of `k`,
//! * **resume** — cancel + checkpoint + resume equals uninterrupted,
//! * **learning** — static learning removes only proven-untestable faults.
//!
//! Any failing cell is auto-minimized abi-cafe-style ([`minimize`]) into
//! the smallest reproducing circuit + configuration, written as a
//! self-contained `pdf-matrix-repro` JSON artifact ([`ReproCase`]) that
//! replays to the same failure, and the whole run is summarized in a
//! `pdf-matrix-report` document ([`MatrixOutcome::to_report_json`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod invariants;
pub mod minimize;
pub mod report;
pub mod repro;

use std::collections::BTreeMap;

use pdf_netlist::Circuit;
use pdf_sim::par_chunk_map;

pub use cell::{run_cell, CellConfig, CellObservation, Injection, MatrixAxes, RunMode};
pub use invariants::{check_all, Invariant, Violation};
pub use minimize::{minimize, netlist_by_name, FailureProbe, Minimized};
pub use report::{MatrixOutcome, REPORT_SCHEMA, REPORT_VERSION};
pub use repro::{ReproCase, REPRO_SCHEMA, REPRO_VERSION};

/// Resolves a circuit name the way every matrix entry point does: the
/// paper's exact `s27`, or a synthetic benchmark stand-in.
#[must_use]
pub fn resolve_circuit(name: &str) -> Option<Circuit> {
    if name == "s27" {
        return Some(pdf_netlist::iscas::s27());
    }
    netlist_by_name(name).and_then(|n| n.to_circuit().ok())
}

/// The matrix driver: axes, sampling bound, and the optional test-only
/// observation injection.
pub struct MatrixRunner {
    axes: MatrixAxes,
    max_cells: usize,
    injection: Option<Injection>,
}

impl MatrixRunner {
    /// A runner over `axes` with no sampling bound.
    #[must_use]
    pub fn new(axes: MatrixAxes) -> MatrixRunner {
        MatrixRunner {
            axes,
            max_cells: usize::MAX,
            injection: None,
        }
    }

    /// Caps the number of executed cells; the cross-product is
    /// deterministically stride-sampled down to the cap.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: usize) -> MatrixRunner {
        self.max_cells = max_cells;
        self
    }

    /// Installs a test-only observation corruption hook. The hook runs
    /// after every cell execution — including the re-runs the minimizer
    /// performs, so injected failures survive shrinking.
    #[must_use]
    pub fn with_injection(mut self, injection: Injection) -> MatrixRunner {
        self.injection = Some(injection);
        self
    }

    /// The cells this runner would execute.
    #[must_use]
    pub fn cells(&self) -> Vec<CellConfig> {
        self.axes.cells(self.max_cells)
    }

    fn observe(&self, circuit: &Circuit, config: &CellConfig) -> CellObservation {
        let mut observation = run_cell(circuit, config);
        if let Some(injection) = &self.injection {
            injection(config, &mut observation);
        }
        observation
    }

    /// Re-runs `cells` on `circuit` and returns the detail of the first
    /// violation of `invariant`, if the family still fails — the probe
    /// the minimizer drives.
    #[must_use]
    pub fn probe(
        &self,
        circuit: &Circuit,
        cells: &[CellConfig],
        invariant: Invariant,
    ) -> Option<String> {
        let observations: Vec<CellObservation> =
            cells.iter().map(|c| self.observe(circuit, c)).collect();
        check_all(&observations)
            .into_iter()
            .find(|v| v.invariant == invariant)
            .map(|v| v.detail)
    }

    /// Runs the matrix: resolve circuits, fan the cells out over worker
    /// threads, check all invariant families, and minimize every
    /// violation into a repro artifact.
    ///
    /// # Panics
    ///
    /// Panics when an axis names a circuit that does not resolve — a
    /// misconfigured matrix must not silently shrink.
    #[must_use]
    pub fn run(&self) -> MatrixOutcome {
        let cells = self.cells();
        let mut circuits: BTreeMap<String, Circuit> = BTreeMap::new();
        for cell in &cells {
            if !circuits.contains_key(&cell.circuit) {
                let circuit = resolve_circuit(&cell.circuit)
                    .unwrap_or_else(|| panic!("unknown matrix circuit `{}`", cell.circuit));
                circuits.insert(cell.circuit.clone(), circuit);
            }
        }

        // One chunk per worker over the cell list; results come back in
        // cell order, so the whole observation list is deterministic.
        let observations: Vec<CellObservation> = par_chunk_map(&cells, 1, |_, chunk| {
            chunk
                .iter()
                .map(|cell| self.observe(&circuits[&cell.circuit], cell))
                .collect::<Vec<CellObservation>>()
        })
        .into_iter()
        .flatten()
        .collect();

        let violations = check_all(&observations);
        let repros = violations
            .iter()
            .map(|violation| {
                let name = &violation.cells[0].circuit;
                let netlist = netlist_by_name(name);
                let minimized = minimize(
                    &circuits[name],
                    netlist.as_ref(),
                    &violation.cells,
                    violation.invariant,
                    &violation.detail,
                    &|circuit, cells, invariant| self.probe(circuit, cells, invariant),
                );
                ReproCase {
                    invariant: violation.invariant,
                    detail: minimized.detail,
                    circuit: name.clone(),
                    bench: minimized.bench,
                    cells: minimized.cells,
                }
            })
            .collect();

        MatrixOutcome {
            observations,
            violations,
            repros,
        }
    }
}

/// Replays a repro artifact: re-runs its cells on its circuit and
/// re-checks its invariant family.
///
/// Returns the failure detail when the artifact still reproduces, `None`
/// when the underlying bug is fixed.
///
/// # Errors
///
/// Returns a message when the artifact's circuit cannot be resolved.
pub fn replay(repro: &ReproCase) -> Result<Option<String>, String> {
    let circuit = repro.resolve_circuit()?;
    let runner = MatrixRunner::new(MatrixAxes::smoke());
    Ok(runner.probe(&circuit, &repro.cells, repro.invariant))
}
