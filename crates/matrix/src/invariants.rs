//! Cross-cell invariant checkers.
//!
//! Each checker consumes the full observation list and yields
//! [`Violation`]s naming the witnesses. The five families:
//!
//! * **ident** — cells that differ only in throughput axes (backend, tile
//!   width, event propagation, an unexhausted budget, run mode) must
//!   produce byte-identical test text and detection totals.
//! * **kmono** — under the uncompacted heuristic the generated tests are a
//!   function of set 0 alone, so cells differing only in `k` must produce
//!   identical test text and detection totals. (For compacted heuristics
//!   the paper's claim is statistical, not exact — checking it as an
//!   invariant would make the harness flaky, so it is not checked.)
//! * **resume** — a cancelled-at-a-checkpoint run, resumed, must equal the
//!   uninterrupted run byte for byte.
//! * **learning** — static learning only removes proven-untestable faults:
//!   the learning-off population must be a superset of the learning-on
//!   population, and the off-only faults must go undetected.
//! * **chaos** — a cell run under injected I/O faults (transient errors,
//!   torn checkpoint writes) must heal through retries and recovery and
//!   finish byte-identical to its clean twin, with no run-level error.
//! * **sensitize** — the static sensitizability pass only pre-eliminates
//!   provably false faults: the off population ⊇ the on population, the
//!   off-only faults go undetected in the off cell, and the in-cell
//!   exact-search audit found no eliminated-but-testable fault.

use std::collections::BTreeMap;

use pdf_atpg::Compaction;

use crate::cell::{CellConfig, CellObservation, RunMode};

/// The invariant families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Throughput axes never change results.
    Ident,
    /// Uncompacted generation is independent of the set count `k`.
    KMonotonic,
    /// Cancel + checkpoint + resume equals uninterrupted.
    Resume,
    /// Learning removes only proven-untestable faults.
    Learning,
    /// Injected I/O faults heal without changing results.
    Chaos,
    /// Sensitizability pre-elimination removes only provably false faults.
    Sensitize,
}

impl Invariant {
    /// All families, report order.
    pub const ALL: [Invariant; 6] = [
        Invariant::Ident,
        Invariant::KMonotonic,
        Invariant::Resume,
        Invariant::Learning,
        Invariant::Chaos,
        Invariant::Sensitize,
    ];

    /// Stable lowercase label
    /// (`ident`/`kmono`/`resume`/`learning`/`chaos`/`sensitize`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Invariant::Ident => "ident",
            Invariant::KMonotonic => "kmono",
            Invariant::Resume => "resume",
            Invariant::Learning => "learning",
            Invariant::Chaos => "chaos",
            Invariant::Sensitize => "sensitize",
        }
    }

    /// Resolves a family from its label.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Invariant> {
        Invariant::ALL.into_iter().find(|i| i.label() == label)
    }
}

/// One invariant failure with its witness cells.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The family that failed.
    pub invariant: Invariant,
    /// Human-readable description of the mismatch.
    pub detail: String,
    /// The cells whose observations disagree (re-running exactly these
    /// cells reproduces the failure).
    pub cells: Vec<CellConfig>,
}

/// The faults-axis component shared by every grouping key: cells under
/// injected faults are compared by the dedicated chaos family, never
/// pooled with clean cells.
fn faults_component(c: &CellConfig) -> &str {
    c.faults.as_deref().unwrap_or("none")
}

/// The grouping key for the identity family: everything that is allowed
/// to change the results.
fn ident_key(c: &CellConfig) -> String {
    format!(
        "{}|{}|k={}|np={}|np0={}|learn={}|sens={}|seed={}|faults={}",
        c.circuit,
        c.compaction.label(),
        c.k,
        c.n_p,
        c.n_p0,
        c.learning,
        c.sensitize,
        c.seed,
        faults_component(c)
    )
}

/// The grouping key for the k family: everything but `k`, restricted to
/// uncompacted cells by the caller.
fn kmono_key(c: &CellConfig) -> String {
    format!(
        "{}|{}|np={}|np0={}|learn={}|sens={}|seed={}|{}|{}|faults={}",
        c.circuit,
        c.compaction.label(),
        c.n_p,
        c.n_p0,
        c.learning,
        c.sensitize,
        c.seed,
        c.sim_options().label(),
        c.run_mode.label(),
        faults_component(c)
    )
}

/// The grouping key for the learning family: everything but the learning
/// switch.
fn learning_key(c: &CellConfig) -> String {
    format!(
        "{}|{}|k={}|np={}|np0={}|sens={}|seed={}|{}|{}|budget={:?}|faults={}",
        c.circuit,
        c.compaction.label(),
        c.k,
        c.n_p,
        c.n_p0,
        c.sensitize,
        c.seed,
        c.sim_options().label(),
        c.run_mode.label(),
        c.budget_minutes,
        faults_component(c)
    )
}

/// The grouping key for the sensitize family: everything but the
/// sensitize switch.
fn sensitize_key(c: &CellConfig) -> String {
    format!(
        "{}|{}|k={}|np={}|np0={}|learn={}|seed={}|{}|{}|budget={:?}|faults={}",
        c.circuit,
        c.compaction.label(),
        c.k,
        c.n_p,
        c.n_p0,
        c.learning,
        c.seed,
        c.sim_options().label(),
        c.run_mode.label(),
        c.budget_minutes,
        faults_component(c)
    )
}

fn groups<F>(observations: &[CellObservation], key: F) -> BTreeMap<String, Vec<&CellObservation>>
where
    F: Fn(&CellConfig) -> String,
{
    let mut map: BTreeMap<String, Vec<&CellObservation>> = BTreeMap::new();
    for o in observations {
        map.entry(key(&o.config)).or_default().push(o);
    }
    map
}

/// ident: every cell in a throughput group must match the group's first
/// cell byte for byte.
#[must_use]
pub fn check_ident(observations: &[CellObservation]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (key, group) in groups(observations, ident_key) {
        let Some((reference, rest)) = group.split_first() else {
            continue;
        };
        for o in rest {
            if o.tests_text != reference.tests_text {
                violations.push(Violation {
                    invariant: Invariant::Ident,
                    detail: format!(
                        "group `{key}`: tests differ between [{}] ({} tests) and [{}] ({} tests)",
                        reference.config.label(),
                        reference.tests_text.lines().count(),
                        o.config.label(),
                        o.tests_text.lines().count()
                    ),
                    cells: vec![reference.config.clone(), o.config.clone()],
                });
            } else if o.detected_total != reference.detected_total {
                violations.push(Violation {
                    invariant: Invariant::Ident,
                    detail: format!(
                        "group `{key}`: detected_total {} vs {} with identical tests",
                        reference.detected_total, o.detected_total
                    ),
                    cells: vec![reference.config.clone(), o.config.clone()],
                });
            }
        }
    }
    violations
}

/// kmono: uncompacted cells differing only in `k` must agree exactly.
#[must_use]
pub fn check_kmono(observations: &[CellObservation]) -> Vec<Violation> {
    let uncompacted: Vec<CellObservation> = observations
        .iter()
        .filter(|o| o.config.compaction == Compaction::Uncompacted)
        .cloned()
        .collect();
    let mut violations = Vec::new();
    for (key, mut group) in groups(&uncompacted, kmono_key) {
        group.sort_by_key(|o| o.config.k);
        let Some((reference, rest)) = group.split_first() else {
            continue;
        };
        for o in rest {
            if o.tests_text != reference.tests_text || o.detected_total != reference.detected_total
            {
                violations.push(Violation {
                    invariant: Invariant::KMonotonic,
                    detail: format!(
                        "group `{key}`: uncompacted generation depends on k — \
                         k={} gives {} tests / {} detected, k={} gives {} tests / {} detected",
                        reference.config.k,
                        reference.tests_text.lines().count(),
                        reference.detected_total,
                        o.config.k,
                        o.tests_text.lines().count(),
                        o.detected_total
                    ),
                    cells: vec![reference.config.clone(), o.config.clone()],
                });
            }
        }
    }
    violations
}

/// resume: per-cell, the cancelled-then-resumed composite must equal the
/// uninterrupted run. Run-level errors (resume rejection, unreadable
/// checkpoint) are violations too.
#[must_use]
pub fn check_resume(observations: &[CellObservation]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for o in observations {
        if let Some(error) = &o.error {
            violations.push(Violation {
                invariant: Invariant::Resume,
                detail: format!("[{}]: {error}", o.config.label()),
                cells: vec![o.config.clone()],
            });
            continue;
        }
        if !matches!(o.config.run_mode, RunMode::CheckpointResume { .. }) {
            continue;
        }
        let resumed_matches = o.resume_tests_text.as_deref() == Some(o.tests_text.as_str())
            && o.resume_detected_total == Some(o.detected_total);
        if !resumed_matches {
            violations.push(Violation {
                invariant: Invariant::Resume,
                detail: format!(
                    "[{}]: resumed run diverges from uninterrupted run \
                     ({} vs {} tests, {:?} vs {} detected)",
                    o.config.label(),
                    o.resume_tests_text
                        .as_deref()
                        .map_or(0, |t| t.lines().count()),
                    o.tests_text.lines().count(),
                    o.resume_detected_total,
                    o.detected_total
                ),
                cells: vec![o.config.clone()],
            });
        }
    }
    violations
}

/// learning: within a pair differing only in the learning switch, the
/// off population ⊇ on population, and every fault learning eliminated
/// must go undetected in the off cell (learning only ever removes
/// proven-untestable faults).
#[must_use]
pub fn check_learning(observations: &[CellObservation]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (key, group) in groups(observations, learning_key) {
        let off = group.iter().find(|o| !o.config.learning);
        let on = group.iter().find(|o| o.config.learning);
        let (Some(off), Some(on)) = (off, on) else {
            continue;
        };
        let off_keys: std::collections::BTreeSet<&str> =
            off.fault_keys.iter().map(String::as_str).collect();
        let missing: Vec<&str> = on
            .fault_keys
            .iter()
            .map(String::as_str)
            .filter(|k| !off_keys.contains(k))
            .collect();
        if !missing.is_empty() {
            violations.push(Violation {
                invariant: Invariant::Learning,
                detail: format!(
                    "group `{key}`: learning *added* {} fault(s) absent without it \
                     (first: {})",
                    missing.len(),
                    missing[0]
                ),
                cells: vec![off.config.clone(), on.config.clone()],
            });
            continue;
        }
        let on_keys: std::collections::BTreeSet<&str> =
            on.fault_keys.iter().map(String::as_str).collect();
        let falsely_eliminated: Vec<&str> = off
            .fault_keys
            .iter()
            .enumerate()
            .filter(|(i, k)| !on_keys.contains(k.as_str()) && off.detected[*i])
            .map(|(_, k)| k.as_str())
            .collect();
        if !falsely_eliminated.is_empty() {
            violations.push(Violation {
                invariant: Invariant::Learning,
                detail: format!(
                    "group `{key}`: learning eliminated {} fault(s) the learning-off \
                     cell detects (first: {}) — they are testable, not untestable",
                    falsely_eliminated.len(),
                    falsely_eliminated[0]
                ),
                cells: vec![off.config.clone(), on.config.clone()],
            });
        }
    }
    violations
}

/// chaos: a cell run under injected I/O faults must finish without a
/// run-level error and byte-match its clean twin (the observation whose
/// config differs only by `faults: None`). The matrix restricts the
/// faults axis to healing kinds — transient errors absorbed by retries
/// and torn writes absorbed by previous-generation recovery — so any
/// divergence means the durability machinery leaked into results.
#[must_use]
pub fn check_chaos(observations: &[CellObservation]) -> Vec<Violation> {
    let mut clean: BTreeMap<String, &CellObservation> = BTreeMap::new();
    for o in observations {
        if o.config.faults.is_none() {
            clean.insert(o.config.label(), o);
        }
    }
    let mut violations = Vec::new();
    for o in observations {
        if o.config.faults.is_none() {
            continue;
        }
        if let Some(error) = &o.error {
            violations.push(Violation {
                invariant: Invariant::Chaos,
                detail: format!(
                    "[{}]: injected faults caused a run-level error: {error}",
                    o.config.label()
                ),
                cells: vec![o.config.clone()],
            });
            continue;
        }
        let Some(reference) = clean.get(&o.config.clean_twin().label()) else {
            // The sampler did not land on the clean twin; nothing to
            // compare against (the runner injects twins for sampled
            // chaos cells, so this only happens for hand-built lists).
            continue;
        };
        if o.tests_text != reference.tests_text || o.detected_total != reference.detected_total {
            violations.push(Violation {
                invariant: Invariant::Chaos,
                detail: format!(
                    "[{}]: results diverge from the clean twin under injected faults \
                     ({} vs {} tests, {} vs {} detected)",
                    o.config.label(),
                    o.tests_text.lines().count(),
                    reference.tests_text.lines().count(),
                    o.detected_total,
                    reference.detected_total
                ),
                cells: vec![reference.config.clone(), o.config.clone()],
            });
        }
    }
    violations
}

/// sensitize: the pre-elimination filter may only drop provably false
/// (untestable) faults. Three checks:
///
/// * the in-cell exact-search audit found no eliminated fault that
///   complete search can satisfy ([`CellObservation::sensitize_testable`]);
/// * within a pair differing only in the sensitize switch, the off
///   population ⊇ the on population (filtering is contractive);
/// * every fault the filter eliminated goes undetected in the off cell —
///   a detected elimination means a testable fault was thrown away.
#[must_use]
pub fn check_sensitize(observations: &[CellObservation]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for o in observations {
        if !o.sensitize_testable.is_empty() {
            violations.push(Violation {
                invariant: Invariant::Sensitize,
                detail: format!(
                    "[{}]: exact search proved {} eliminated fault(s) testable (first: {})",
                    o.config.label(),
                    o.sensitize_testable.len(),
                    o.sensitize_testable[0]
                ),
                cells: vec![o.config.clone()],
            });
        }
    }
    for (key, group) in groups(observations, sensitize_key) {
        let off = group.iter().find(|o| !o.config.sensitize);
        let on = group.iter().find(|o| o.config.sensitize);
        let (Some(off), Some(on)) = (off, on) else {
            continue;
        };
        let off_keys: std::collections::BTreeSet<&str> =
            off.fault_keys.iter().map(String::as_str).collect();
        let grown: Vec<&str> = on
            .fault_keys
            .iter()
            .map(String::as_str)
            .filter(|k| !off_keys.contains(k))
            .collect();
        if !grown.is_empty() {
            violations.push(Violation {
                invariant: Invariant::Sensitize,
                detail: format!(
                    "group `{key}`: the sensitize filter *added* {} fault(s) absent \
                     without it (first: {})",
                    grown.len(),
                    grown[0]
                ),
                cells: vec![off.config.clone(), on.config.clone()],
            });
            continue;
        }
        let on_keys: std::collections::BTreeSet<&str> =
            on.fault_keys.iter().map(String::as_str).collect();
        let falsely_eliminated: Vec<&str> = off
            .fault_keys
            .iter()
            .enumerate()
            .filter(|(i, k)| !on_keys.contains(k.as_str()) && off.detected[*i])
            .map(|(_, k)| k.as_str())
            .collect();
        if !falsely_eliminated.is_empty() {
            violations.push(Violation {
                invariant: Invariant::Sensitize,
                detail: format!(
                    "group `{key}`: the sensitize filter eliminated {} fault(s) the \
                     off cell detects (first: {}) — they are testable, not false",
                    falsely_eliminated.len(),
                    falsely_eliminated[0]
                ),
                cells: vec![off.config.clone(), on.config.clone()],
            });
        }
    }
    violations
}

/// Runs all six families over the observations, report order.
#[must_use]
pub fn check_all(observations: &[CellObservation]) -> Vec<Violation> {
    let mut violations = check_ident(observations);
    violations.extend(check_kmono(observations));
    violations.extend(check_resume(observations));
    violations.extend(check_learning(observations));
    violations.extend(check_chaos(observations));
    violations.extend(check_sensitize(observations));
    violations
}
