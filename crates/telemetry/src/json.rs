//! A dependency-free JSON value with a writer *and* a parser.
//!
//! The build environment has no crates.io access, so run reports cannot
//! use `serde_json`. The writer mirrors the archival dumps elsewhere in
//! the workspace (two-space indent, object keys in insertion order); the
//! parser exists so reports round-trip ([`crate::RunReport::from_json`])
//! and so CI can validate emitted telemetry without external tooling.

use core::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder starting empty.
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not [`Json::Obj`].
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Looks up a field of an object (`None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent, keys in
    /// insertion order, trailing newline).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ParseJsonError`] on malformed input, including trailing
    /// garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Json, ParseJsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the top-level value"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers print without a trailing ".0".
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error returned by [`Json::parse`] (and report deserialization).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseJsonError {
    pub(crate) fn schema(message: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            offset: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseJsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseJsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => s.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Four hex digits of a `\u` escape (the `\u` itself already consumed).
    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Decodes one `\uXXXX` escape, pairing UTF-16 surrogates: a high
    /// surrogate must be immediately followed by a `\uXXXX` low surrogate
    /// (together encoding one supplementary-plane character), and a
    /// surrogate in any other position is a hard parse error — replacing
    /// it with U+FFFD would silently corrupt round-tripped report strings.
    fn unicode_escape(&mut self) -> Result<char, ParseJsonError> {
        let code = self.hex4()?;
        match code {
            0xD800..=0xDBFF => {
                if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                    return Err(self.err(format!(
                        "lone surrogate \\u{code:04X} (a high surrogate must be \
                         followed by a \\u low-surrogate escape)"
                    )));
                }
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&low) {
                    return Err(self.err(format!(
                        "lone surrogate \\u{code:04X} (followed by \\u{low:04X}, \
                         which is not a low surrogate)"
                    )));
                }
                let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                Ok(char::from_u32(scalar).expect("paired surrogates decode to a valid scalar"))
            }
            0xDC00..=0xDFFF => Err(self.err(format!(
                "lone surrogate \\u{code:04X} (a low surrogate without a preceding \
                 high surrogate)"
            ))),
            _ => Ok(char::from_u32(code).expect("non-surrogate BMP code points are chars")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let j = Json::object()
            .field("name", "enumerate")
            .field("seconds", 0.25f64)
            .field("calls", 3u64)
            .field("empty", Json::Arr(Vec::new()))
            .field(
                "children",
                Json::Arr(vec![Json::object().field("name", "inner")]),
            )
            .field("note", "quotes \" and \\ and\nnewlines\tok");
        let text = j.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let j = Json::parse(r#"{"a": [1, 2.5, -3e-2, true, false, null], "b": {}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 6);
        assert_eq!(j.get("b"), Some(&Json::Obj(Vec::new())));
        assert_eq!(
            Json::parse(r#""A\n""#).unwrap(),
            Json::Str("A\n".to_owned())
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"abc", "{]"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn surrogate_pairs_decode_to_supplementary_characters() {
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".to_owned())
        );
        assert_eq!(
            Json::parse(r#""a𐀀b""#).unwrap(),
            Json::Str("a\u{10000}b".to_owned())
        );
        assert_eq!(
            Json::parse(r#""􏿿""#).unwrap(),
            Json::Str("\u{10FFFF}".to_owned())
        );
        // BMP escapes still decode directly.
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".to_owned()));
    }

    #[test]
    fn lone_surrogates_are_named_parse_errors() {
        for bad in [
            r#""\uD800""#,       // high surrogate at end of string
            r#""\uD83Dx""#,      // high surrogate followed by a plain char
            r#""\uD83D\n""#,     // high surrogate followed by a non-\u escape
            r#""\uD83D\uD83D""#, // high surrogate followed by another high
            r#""\uDE00""#,       // low surrogate on its own
            r#""\uDC00\uD800""#, // pair in the wrong order
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(
                e.message.contains("lone surrogate"),
                "{bad}: expected a lone-surrogate error, got: {e}"
            );
        }
        // A truncated low half still reports the truncation.
        let e = Json::parse(r#""\uD83D\uDE"#).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(256))]

        /// Writer → parser round trip over arbitrary strings, including
        /// supplementary-plane characters (which the writer emits as raw
        /// UTF-8) and control characters (which it `\u`-escapes).
        fn arbitrary_strings_round_trip(
            codes in proptest::collection::vec(0u32..0x11_0000, 0usize..64)
        ) {
            let s: String = codes
                .into_iter()
                .filter_map(char::from_u32) // skips the surrogate gap
                .collect();
            let doc = Json::object()
                .field("s", s.clone())
                .field("arr", Json::Arr(vec![Json::Str(s.clone())]));
            let parsed = Json::parse(&doc.to_pretty());
            proptest::prop_assert_eq!(parsed.as_ref(), Ok(&doc));

            // The same string forced through `\u` escapes (UTF-16 code
            // units, surrogate pairs for non-BMP) must decode identically.
            let mut escaped = String::from('"');
            for unit in s.encode_utf16() {
                let _ = write!(escaped, "\\u{unit:04x}");
            }
            escaped.push('"');
            proptest::prop_assert_eq!(Json::parse(&escaped), Ok(Json::Str(s)));
        }
    }

    #[test]
    fn accessors() {
        let j = Json::object().field("n", 2u64).field("s", "x");
        assert_eq!(j.get("n").unwrap().as_num(), Some(2.0));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.as_num(), None);
        assert_eq!(j.as_arr(), None);
    }
}
