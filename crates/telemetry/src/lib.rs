//! Phase-scoped span timers, monotonic counters and JSON run reports.
//!
//! The pipeline crates (`pdf-paths`, `pdf-faults`, `pdf-atpg`, `pdf-sim`)
//! instrument their phase boundaries with this crate so that a full run
//! through enumeration → untestable elimination → generation → compaction
//! → enrichment can report where time goes and how many faults each phase
//! handled — the per-phase counters Pomeranz & Reddy's evaluation tables
//! are built on — without any ad-hoc printing.
//!
//! Three pieces:
//!
//! * [`Span`] — an RAII phase timer on the monotonic clock. Spans nest:
//!   a span entered while another is active on the same thread becomes
//!   its child in the report tree. Re-entering the same name under the
//!   same parent accumulates into one node (`calls` counts entries), so
//!   a span in a per-test loop stays O(1) in memory.
//! * [`count`] — named monotonic counters ([`counters`] lists the
//!   well-known names).
//! * [`RunReport`] — a snapshot of the span tree and counters that
//!   serializes to JSON ([`RunReport::to_json`]) and parses back
//!   ([`RunReport::from_json`]).
//!
//! # The no-op sink
//!
//! Telemetry is **off by default**: every instrumented call first reads
//! one relaxed atomic flag and returns immediately when recording is
//! disabled, so instrumentation on hot paths costs a single branch. Turn
//! recording on with [`enable`], or let a [`Guard`] do it — [`Guard::from_env`]
//! honours the `PDF_TELEMETRY=<path>` environment variable and writes the
//! report when dropped.
//!
//! # Example
//!
//! ```
//! let _ = pdf_telemetry::begin_recording();
//! {
//!     let _phase = pdf_telemetry::Span::enter("enumerate");
//!     pdf_telemetry::count("store_evictions", 3);
//! }
//! let report = pdf_telemetry::report();
//! pdf_telemetry::disable();
//! assert_eq!(report.counter("store_evictions"), Some(3));
//! assert!(report.span("enumerate").unwrap().seconds > 0.0);
//! ```
//!
//! Global state is process-wide; concurrent tests that enable recording
//! must serialize (see the crate tests for the pattern).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;

pub use json::{Json, ParseJsonError};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Well-known counter names used across the workspace.
///
/// Counters are open-ended — any `&'static str` works — but the pipeline
/// crates stick to these so reports stay comparable across runs.
pub mod counters {
    /// Primary target faults a generation session attempted.
    pub const FAULTS_TARGETED: &str = "faults_targeted";
    /// Secondary target faults detected (accepted or for free).
    pub const SECONDARY_DETECTED: &str = "secondary_detected";
    /// Tests removed by static compaction sweeps.
    pub const TESTS_DROPPED: &str = "tests_dropped";
    /// Whole-sweep simulation passes (coverage, per-test detection, and
    /// the generator's drop loop).
    pub const SIM_PASSES: &str = "sim_passes";
    /// 64-lane blocks simulated by the packed kernel.
    pub const PACKED_BLOCKS: &str = "packed_blocks";
    /// Paths evicted from the capped enumeration store.
    pub const STORE_EVICTIONS: &str = "store_evictions";
    /// Chunks dispatched to worker threads by the simulation fan-out.
    pub const FANOUT_CHUNKS: &str = "fanout_chunks";
    /// Fan-out calls that ran inline (workload below the spawn threshold).
    pub const FANOUT_INLINE: &str = "fanout_inline";
    /// Randomized justification attempts beyond the first per call.
    pub const JUSTIFY_RETRIES: &str = "justify_retries";
    /// 64-lane random-completion blocks evaluated by the packed justifier.
    pub const JUSTIFY_PACKED_BLOCKS: &str = "justify_packed_blocks";
    /// Justification calls resolved by a random-completion lane (either
    /// backend; the lane index is the witness).
    pub const JUSTIFY_LANE_HITS: &str = "justify_lane_hits";
    /// Justification cone topologies served from the LRU cache.
    pub const CONE_CACHE_HIT: &str = "cone_cache_hit";
    /// Justification cone topologies built from scratch.
    pub const CONE_CACHE_MISS: &str = "cone_cache_miss";
    /// Fault candidates eliminated as undetectable (rules 1 and 2).
    pub const UNDETECTABLE_DROPPED: &str = "undetectable_dropped";
    /// Cooperative run-budget polls performed by run control.
    pub const CANCEL_POLLS: &str = "cancel_polls";
    /// Budget polls that observed an expired deadline (counted once per
    /// budget, when the deadline is first seen).
    pub const DEADLINE_HITS: &str = "deadline_hits";
    /// Checkpoint files written atomically by run control.
    pub const CHECKPOINTS_WRITTEN: &str = "checkpoints_written";
    /// Faults quarantined after a caught per-fault panic.
    pub const FAULTS_QUARANTINED: &str = "faults_quarantined";
    /// Contrapositive implications recorded by the static learning pass.
    pub const LEARNED_IMPLICATIONS: &str = "learned_implications";
    /// Faults eliminated only by the learned closure table (beyond the
    /// plain rule-2 implication check).
    pub const STATICALLY_ELIMINATED: &str = "statically_eliminated";
    /// Error-severity diagnostics reported by the structural linter.
    pub const LINT_ERRORS: &str = "lint_errors";
    /// Widest packed-kernel tile used this run, in lanes (recorded with
    /// [`record_max`](crate::record_max), not summed).
    pub const SIM_WIDTH: &str = "sim_width";
    /// Lines actually (re-)evaluated by event-driven propagation passes.
    pub const EVENTS_PROPAGATED: &str = "events_propagated";
    /// Lines visited but skipped by event-driven propagation because no
    /// fanin had changed.
    pub const LINES_SKIPPED: &str = "lines_skipped";
    /// Generation rounds committed by the work-stealing session pool.
    pub const POOL_ROUNDS: &str = "pool_rounds";
    /// Jobs a pool worker claimed from another worker's deque. Schedule-
    /// dependent by nature: diagnostic only, excluded from the
    /// determinism contract.
    pub const POOL_STEALS: &str = "pool_steals";
    /// Speculative builds discarded at commit because an earlier test in
    /// the same round already detected (or quarantined) their primary.
    pub const POOL_BUILDS_DISCARDED: &str = "pool_builds_discarded";
    /// Failpoint evaluations that fired an injected fault (pdf-chaos).
    pub const FAILPOINTS_HIT: &str = "failpoints_hit";
    /// Transient I/O errors healed by the bounded retry loop.
    pub const IO_RETRIES: &str = "io_retries";
    /// Checkpoint loads that fell back to the previous-good generation.
    pub const CHECKPOINT_RECOVERIES: &str = "checkpoint_recoveries";
    /// Paths classified by the static sensitizability pass (one count per
    /// stored path, regardless of verdict).
    pub const PATHS_CLASSIFIED: &str = "paths_classified";
    /// Fault candidates dropped by the sensitizability pre-filter because
    /// their path is statically proven false.
    pub const FALSE_PATHS_ELIMINATED: &str = "false_paths_eliminated";
    /// Guided-search branch decisions taken deterministically by the
    /// SCOAP testability guide instead of the justifier's RNG.
    pub const SCOAP_GUIDED_BRANCHES: &str = "scoap_guided_branches";
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is on. One relaxed load — this is the only cost
/// instrumented hot paths pay while telemetry is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on. Prefer [`begin_recording`] (which also clears
/// previously recorded data) or a [`Guard`].
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-recorded spans and counters are kept
/// until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all recorded spans and counters.
///
/// Call only while no [`Span`] is active; an active span from before the
/// reset is dropped silently (its timing is discarded, never misfiled).
pub fn reset() {
    let mut s = lock();
    s.generation += 1;
    s.nodes.clear();
    s.roots.clear();
    s.counters.clear();
}

/// Clears recorded data and turns recording on: the usual way to start an
/// instrumented run. Returns the [`RunReport`] state discarded, which is
/// almost always ignored.
pub fn begin_recording() -> RunReport {
    let before = report();
    reset();
    enable();
    before
}

struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total: Duration,
}

#[derive(Default)]
struct Store {
    /// Bumped by [`reset`] so stale span guards cannot misfile timings.
    generation: u64,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    counters: Vec<(&'static str, u64)>,
}

impl Default for Node {
    fn default() -> Node {
        Node {
            name: "",
            children: Vec::new(),
            calls: 0,
            total: Duration::ZERO,
        }
    }
}

fn lock() -> MutexGuard<'static, Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// The stack of active span node ids on this thread, tagged with the
    /// store generation they belong to.
    static ACTIVE: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// An RAII phase timer. See the crate docs.
#[must_use = "a span measures the scope it is bound to; binding it to `_` drops it immediately"]
pub struct Span(Option<SpanInner>);

struct SpanInner {
    generation: u64,
    id: usize,
    start: Instant,
}

impl Span {
    /// Starts (or re-enters) the span `name` under the span currently
    /// active on this thread. A no-op single branch when recording is off.
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span(None);
        }
        let (generation, id) = {
            let mut s = lock();
            let generation = s.generation;
            let parent = ACTIVE.with(|a| {
                a.borrow()
                    .iter()
                    .rev()
                    .find(|&&(g, _)| g == generation)
                    .map(|&(_, id)| id)
            });
            let siblings = match parent {
                Some(p) => &s.nodes[p].children,
                None => &s.roots,
            };
            let existing = siblings.iter().copied().find(|&c| s.nodes[c].name == name);
            let id = match existing {
                Some(id) => id,
                None => {
                    let id = s.nodes.len();
                    s.nodes.push(Node {
                        name,
                        ..Node::default()
                    });
                    match parent {
                        Some(p) => s.nodes[p].children.push(id),
                        None => s.roots.push(id),
                    }
                    id
                }
            };
            s.nodes[id].calls += 1;
            (generation, id)
        };
        ACTIVE.with(|a| a.borrow_mut().push((generation, id)));
        Span(Some(SpanInner {
            generation,
            id,
            start: Instant::now(),
        }))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else {
            return;
        };
        // Guarantee nonzero durations even on coarse clocks.
        let elapsed = inner.start.elapsed().max(Duration::from_nanos(1));
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if let Some(pos) = a
                .iter()
                .rposition(|&(g, id)| g == inner.generation && id == inner.id)
            {
                a.truncate(pos);
            }
        });
        let mut s = lock();
        if s.generation == inner.generation {
            s.nodes[inner.id].total += elapsed;
        }
    }
}

/// Adds `n` to the named monotonic counter. A no-op single branch when
/// recording is off.
pub fn count(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    match s.counters.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v = v.saturating_add(n),
        None => s.counters.push((name, n)),
    }
}

/// Raises the named counter to at least `n` (for gauge-style values such
/// as the selected simulation width, where summing increments would be
/// meaningless). A no-op single branch when recording is off.
pub fn record_max(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    match s.counters.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v = (*v).max(n),
        None => s.counters.push((name, n)),
    }
}

/// One aggregated span of a [`RunReport`]: total wall-clock time and entry
/// count for a name at one position of the phase tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanReport {
    /// The span name.
    pub name: String,
    /// How many times the span was entered.
    pub calls: u64,
    /// Total wall-clock seconds across all entries (monotonic clock).
    pub seconds: f64,
    /// Child spans, in first-entry order.
    pub children: Vec<SpanReport>,
}

impl SpanReport {
    fn find(&self, name: &str) -> Option<&SpanReport> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn to_json(&self) -> Json {
        Json::object()
            .field("name", self.name.as_str())
            .field("calls", self.calls)
            .field("seconds", self.seconds)
            .field(
                "children",
                Json::Arr(self.children.iter().map(SpanReport::to_json).collect()),
            )
    }

    fn from_json(j: &Json) -> Result<SpanReport, ParseJsonError> {
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ParseJsonError::schema("span without a `name` string"))?
            .to_owned();
        let calls = j
            .get("calls")
            .and_then(Json::as_num)
            .ok_or_else(|| ParseJsonError::schema("span without a `calls` number"))?
            as u64;
        let seconds = j
            .get("seconds")
            .and_then(Json::as_num)
            .ok_or_else(|| ParseJsonError::schema("span without a `seconds` number"))?;
        let children = j
            .get("children")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(SpanReport::from_json)
            .collect::<Result<Vec<SpanReport>, ParseJsonError>>()?;
        Ok(SpanReport {
            name,
            calls,
            seconds,
            children,
        })
    }
}

/// A snapshot of the recorded span tree and counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Root spans, in first-entry order.
    pub spans: Vec<SpanReport>,
    /// Counters, in first-increment order.
    pub counters: Vec<(String, u64)>,
}

impl RunReport {
    /// Finds a span by name anywhere in the tree (depth-first).
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanReport> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// The value of a counter, if it was ever incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// Schema: `{"telemetry": 1, "spans": [{"name", "calls", "seconds",
    /// "children"}...], "counters": {name: value, ...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::object()
            .field("telemetry", 1u64)
            .field(
                "spans",
                Json::Arr(self.spans.iter().map(SpanReport::to_json).collect()),
            )
            .field(
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            )
            .to_pretty()
    }

    /// Parses a report previously written by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseJsonError`] on malformed JSON or a document that
    /// does not follow the report schema.
    pub fn from_json(text: &str) -> Result<RunReport, ParseJsonError> {
        let j = Json::parse(text)?;
        let version = j.get("telemetry").and_then(Json::as_num);
        if version != Some(1.0) {
            return Err(ParseJsonError::schema(
                "not a telemetry report (missing `\"telemetry\": 1`)",
            ));
        }
        let spans = j
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or_else(|| ParseJsonError::schema("missing `spans` array"))?
            .iter()
            .map(SpanReport::from_json)
            .collect::<Result<Vec<SpanReport>, ParseJsonError>>()?;
        let Some(Json::Obj(counter_fields)) = j.get("counters") else {
            return Err(ParseJsonError::schema("missing `counters` object"));
        };
        let counters = counter_fields
            .iter()
            .map(|(k, v)| {
                v.as_num()
                    .map(|n| (k.clone(), n as u64))
                    .ok_or_else(|| ParseJsonError::schema(format!("counter `{k}` is not a number")))
            })
            .collect::<Result<Vec<(String, u64)>, ParseJsonError>>()?;
        Ok(RunReport { spans, counters })
    }

    /// Writes the JSON report to `path` through the `telemetry.flush`
    /// failpoint site, retrying transient errors under the `PDF_IO_RETRY`
    /// policy. The retry count lands in the `io_retries` counter — the
    /// *next* report, since this one is already snapshotted.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error on failure (after retries).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let policy = pdf_chaos::RetryPolicy::from_env()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let text = self.to_json();
        let (result, retries) = pdf_chaos::with_retry(&policy, || {
            match pdf_chaos::evaluate(pdf_chaos::sites::TELEMETRY_FLUSH) {
                Some(injection) => {
                    count(counters::FAILPOINTS_HIT, 1);
                    match injection.error() {
                        Some(error) => Err(error),
                        None if injection == pdf_chaos::Injection::Panic => {
                            panic!("injected failpoint {}", pdf_chaos::sites::TELEMETRY_FLUSH)
                        }
                        None => std::fs::write(path, &text[..injection.torn_len(text.len())]),
                    }
                }
                None => std::fs::write(path, &text),
            }
        });
        if retries > 0 {
            count(counters::IO_RETRIES, u64::from(retries));
        }
        result
    }
}

/// Snapshots the currently recorded spans and counters. Spans still
/// active contribute the time of their completed entries only.
#[must_use]
pub fn report() -> RunReport {
    let s = lock();
    fn build(s: &Store, id: usize) -> SpanReport {
        let node = &s.nodes[id];
        SpanReport {
            name: node.name.to_owned(),
            calls: node.calls,
            seconds: node.total.as_secs_f64(),
            children: node.children.iter().map(|&c| build(s, c)).collect(),
        }
    }
    // Counters are stored in first-touch order, which worker threads make
    // schedule-dependent; reports sort by name so equal runs serialize to
    // equal documents regardless of thread interleaving.
    let mut counters: Vec<(String, u64)> =
        s.counters.iter().map(|&(k, v)| (k.to_owned(), v)).collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    RunReport {
        spans: s.roots.iter().map(|&r| build(&s, r)).collect(),
        counters,
    }
}

/// Scoped telemetry for a driver run: enables recording on creation and
/// writes the JSON report to its path when dropped.
///
/// Drivers create one at startup — from an explicit `--telemetry <path>`
/// flag via [`Guard::to_path`], or from the `PDF_TELEMETRY` environment
/// variable via [`Guard::from_env`] — and let it fall out of scope at
/// exit. Dropping the guard turns recording back off if this guard turned
/// it on; write failures are reported on stderr (a failed report must not
/// fail the run it measured).
#[must_use = "dropping the guard immediately would end telemetry before the run starts"]
#[derive(Debug)]
pub struct Guard {
    path: Option<String>,
    owns_enable: bool,
}

impl Guard {
    /// Enables recording and arranges for the report to be written to
    /// `path` when the guard drops.
    pub fn to_path(path: impl Into<String>) -> Guard {
        let owns_enable = !enabled();
        enable();
        Guard {
            path: Some(path.into()),
            owns_enable,
        }
    }

    /// Reads `PDF_TELEMETRY`. Set to a path, it behaves like
    /// [`Guard::to_path`]; unset (or empty, or `0`), the guard is inert
    /// and recording stays as it was.
    pub fn from_env() -> Guard {
        match std::env::var("PDF_TELEMETRY") {
            Ok(path) if !path.is_empty() && path != "0" => Guard::to_path(path),
            _ => Guard {
                path: None,
                owns_enable: false,
            },
        }
    }

    /// The report destination, if this guard has one.
    #[must_use]
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            match report().write(path) {
                Ok(()) => eprintln!("telemetry: run report written to {path}"),
                Err(e) => eprintln!("telemetry: cannot write {path}: {e}"),
            }
        }
        if self.owns_enable {
            disable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// Telemetry state is process-global: every test that records takes
    /// this lock first.
    static SERIAL: TestMutex<()> = TestMutex::new(());

    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = serialized();
        reset();
        disable();
        {
            let _s = Span::enter("ignored");
            count("ignored", 5);
        }
        let r = report();
        assert!(r.spans.is_empty());
        assert!(r.counters.is_empty());
    }

    #[test]
    fn spans_nest_and_aggregate_by_name() {
        let _guard = serialized();
        let _ = begin_recording();
        {
            let _outer = Span::enter("generate");
            for _ in 0..3 {
                let _inner = Span::enter("simulate");
            }
            {
                let _inner = Span::enter("compact");
                let _deeper = Span::enter("simulate");
            }
        }
        disable();
        let r = report();
        let generate = r.span("generate").unwrap();
        assert_eq!(generate.calls, 1);
        assert_eq!(generate.children.len(), 2, "{generate:?}");
        let simulate = &generate.children[0];
        assert_eq!((simulate.name.as_str(), simulate.calls), ("simulate", 3));
        let compact = &generate.children[1];
        assert_eq!(compact.children[0].calls, 1);
        // Parent time covers child time; everything is nonzero.
        assert!(generate.seconds >= simulate.seconds);
        assert!(simulate.seconds > 0.0);
        // Lookup descends the tree.
        assert_eq!(r.span("compact").unwrap().name, "compact");
        assert!(r.span("missing").is_none());
    }

    #[test]
    fn sibling_spans_on_worker_threads_become_roots() {
        let _guard = serialized();
        let _ = begin_recording();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _s = Span::enter("worker");
                });
            }
        });
        disable();
        let r = report();
        assert_eq!(r.span("worker").unwrap().calls, 2);
    }

    #[test]
    fn counters_are_monotone_and_saturating() {
        let _guard = serialized();
        let _ = begin_recording();
        count("checks", 2);
        count("checks", 3);
        let mid = report().counter("checks").unwrap();
        count("checks", 5);
        count("checks", u64::MAX);
        disable();
        let r = report();
        assert_eq!(mid, 5);
        assert_eq!(r.counter("checks"), Some(u64::MAX));
        assert!(
            r.counter("checks").unwrap() >= mid,
            "counters never regress"
        );
        assert_eq!(r.counter("never"), None);
    }

    #[test]
    fn record_max_keeps_the_high_water_mark() {
        let _guard = serialized();
        let _ = begin_recording();
        record_max(counters::SIM_WIDTH, 64);
        record_max(counters::SIM_WIDTH, 512);
        record_max(counters::SIM_WIDTH, 256);
        disable();
        assert_eq!(report().counter(counters::SIM_WIDTH), Some(512));
        reset();
        disable();
        record_max("ignored", 7);
        assert_eq!(report().counter("ignored"), None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let _guard = serialized();
        let _ = begin_recording();
        {
            let _outer = Span::enter("enumerate");
            let _inner = Span::enter("evict");
        }
        count(counters::STORE_EVICTIONS, 41);
        count(counters::SIM_PASSES, 7);
        disable();
        let r = report();
        let text = r.to_json();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        // The document is also plain valid JSON.
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn from_json_rejects_non_reports() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("[1, 2]").is_err());
        assert!(RunReport::from_json("{\"telemetry\": 1}").is_err());
        assert!(RunReport::from_json(
            "{\"telemetry\": 1, \"spans\": [{\"calls\": 1}], \"counters\": {}}"
        )
        .is_err());
        assert!(RunReport::from_json(
            "{\"telemetry\": 1, \"spans\": [], \"counters\": {\"a\": \"b\"}}"
        )
        .is_err());
    }

    #[test]
    fn guard_writes_report_and_restores_disabled_state() {
        let _guard = serialized();
        reset();
        disable();
        let path =
            std::env::temp_dir().join(format!("pdf-telemetry-test-{}.json", std::process::id()));
        let path_str = path.to_str().unwrap().to_owned();
        {
            let guard = Guard::to_path(path_str.clone());
            assert_eq!(guard.path(), Some(path_str.as_str()));
            assert!(enabled());
            let _s = Span::enter("phase");
            count("c", 1);
        }
        assert!(!enabled(), "guard restores the disabled state");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let r = RunReport::from_json(&text).unwrap();
        assert!(r.span("phase").is_some());
        assert_eq!(r.counter("c"), Some(1));
    }

    #[test]
    fn reset_discards_stale_span_guards_safely() {
        let _guard = serialized();
        let _ = begin_recording();
        let stale = Span::enter("stale");
        reset();
        enable();
        drop(stale); // generation mismatch: must not misfile or panic
        {
            let _fresh = Span::enter("fresh");
        }
        disable();
        let r = report();
        assert!(r.span("stale").is_none());
        assert_eq!(r.span("fresh").unwrap().calls, 1);
    }
}
