//! Run control: cooperative cancellation, wall-clock budgets, and
//! crash-safe checkpointing for deadline-bounded ATPG runs.
//!
//! The paper's enrichment procedure is explicitly a budget game — the
//! `N_P` store cap and the bounded justification attempts exist because
//! full path enumeration is intractable — and a production run inherits
//! the same economics at the wall-clock level: partial results delivered
//! on deadline beat perfect results delivered never. This crate supplies
//! the three pieces the pipeline threads through every phase:
//!
//! * [`RunBudget`] — a cooperative exhaustion test combining a
//!   [`Deadline`] (wall clock) and a [`CancelToken`] (operator request or
//!   deterministic poll countdown for tests). Polls are cheap: an
//!   unlimited budget answers with a single branch, and once a budget
//!   fires it stays fired (observable without a fresh poll through
//!   [`RunBudget::already_exhausted`]). Budget state is shared across
//!   clones, so a generator and the justifier it owns always agree.
//! * [`BudgetSpec`] — the strictly parsed form of `PDF_TIME_BUDGET` /
//!   `--time-budget`: a global duration (`250ms`), or per-phase entries
//!   (`generate=2s,compact=500ms`), or both (`2s,compact=500ms`).
//! * [`Checkpoint`] / [`CheckpointPolicy`] — crash-safe incremental run
//!   state, written atomically (temp file + rename) as JSON via the
//!   workspace's dependency-free writer. A checkpoint always describes a
//!   *boundary* state — after a completed test, never mid-construction —
//!   which is what makes interrupted-plus-resumed runs reproduce the
//!   uninterrupted test set bit for bit (see `DESIGN.md` §11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdf_telemetry::{counters, Json};

/// Environment variable holding a [`BudgetSpec`] (see [`BudgetSpec::parse`]).
pub const TIME_BUDGET_ENV: &str = "PDF_TIME_BUDGET";
/// Environment variable holding the checkpoint file path.
pub const CHECKPOINT_ENV: &str = "PDF_CHECKPOINT";
/// Environment variable holding the checkpoint interval (completed
/// primary targets between writes).
pub const CHECKPOINT_EVERY_ENV: &str = "PDF_CHECKPOINT_EVERY";
/// Default checkpoint interval when `PDF_CHECKPOINT_EVERY` is unset.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 16;
/// Version tag written into checkpoint files. Version 2 checkpoints are
/// written by the round-based (batched) generator: their `rng_state`
/// field is vestigial (per-build RNG streams are derived from the master
/// seed and the fault index, so a boundary carries no RNG position) and
/// resume ignores it.
pub const CHECKPOINT_VERSION: u32 = 3;

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

/// A wall-clock deadline: either unset (never expires) or a fixed
/// [`Instant`] after which [`Deadline::expired`] answers `true`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    #[must_use]
    pub const fn none() -> Deadline {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> Deadline {
        Deadline::at(Instant::now() + budget)
    }

    /// A deadline at a fixed instant.
    #[must_use]
    pub const fn at(instant: Instant) -> Deadline {
        Deadline { at: Some(instant) }
    }

    /// Whether a deadline is set at all.
    #[must_use]
    pub const fn is_set(&self) -> bool {
        self.at.is_some()
    }

    /// Whether the deadline has passed. An unset deadline never expires.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|t| Instant::now() >= t)
    }

    /// Time left before expiry (`None` when unset, zero when already
    /// expired).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// The earlier of two deadlines (unset counts as latest).
    #[must_use]
    pub fn earlier(self, other: Deadline) -> Deadline {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline::at(a.min(b)),
            (Some(a), None) => Deadline::at(a),
            (None, b) => Deadline { at: b },
        }
    }
}

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct TokenState {
    cancelled: AtomicBool,
    /// Remaining polls before self-cancellation; `0` means disarmed.
    countdown: AtomicU64,
}

/// A cooperative cancellation flag, shared by cloning.
///
/// Two ways to fire: [`CancelToken::cancel`] (an operator request, a
/// signal handler, a supervising thread), or a deterministic poll
/// countdown armed by [`CancelToken::cancel_after_polls`] — the
/// instrument the resume-identity tests use to interrupt a run at an
/// exact, reproducible point with no wall clock involved.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that cancels itself on its `n`-th poll (`n >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (the token would never fire — pass a cancelled
    /// token instead).
    #[must_use]
    pub fn cancel_after_polls(n: u64) -> CancelToken {
        assert!(n > 0, "poll countdown must be at least 1");
        let token = CancelToken::new();
        token.inner.countdown.store(n, Ordering::Relaxed);
        token
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (does not consume a poll).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// One cooperative poll: decrements an armed countdown and reports
    /// whether cancellation is requested.
    pub fn poll(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.countdown.load(Ordering::Relaxed) {
            0 => false,
            1 => {
                self.inner.countdown.store(0, Ordering::Relaxed);
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            n => {
                self.inner.countdown.store(n - 1, Ordering::Relaxed);
                false
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RunBudget
// ---------------------------------------------------------------------------

/// A cooperative run budget: a [`Deadline`], an optional [`CancelToken`],
/// and a latch that stays set once either fires.
///
/// Clones share the latch (and the token), so handing a clone to a
/// sub-component — the generator gives one to its justifier — keeps every
/// holder's view of exhaustion consistent. The default budget is
/// unlimited and costs one branch per poll.
#[derive(Clone, Debug, Default)]
pub struct RunBudget {
    deadline: Deadline,
    cancel: Option<CancelToken>,
    fired: Arc<AtomicBool>,
    /// A peek view observes exhaustion without consuming polls, advancing
    /// countdowns, latching, or counting telemetry (see
    /// [`RunBudget::peek_view`]).
    peek: bool,
}

impl RunBudget {
    /// A budget that never exhausts.
    #[must_use]
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// A budget bounded by `deadline` only.
    #[must_use]
    pub fn with_deadline(deadline: Deadline) -> RunBudget {
        RunBudget {
            deadline,
            ..RunBudget::default()
        }
    }

    /// Adds a cancellation token to this budget.
    #[must_use]
    pub fn and_cancel(mut self, token: CancelToken) -> RunBudget {
        self.cancel = Some(token);
        self
    }

    /// Whether any limit (deadline or token) is attached.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_set() || self.cancel.is_some()
    }

    /// One cooperative poll: checks the token and the deadline, latches
    /// on the first hit, and counts `cancel_polls` / `deadline_hits`
    /// telemetry. Unlimited budgets return `false` after a single branch.
    pub fn exhausted(&self) -> bool {
        if !self.is_limited() {
            return false;
        }
        if self.peek {
            // A peek view only *observes*: the shared latch, the token's
            // non-consuming flag, and the wall clock. No countdown is
            // advanced, nothing is latched, no poll is counted — so any
            // number of peeks leaves the counting holders' state intact.
            return self.fired.load(Ordering::Relaxed)
                || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
                || self.deadline.expired();
        }
        pdf_telemetry::count(counters::CANCEL_POLLS, 1);
        if self.fired.load(Ordering::Relaxed) {
            return true;
        }
        let cancelled = self.cancel.as_ref().is_some_and(CancelToken::poll);
        let deadline_hit = self.deadline.expired();
        if deadline_hit {
            pdf_telemetry::count(counters::DEADLINE_HITS, 1);
        }
        if cancelled || deadline_hit {
            self.fired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Whether a previous poll latched exhaustion. Never consumes a poll
    /// and never advances a countdown — use it to distinguish "the budget
    /// fired" from "the work genuinely failed" after the fact.
    #[must_use]
    pub fn already_exhausted(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// A non-counting view of this budget for speculative workers: its
    /// [`RunBudget::exhausted`] reports the shared latch, the token's
    /// cancellation flag, and the deadline, but never advances a poll
    /// countdown, never latches, and never counts `cancel_polls`
    /// telemetry. Deterministic-countdown budgets therefore fire at
    /// exactly the same counted poll no matter how many workers peek —
    /// the property the parallel generator's schedule-independence rests
    /// on.
    #[must_use]
    pub fn peek_view(&self) -> RunBudget {
        RunBudget {
            peek: true,
            ..self.clone()
        }
    }
}

// ---------------------------------------------------------------------------
// BudgetSpec
// ---------------------------------------------------------------------------

/// A [`BudgetSpec`] that failed to parse, with the offending input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBudgetError {
    /// The full input text.
    pub value: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ParseBudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid time budget `{}`: {}", self.value, self.message)
    }
}

impl std::error::Error for ParseBudgetError {}

/// A strictly parsed time-budget specification.
///
/// Grammar: a comma-separated list of entries, each either a bare
/// duration (the **global** budget for the whole run) or `phase=duration`
/// (a budget for one named phase, anchored at that phase's start). A
/// duration is a non-negative integer with a mandatory unit: `us`, `ms`,
/// `s`, or `m`. Examples: `250ms`, `2s,compact=500ms`,
/// `generate=1s,compact=250ms`.
///
/// Parsing follows the workspace's strict-knob convention: anything
/// malformed — missing unit, unknown unit, duplicate phase, empty entry —
/// is an error, never a silent default.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    global: Option<Duration>,
    phases: Vec<(String, Duration)>,
}

impl BudgetSpec {
    /// Parses a specification (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBudgetError`] describing the first malformed entry.
    pub fn parse(text: &str) -> Result<BudgetSpec, ParseBudgetError> {
        let fail = |message: String| ParseBudgetError {
            value: text.to_owned(),
            message,
        };
        let mut spec = BudgetSpec::default();
        if text.trim().is_empty() {
            return Err(fail("empty specification".to_owned()));
        }
        for entry in text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(fail("empty entry in list".to_owned()));
            }
            let (phase, duration_text) = match entry.split_once('=') {
                Some((name, d)) => (Some(name.trim()), d.trim()),
                None => (None, entry),
            };
            let duration = parse_duration(duration_text).map_err(&fail)?;
            match phase {
                None => {
                    if spec.global.is_some() {
                        return Err(fail("more than one global duration".to_owned()));
                    }
                    spec.global = Some(duration);
                }
                Some(name) => {
                    if name.is_empty() {
                        return Err(fail("empty phase name".to_owned()));
                    }
                    if spec.phases.iter().any(|(n, _)| n == name) {
                        return Err(fail(format!("duplicate budget for phase `{name}`")));
                    }
                    spec.phases.push((name.to_owned(), duration));
                }
            }
        }
        Ok(spec)
    }

    /// Reads `PDF_TIME_BUDGET`. Unset or empty means no budget;
    /// a set-but-malformed value is an error (strict-knob convention).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBudgetError`] when the variable is set to an
    /// unparsable value.
    pub fn from_env() -> Result<Option<BudgetSpec>, ParseBudgetError> {
        match std::env::var(TIME_BUDGET_ENV) {
            Ok(raw) if raw.trim().is_empty() => Ok(None),
            Ok(raw) => BudgetSpec::parse(&raw).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// The global (whole-run) budget, when one was given.
    #[must_use]
    pub fn global(&self) -> Option<Duration> {
        self.global
    }

    /// The budget for a named phase, when one was given.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// The deadline governing `phase`: the earlier of the global budget
    /// anchored at `run_start` and the phase budget anchored at
    /// `phase_start`.
    #[must_use]
    pub fn deadline_for(&self, phase: &str, run_start: Instant, phase_start: Instant) -> Deadline {
        let global = match self.global {
            Some(d) => Deadline::at(run_start + d),
            None => Deadline::none(),
        };
        let phase = match self.phase(phase) {
            Some(d) => Deadline::at(phase_start + d),
            None => Deadline::none(),
        };
        global.earlier(phase)
    }
}

/// Parses `<integer><unit>` with unit `us`/`ms`/`s`/`m`.
fn parse_duration(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    if text.is_empty() {
        return Err("empty duration".to_owned());
    }
    let digits = text.chars().take_while(char::is_ascii_digit).count();
    if digits == 0 {
        return Err(format!("duration `{text}` must start with digits"));
    }
    let (number, unit) = text.split_at(digits);
    let n: u64 = number
        .parse()
        .map_err(|_| format!("duration value `{number}` out of range"))?;
    match unit {
        "us" => Ok(Duration::from_micros(n)),
        "ms" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        "m" => Ok(Duration::from_secs(n.saturating_mul(60))),
        "" => Err(format!(
            "duration `{text}` is missing a unit (us, ms, s, m)"
        )),
        other => Err(format!("unknown duration unit `{other}` (us, ms, s, m)")),
    }
}

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

/// Writes `contents` to `path` atomically *and durably*: the bytes land
/// in a sibling temp file first, the temp file is `fsync`ed, the rename
/// moves it into place, and the parent directory is `fsync`ed so the
/// rename itself survives a crash. A crash at any point leaves either
/// the old file or the new file at `path`, never a half-written one.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    write_atomic_bytes(path, contents.as_bytes())
}

fn write_atomic_bytes(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, contents)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Flushes the directory entry of `path` so a completed rename is
/// durable. Platforms that refuse to open or sync directories (Windows)
/// are forgiven: the rename is still atomic, just not yet durable.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match fs::File::open(parent) {
        Ok(dir) => match dir.sync_all() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e),
        },
        Err(_) => Ok(()),
    }
}

/// [`write_atomic`] behind the `checkpoint.write` failpoint site: an
/// armed `io`/`full` entry fails the write, a `torn` entry writes only a
/// deterministic prefix and reports success (the modeled silent
/// corruption the checkpoint CRC exists to catch).
fn write_checkpoint_file(path: &Path, contents: &str) -> io::Result<()> {
    match pdf_chaos::evaluate(pdf_chaos::sites::CHECKPOINT_WRITE) {
        Some(injection) => {
            pdf_telemetry::count(counters::FAILPOINTS_HIT, 1);
            match injection.error() {
                Some(error) => Err(error),
                None if injection == pdf_chaos::Injection::Panic => {
                    panic!("injected failpoint {}", pdf_chaos::sites::CHECKPOINT_WRITE)
                }
                None => {
                    let torn = injection.torn_len(contents.len());
                    write_atomic_bytes(path, &contents.as_bytes()[..torn])
                }
            }
        }
        None => write_atomic(path, contents),
    }
}

/// `fs::read_to_string` behind the `checkpoint.read` failpoint site; a
/// `torn` entry truncates the text it returns (a partial read).
fn read_checkpoint_file(path: &Path) -> io::Result<String> {
    match pdf_chaos::evaluate(pdf_chaos::sites::CHECKPOINT_READ) {
        Some(injection) => {
            pdf_telemetry::count(counters::FAILPOINTS_HIT, 1);
            match injection.error() {
                Some(error) => Err(error),
                None if injection == pdf_chaos::Injection::Panic => {
                    panic!("injected failpoint {}", pdf_chaos::sites::CHECKPOINT_READ)
                }
                None => {
                    let mut text = fs::read_to_string(path)?;
                    text.truncate(injection.torn_len(text.len()));
                    Ok(text)
                }
            }
        }
        None => fs::read_to_string(path),
    }
}

/// The retry policy for checkpoint I/O, surfaced as a checkpoint error
/// when `PDF_IO_RETRY` is malformed.
fn io_retry_policy(path: &Path) -> Result<pdf_chaos::RetryPolicy, CheckpointError> {
    pdf_chaos::RetryPolicy::from_env().map_err(|message| CheckpointError::Io {
        path: path.to_owned(),
        source: io::Error::new(io::ErrorKind::InvalidInput, message),
    })
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// When and where to write checkpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (written atomically, always the same file).
    pub path: PathBuf,
    /// Completed primary targets between writes (at least 1). A final
    /// checkpoint is always written when the run ends, regardless.
    pub every: usize,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every `every` completed primary
    /// targets (`every` is clamped up to 1).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, every: usize) -> CheckpointPolicy {
        CheckpointPolicy {
            path: path.into(),
            every: every.max(1),
        }
    }

    /// Reads `PDF_CHECKPOINT` (+ optional `PDF_CHECKPOINT_EVERY`).
    /// Unset or empty path means no checkpointing.
    ///
    /// # Errors
    ///
    /// Returns a message naming the variable and value when
    /// `PDF_CHECKPOINT_EVERY` is set but not a positive integer.
    pub fn from_env() -> Result<Option<CheckpointPolicy>, String> {
        let every = match std::env::var(CHECKPOINT_EVERY_ENV) {
            Ok(raw) if raw.trim().is_empty() => DEFAULT_CHECKPOINT_EVERY,
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    return Err(format!(
                        "invalid {CHECKPOINT_EVERY_ENV}=`{raw}`: expected a positive integer"
                    ))
                }
            },
            Err(_) => DEFAULT_CHECKPOINT_EVERY,
        };
        match std::env::var(CHECKPOINT_ENV) {
            Ok(path) if !path.trim().is_empty() => Ok(Some(CheckpointPolicy::new(path, every))),
            _ => Ok(None),
        }
    }
}

/// A checkpoint could not be written, read, or understood.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file is torn, truncated, or bit-rotted: either the JSON text
    /// breaks off mid-document or the stored CRC64 does not match the
    /// recomputed one. Recovery falls back one generation (see
    /// [`Checkpoint::load_with_recovery`]).
    Corrupt {
        /// Byte offset of the damage: where the JSON text became
        /// unparseable, or the position of the stored checksum field.
        offset: usize,
        /// The recomputed CRC64 (0 when the text never parsed).
        expected: u64,
        /// The CRC64 found in the file (0 when the text never parsed).
        found: u64,
    },
    /// The JSON is well-formed but not a valid checkpoint.
    Schema(String),
    /// The checkpoint was written by an incompatible format version.
    Version {
        /// The version found in the file.
        found: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            CheckpointError::Corrupt {
                offset,
                expected,
                found,
            } => {
                if *expected == 0 && *found == 0 {
                    write!(f, "checkpoint is corrupt: truncated at byte {offset}")
                } else {
                    write!(
                        f,
                        "checkpoint is corrupt: checksum mismatch at byte {offset} \
                         (expected {expected:016x}, found {found:016x})"
                    )
                }
            }
            CheckpointError::Schema(m) => write!(f, "checkpoint schema: {m}"),
            CheckpointError::Version { found } => write!(
                f,
                "checkpoint format version {found} is not supported (expected {CHECKPOINT_VERSION})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A crash-safe snapshot of generation state at a *boundary* — taken
/// only after a primary target is fully processed (test pushed and
/// swept, genuinely aborted, or quarantined), never mid-construction.
///
/// Resuming from a checkpoint replays the remaining primaries exactly as
/// the uninterrupted run would have: the RNG state is the boundary
/// state, detection flags are the boundary flags, and the tests written
/// so far are carried over verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Monotonic save counter of the producing run: each save writes
    /// generation `g+1` and rotates generation `g` to the `.prev`
    /// sibling, so recovery can fall back exactly one generation.
    pub generation: u64,
    /// Circuit name the run targeted.
    pub circuit: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Configuration fingerprint (compaction/secondary-mode/attempts/
    /// backend); resume refuses a mismatch.
    pub fingerprint: String,
    /// Per-set fault counts of the target split (`P0`, `P1`, ...).
    pub set_sizes: Vec<usize>,
    /// Completed primary targets (tests pushed) so far.
    pub completed: usize,
    /// Justifier RNG state at the boundary.
    pub rng_state: u64,
    /// Per-fault detection flags at the boundary.
    pub detected: Vec<bool>,
    /// Per-fault abort flags at the boundary.
    pub aborted: Vec<bool>,
    /// Per-fault quarantine flags at the boundary.
    pub quarantined: Vec<bool>,
    /// Tests generated so far, one `v1 v2` text line each (the
    /// `TestSet::to_text` line format).
    pub tests: Vec<String>,
    /// Generation statistics counters carried across the resume.
    pub counters: Vec<(String, u64)>,
    /// Whether the run finished naturally (nothing left to resume).
    pub complete: bool,
}

impl Checkpoint {
    /// The value of a named statistics counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Serializes to pretty-printed JSON with an embedded CRC64: the
    /// document is rendered once with the checksum field zeroed, the
    /// CRC64 of that text becomes the field value, and the document is
    /// rendered again. Verification re-zeroes and recomputes, which
    /// works because the JSON writer is print/parse byte-stable.
    #[must_use]
    pub fn to_json(&self) -> String {
        let zeroed = self.render(CRC_PLACEHOLDER);
        self.render(&hex(crc64(zeroed.as_bytes())))
    }

    fn render(&self, crc_text: &str) -> String {
        let counters = self
            .counters
            .iter()
            .fold(Json::object(), |obj, (name, value)| obj.field(name, *value));
        Json::object()
            .field("format", "path-delay-atpg checkpoint")
            .field("version", self.version)
            .field("generation", self.generation)
            .field("crc64", crc_text)
            .field("circuit", self.circuit.as_str())
            .field("seed", hex(self.seed).as_str())
            .field("fingerprint", self.fingerprint.as_str())
            .field(
                "set_sizes",
                self.set_sizes
                    .iter()
                    .map(|&n| Json::from(n))
                    .collect::<Vec<_>>(),
            )
            .field("completed", self.completed)
            .field("rng_state", hex(self.rng_state).as_str())
            .field("detected", flags_to_text(&self.detected).as_str())
            .field("aborted", flags_to_text(&self.aborted).as_str())
            .field("quarantined", flags_to_text(&self.quarantined).as_str())
            .field(
                "tests",
                self.tests
                    .iter()
                    .map(|t| Json::from(t.as_str()))
                    .collect::<Vec<_>>(),
            )
            .field("counters", counters)
            .field("complete", self.complete)
            .to_pretty()
    }

    /// Parses and verifies a checkpoint from JSON text.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] for torn/truncated text or a CRC64
    /// mismatch, [`CheckpointError::Version`] for an unsupported format
    /// version, and [`CheckpointError::Schema`] for everything else that
    /// does not look like a checkpoint.
    pub fn from_json(text: &str) -> Result<Checkpoint, CheckpointError> {
        let json = Json::parse(text).map_err(|e| CheckpointError::Corrupt {
            offset: e.offset,
            expected: 0,
            found: 0,
        })?;
        let version = get_num(&json, "version")? as u32;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version { found: version });
        }
        let found_crc = parse_hex(get_str(&json, "crc64")?, "crc64")?;
        let counters = match json.get("counters") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(name, value)| {
                    let v = value.as_num().ok_or_else(|| {
                        CheckpointError::Schema(format!("counter `{name}` is not a number"))
                    })?;
                    Ok((name.clone(), v as u64))
                })
                .collect::<Result<Vec<_>, CheckpointError>>()?,
            _ => return Err(CheckpointError::Schema("missing `counters` object".into())),
        };
        let complete = match json.get("complete") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(CheckpointError::Schema("missing `complete` flag".into())),
        };
        let checkpoint = Checkpoint {
            version,
            generation: get_num(&json, "generation")? as u64,
            circuit: get_str(&json, "circuit")?.to_owned(),
            seed: parse_hex(get_str(&json, "seed")?, "seed")?,
            fingerprint: get_str(&json, "fingerprint")?.to_owned(),
            set_sizes: get_arr(&json, "set_sizes")?
                .iter()
                .map(|v| {
                    v.as_num().map(|n| n as usize).ok_or_else(|| {
                        CheckpointError::Schema("`set_sizes` must hold numbers".into())
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
            completed: get_num(&json, "completed")? as usize,
            rng_state: parse_hex(get_str(&json, "rng_state")?, "rng_state")?,
            detected: flags_from_text(get_str(&json, "detected")?, "detected")?,
            aborted: flags_from_text(get_str(&json, "aborted")?, "aborted")?,
            quarantined: flags_from_text(get_str(&json, "quarantined")?, "quarantined")?,
            tests: get_arr(&json, "tests")?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| CheckpointError::Schema("`tests` must hold strings".into()))
                })
                .collect::<Result<Vec<_>, _>>()?,
            counters,
            complete,
        };
        let expected = crc64(checkpoint.render(CRC_PLACEHOLDER).as_bytes());
        if expected != found_crc {
            return Err(CheckpointError::Corrupt {
                offset: text.find("\"crc64\"").unwrap_or(0),
                expected,
                found: found_crc,
            });
        }
        Ok(checkpoint)
    }

    /// Writes the checkpoint to `path` atomically and durably, under a
    /// `runctl` telemetry span, counting `checkpoints_written`. An
    /// existing file at `path` is first rotated to the `.prev` sibling
    /// (the previous-good generation recovery falls back to), and
    /// transient write errors are retried under the `PDF_IO_RETRY`
    /// policy.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the filesystem refuses.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let _span = pdf_telemetry::Span::enter("runctl");
        let io_error = |source| CheckpointError::Io {
            path: path.to_owned(),
            source,
        };
        let policy = io_retry_policy(path)?;
        if path.exists() {
            fs::rename(path, previous_generation_path(path)).map_err(io_error)?;
        }
        let text = self.to_json();
        let (result, retries) =
            pdf_chaos::with_retry(&policy, || write_checkpoint_file(path, &text));
        if retries > 0 {
            pdf_telemetry::count(counters::IO_RETRIES, u64::from(retries));
        }
        result.map_err(io_error)?;
        pdf_telemetry::count(counters::CHECKPOINTS_WRITTEN, 1);
        Ok(())
    }

    /// Reads, parses, and CRC-verifies a checkpoint file, retrying
    /// transient read errors under the `PDF_IO_RETRY` policy.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read, otherwise
    /// the [`Checkpoint::from_json`] errors.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let _span = pdf_telemetry::Span::enter("runctl");
        let policy = io_retry_policy(path)?;
        let (result, retries) = pdf_chaos::with_retry(&policy, || read_checkpoint_file(path));
        if retries > 0 {
            pdf_telemetry::count(counters::IO_RETRIES, u64::from(retries));
        }
        let text = result.map_err(|source| CheckpointError::Io {
            path: path.to_owned(),
            source,
        })?;
        Checkpoint::from_json(&text)
    }

    /// Loads `path`, falling back one generation when the current file
    /// is corrupt or missing: a torn write (or a crash in the rotate →
    /// write window) leaves the `.prev` sibling as the newest good
    /// snapshot. Returns the checkpoint and whether the fallback was
    /// taken (counted as `checkpoint_recoveries`).
    ///
    /// # Errors
    ///
    /// The *primary* load error when the fallback also fails — the
    /// current file's diagnosis is the one worth reporting.
    pub fn load_with_recovery(path: &Path) -> Result<(Checkpoint, bool), CheckpointError> {
        let primary = match Checkpoint::load(path) {
            Ok(checkpoint) => return Ok((checkpoint, false)),
            Err(error) => error,
        };
        let recoverable = match &primary {
            CheckpointError::Corrupt { .. } => true,
            // The crash window between the rotate and the write leaves
            // no current file at all — `.prev` is the newest good state.
            CheckpointError::Io { source, .. } => source.kind() == io::ErrorKind::NotFound,
            _ => false,
        };
        if !recoverable {
            return Err(primary);
        }
        match Checkpoint::load(&previous_generation_path(path)) {
            Ok(checkpoint) => {
                pdf_telemetry::count(counters::CHECKPOINT_RECOVERIES, 1);
                eprintln!(
                    "warning: checkpoint {} unusable ({primary}); \
                     recovered generation {} from the previous-good snapshot",
                    path.display(),
                    checkpoint.generation
                );
                Ok((checkpoint, true))
            }
            Err(_) => Err(primary),
        }
    }
}

/// The `.prev` sibling holding the previous-good checkpoint generation.
#[must_use]
pub fn previous_generation_path(path: &Path) -> PathBuf {
    let mut prev = path.as_os_str().to_owned();
    prev.push(".prev");
    PathBuf::from(prev)
}

/// Zero-value checksum text the CRC64 is computed over.
const CRC_PLACEHOLDER: &str = "0000000000000000";

/// CRC-64 (ECMA-182 polynomial, reflected, bitwise). Checkpoints are a
/// few kilobytes at most; a table-driven kernel would be noise.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut crc = !0u64;
    for &byte in bytes {
        crc ^= u64::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// `u64` values (seed, RNG state) travel as hex strings: the JSON number
/// type is an `f64`, which cannot hold all 64-bit states exactly.
fn hex(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_hex(text: &str, field: &str) -> Result<u64, CheckpointError> {
    u64::from_str_radix(text, 16)
        .map_err(|_| CheckpointError::Schema(format!("`{field}` is not a hex u64: `{text}`")))
}

fn flags_to_text(flags: &[bool]) -> String {
    flags.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn flags_from_text(text: &str, field: &str) -> Result<Vec<bool>, CheckpointError> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(CheckpointError::Schema(format!(
                "`{field}` holds `{other}` (expected only 0/1)"
            ))),
        })
        .collect()
}

fn get_num(json: &Json, key: &str) -> Result<f64, CheckpointError> {
    json.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| CheckpointError::Schema(format!("missing numeric field `{key}`")))
}

fn get_str<'j>(json: &'j Json, key: &str) -> Result<&'j str, CheckpointError> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError::Schema(format!("missing string field `{key}`")))
}

fn get_arr<'j>(json: &'j Json, key: &str) -> Result<&'j [Json], CheckpointError> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CheckpointError::Schema(format!("missing array field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_set());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn elapsed_deadline_expires() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert_eq!(far.earlier(d), d);
        assert_eq!(Deadline::none().earlier(d), d);
        assert_eq!(d.earlier(Deadline::none()), d);
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.poll());
        b.cancel();
        assert!(a.poll());
        assert!(a.is_cancelled());
    }

    #[test]
    fn poll_countdown_fires_on_the_nth_poll() {
        let t = CancelToken::cancel_after_polls(3);
        assert!(!t.poll());
        assert!(!t.poll());
        assert!(!t.is_cancelled(), "is_cancelled must not consume polls");
        assert!(t.poll());
        assert!(t.poll(), "stays cancelled");
    }

    #[test]
    #[should_panic(expected = "poll countdown must be at least 1")]
    fn zero_countdown_is_rejected() {
        let _ = CancelToken::cancel_after_polls(0);
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = RunBudget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..100 {
            assert!(!b.exhausted());
        }
        assert!(!b.already_exhausted());
    }

    #[test]
    fn budget_latch_is_shared_across_clones() {
        let b = RunBudget::unlimited().and_cancel(CancelToken::cancel_after_polls(2));
        let handed_out = b.clone();
        assert!(!b.exhausted());
        assert!(!handed_out.already_exhausted());
        assert!(b.exhausted());
        assert!(handed_out.already_exhausted(), "clones share the latch");
        assert!(handed_out.exhausted());
    }

    #[test]
    fn peek_view_never_consumes_polls_or_latches() {
        let b = RunBudget::unlimited().and_cancel(CancelToken::cancel_after_polls(2));
        let peek = b.peek_view();
        for _ in 0..10 {
            assert!(!peek.exhausted(), "peeks must not advance the countdown");
        }
        assert!(!b.exhausted(), "first counted poll");
        assert!(!peek.exhausted(), "no latch, no cancellation yet");
        assert!(b.exhausted(), "second counted poll fires");
        assert!(peek.exhausted(), "the peek view sees the shared latch");
        assert!(b.already_exhausted());
    }

    #[test]
    fn peek_view_sees_an_expired_deadline_without_latching() {
        let b = RunBudget::with_deadline(Deadline::at(Instant::now() - Duration::from_millis(1)));
        let peek = b.peek_view();
        assert!(peek.exhausted());
        assert!(!b.already_exhausted(), "peeks must not latch");
        assert!(b.exhausted());
        assert!(b.already_exhausted());
    }

    #[test]
    fn expired_deadline_latches() {
        let b = RunBudget::with_deadline(Deadline::at(Instant::now() - Duration::from_millis(1)));
        assert!(b.is_limited());
        assert!(b.exhausted());
        assert!(b.already_exhausted());
    }

    #[test]
    fn budget_spec_parses_globals_and_phases() {
        let spec = BudgetSpec::parse("2s,compact=500ms,generate=3m").unwrap();
        assert_eq!(spec.global(), Some(Duration::from_secs(2)));
        assert_eq!(spec.phase("compact"), Some(Duration::from_millis(500)));
        assert_eq!(spec.phase("generate"), Some(Duration::from_secs(180)));
        assert_eq!(spec.phase("nope"), None);
        assert_eq!(
            BudgetSpec::parse("250us").unwrap().global(),
            Some(Duration::from_micros(250))
        );
    }

    #[test]
    fn budget_spec_rejects_garbage() {
        for bad in [
            "",
            "1",
            "ms",
            "1h",
            "1.5s",
            "=1s",
            "a=b",
            "1s,,2s",
            "1s,2s",
            "a=1s,a=2s",
        ] {
            let e = BudgetSpec::parse(bad).unwrap_err();
            assert_eq!(e.value, bad);
            assert!(e.to_string().contains("invalid time budget"), "{e}");
        }
    }

    #[test]
    fn deadline_for_takes_the_earlier_bound() {
        let spec = BudgetSpec::parse("10s,compact=1ms").unwrap();
        let now = Instant::now();
        let d = spec.deadline_for("compact", now, now);
        assert_eq!(d, Deadline::at(now + Duration::from_millis(1)));
        let d = spec.deadline_for("generate", now, now);
        assert_eq!(d, Deadline::at(now + Duration::from_secs(10)));
        assert!(!BudgetSpec::parse("compact=1ms")
            .unwrap()
            .deadline_for("generate", now, now)
            .is_set());
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            generation: 4,
            circuit: "s27".to_owned(),
            seed: u64::MAX - 12,
            fingerprint: "arbit:regen:1:packed".to_owned(),
            set_sizes: vec![5, 3],
            completed: 2,
            rng_state: 0xDEAD_BEEF_0BAD_F00D,
            detected: vec![true, false, true, false, false, true, false, false],
            aborted: vec![false; 8],
            quarantined: {
                let mut q = vec![false; 8];
                q[4] = true;
                q
            },
            tests: vec!["0101 1100".to_owned(), "1111 0000".to_owned()],
            counters: vec![("aborted_primaries".to_owned(), 1)],
            complete: false,
        }
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let cp = sample();
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.counter("aborted_primaries"), 1);
        assert_eq!(back.counter("missing"), 0);
    }

    #[test]
    fn checkpoint_rejects_bad_inputs() {
        assert!(matches!(
            Checkpoint::from_json("not json"),
            Err(CheckpointError::Corrupt {
                expected: 0,
                found: 0,
                ..
            })
        ));
        assert!(matches!(
            Checkpoint::from_json("{\"version\": 99}"),
            Err(CheckpointError::Version { found: 99 })
        ));
        let mangled = sample()
            .to_json()
            .replace("\"detected\": \"", "\"detected\": \"x");
        assert!(matches!(
            Checkpoint::from_json(&mangled),
            Err(CheckpointError::Schema(_))
        ));
    }

    #[test]
    fn checksum_mismatch_is_a_typed_corruption() {
        // Flip one payload bit without breaking the JSON text: the parse
        // succeeds, the CRC verdict must not.
        let text = sample()
            .to_json()
            .replace("\"completed\": 2", "\"completed\": 3");
        match Checkpoint::from_json(&text) {
            Err(CheckpointError::Corrupt {
                offset,
                expected,
                found,
            }) => {
                assert_ne!(expected, found);
                assert_ne!(expected, 0);
                assert_eq!(offset, text.find("\"crc64\"").unwrap());
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pdf_runctl_ck_{}.json", std::process::id()));
        let cp = sample();
        cp.save(&path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists(), "temp file must be renamed away");
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_file(previous_generation_path(&path));
        assert!(matches!(
            Checkpoint::load(&path),
            Err(CheckpointError::Io { .. })
        ));
    }

    #[test]
    fn save_rotates_the_previous_generation() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pdf_runctl_rot_{}.json", std::process::id()));
        let prev = previous_generation_path(&path);
        let mut first = sample();
        first.generation = 1;
        let mut second = sample();
        second.generation = 2;
        first.save(&path).unwrap();
        assert!(!prev.exists(), "first save has nothing to rotate");
        second.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), second);
        assert_eq!(Checkpoint::load(&prev).unwrap(), first);
        let (recovered, fell_back) = Checkpoint::load_with_recovery(&path).unwrap();
        assert_eq!((recovered, fell_back), (second.clone(), false));
        // Crash window: rotate happened, write did not.
        std::fs::remove_file(&path).unwrap();
        let (recovered, fell_back) = Checkpoint::load_with_recovery(&path).unwrap();
        assert_eq!((recovered, fell_back), (first, true));
        std::fs::remove_file(&prev).unwrap();
        assert!(Checkpoint::load_with_recovery(&path).is_err());
    }

    #[test]
    fn checkpoint_policy_clamps_interval() {
        let p = CheckpointPolicy::new("ck.json", 0);
        assert_eq!(p.every, 1);
    }
}
