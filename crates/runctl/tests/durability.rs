//! Crash-consistency oracle for the checkpoint store: a torn write
//! truncated at *every* byte boundary must recover the previous-good
//! generation (never load corrupt state), bit-rot must surface as a
//! typed CRC mismatch, and the `checkpoint.write`/`checkpoint.read`
//! failpoints must either heal through the bounded retry loop or leave
//! the previous generation reachable.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use pdf_chaos::FailpointSpec;
use pdf_runctl::{
    crc64, previous_generation_path, Checkpoint, CheckpointError, CHECKPOINT_VERSION,
};

/// The failpoint registry and telemetry store are process-global; every
/// test that arms failpoints or records counters serializes here.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn checkpoint(generation: u64) -> Checkpoint {
    Checkpoint {
        version: CHECKPOINT_VERSION,
        generation,
        circuit: "s27".to_owned(),
        seed: 0x0123_4567_89AB_CDEF ^ generation,
        fingerprint: "arbit:regen:1:packed".to_owned(),
        set_sizes: vec![7, 4, 2],
        completed: 3 + generation as usize,
        rng_state: 0,
        detected: vec![true, false, true, false, true, false, false],
        aborted: vec![false; 7],
        quarantined: vec![false; 7],
        tests: vec!["0101 1100".to_owned(), "1111 0000".to_owned()],
        counters: vec![("aborted_primaries".to_owned(), generation)],
        complete: false,
    }
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pdf_durability_{tag}_{}_{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(previous_generation_path(path));
}

/// Two generations on disk (current + `.prev`), then the current file is
/// replaced by every possible strict prefix of itself. Every truncation
/// must load as a *valid* checkpoint — generation 1 via recovery, or
/// generation 2 in the one case where the truncation only dropped the
/// trailing newline and the document is still semantically complete.
#[test]
fn truncation_at_every_byte_boundary_recovers_a_good_generation() {
    let _serial = lock();
    pdf_chaos::clear();
    let path = scratch("torn");
    let (first, second) = (checkpoint(1), checkpoint(2));
    first.save(&path).expect("save generation 1");
    second.save(&path).expect("save generation 2");
    let full = std::fs::read(&path).expect("current generation bytes");
    assert!(full.len() > 2, "checkpoint must be non-trivial");
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).expect("plant truncated file");
        let (loaded, recovered) = Checkpoint::load_with_recovery(&path)
            .unwrap_or_else(|e| panic!("cut at byte {cut}/{}: {e}", full.len()));
        if cut == full.len() - 1 {
            // Only the trailing newline is missing: the JSON document is
            // complete and the CRC (computed over the re-rendered full
            // text) still verifies. Not corruption, not a fallback.
            assert_eq!(loaded, second, "cut at byte {cut}");
            assert!(!recovered, "cut at byte {cut}");
        } else {
            assert_eq!(loaded, first, "cut at byte {cut} must fall back");
            assert!(recovered, "cut at byte {cut} must report the fallback");
        }
    }
    cleanup(&path);
}

#[test]
fn bit_rot_is_detected_by_the_checksum_and_recovered() {
    let _serial = lock();
    pdf_chaos::clear();
    let path = scratch("rot");
    let (first, second) = (checkpoint(1), checkpoint(2));
    first.save(&path).expect("save generation 1");
    second.save(&path).expect("save generation 2");
    // Flip a payload character JSON cannot see: '0' -> '1' inside the
    // detected flags string.
    let text = std::fs::read_to_string(&path).expect("read");
    let rotted = text.replace("\"detected\": \"1010100\"", "\"detected\": \"1010101\"");
    assert_ne!(text, rotted, "fixture must actually flip a bit");
    std::fs::write(&path, &rotted).expect("plant rotted file");
    match Checkpoint::load(&path) {
        Err(CheckpointError::Corrupt {
            offset,
            expected,
            found,
        }) => {
            assert_ne!(expected, found);
            assert_eq!(offset, rotted.find("\"crc64\"").expect("field present"));
        }
        other => panic!("expected a Corrupt error, got {other:?}"),
    }
    let (loaded, recovered) = Checkpoint::load_with_recovery(&path).expect("recovery");
    assert_eq!(loaded, first);
    assert!(recovered);
    cleanup(&path);
}

#[test]
fn transient_write_and_read_failures_heal_through_retries() {
    let _serial = lock();
    let path = scratch("transient");
    let cp = checkpoint(1);
    let _ = pdf_telemetry::begin_recording();
    pdf_chaos::install(&FailpointSpec::parse("checkpoint.write:io@1").expect("valid"));
    cp.save(&path).expect("transient write error must heal");
    pdf_chaos::install(&FailpointSpec::parse("checkpoint.read:io@1").expect("valid"));
    assert_eq!(Checkpoint::load(&path).expect("heals"), cp);
    pdf_chaos::clear();
    let report = pdf_telemetry::report();
    pdf_telemetry::disable();
    pdf_telemetry::reset();
    assert_eq!(report.counter("failpoints_hit"), Some(2));
    assert_eq!(report.counter("io_retries"), Some(2));
    cleanup(&path);
}

#[test]
fn persistent_write_failure_is_an_error_not_corruption() {
    let _serial = lock();
    let path = scratch("persistent");
    pdf_chaos::install(&FailpointSpec::parse("checkpoint.write:full@1").expect("valid"));
    let result = checkpoint(1).save(&path);
    pdf_chaos::clear();
    assert!(matches!(result, Err(CheckpointError::Io { .. })));
    assert!(!path.exists(), "no file may appear on a failed save");
    cleanup(&path);
}

#[test]
fn injected_torn_write_is_caught_on_load_and_recovered() {
    let _serial = lock();
    let path = scratch("injected_torn");
    let (first, second) = (checkpoint(1), checkpoint(2));
    first.save(&path).expect("save generation 1");
    pdf_chaos::install(&FailpointSpec::parse("checkpoint.write:torn@1").expect("valid"));
    second.save(&path).expect("torn writes report success");
    pdf_chaos::clear();
    let (loaded, recovered) = Checkpoint::load_with_recovery(&path).expect("recovery");
    assert_eq!(loaded, first, "the torn current generation must not load");
    assert!(recovered);
    cleanup(&path);
}

#[test]
fn crc64_matches_the_ecma_reference_vector() {
    // ECMA-182 reflected, aka CRC-64/XZ: check value for "123456789".
    assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    assert_eq!(crc64(b""), 0);
}
