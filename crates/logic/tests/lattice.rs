//! Property tests for the lattice structure of the triple algebra — the
//! monotonicity law the whole justification procedure relies on: making
//! inputs *more specified* never flips an already-specified simulated
//! value, so a requirement violation observed on a partial assignment is
//! permanent.

use proptest::prelude::*;

use pdf_logic::{GateKind, Triple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::Zero), Just(Value::One), Just(Value::X)]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_value(), arb_value(), arb_value()).prop_map(|(a, b, c)| Triple::new(a, b, c))
}

fn arb_gate() -> impl Strategy<Value = GateKind> {
    prop_oneof![
        Just(GateKind::And),
        Just(GateKind::Nand),
        Just(GateKind::Or),
        Just(GateKind::Nor),
        Just(GateKind::Xor),
        Just(GateKind::Xnor),
    ]
}

/// `a ⊑ b`: b refines a (agrees on every specified component of a).
fn refines_value(a: Value, b: Value) -> bool {
    a == Value::X || a == b
}

fn refines(a: Triple, b: Triple) -> bool {
    refines_value(a.first(), b.first())
        && refines_value(a.mid(), b.mid())
        && refines_value(a.last(), b.last())
}

/// A pair `(coarse, fine)` with `coarse ⊑ fine`, built constructively:
/// the fine triple fills the coarse one's `x` components at random.
fn arb_refinement() -> impl Strategy<Value = (Triple, Triple)> {
    (arb_triple(), arb_value(), arb_value(), arb_value()).prop_map(|(a, f1, f2, f3)| {
        let fill = |coarse: Value, fine: Value| if coarse == Value::X { fine } else { coarse };
        let b = Triple::new(fill(a.first(), f1), fill(a.mid(), f2), fill(a.last(), f3));
        (a, b)
    })
}

proptest! {
    #[test]
    fn gate_evaluation_is_monotone_in_specification(
        kind in arb_gate(),
        (a, a2) in arb_refinement(),
        b in arb_triple(),
    ) {
        let coarse = kind.eval_triples([a, b]);
        let fine = kind.eval_triples([a2, b]);
        prop_assert!(
            refines(coarse, fine),
            "{}: eval({},{})={} not refined by eval({},{})={}",
            kind, a, b, coarse, a2, b, fine
        );
    }

    #[test]
    fn intersect_is_the_lattice_meet(a in arb_triple(), b in arb_triple()) {
        match a.intersect(b) {
            Some(m) => {
                // The meet refines both operands' constraints: it agrees
                // with every specified component of each.
                prop_assert!(refines(a, m));
                prop_assert!(refines(b, m));
                // Meeting again with an operand is a no-op.
                prop_assert_eq!(m.intersect(a), Some(m));
            }
            None => {
                // Conflicts are symmetric and genuine: some component is
                // specified differently in both.
                prop_assert_eq!(b.intersect(a), None);
                let clash = a
                    .components()
                    .iter()
                    .zip(b.components().iter())
                    .any(|(&x, &y)| {
                        x.is_specified() && y.is_specified() && x != y
                    });
                prop_assert!(clash);
            }
        }
    }

    #[test]
    fn satisfies_is_antitone_in_the_requirement(
        sim in arb_triple(),
        (weaker, req) in arb_refinement(),
    ) {
        // If sim satisfies req, it satisfies any requirement req refines.
        if sim.satisfies(req) {
            prop_assert!(sim.satisfies(weaker));
        }
    }

    #[test]
    fn violation_is_permanent_under_refinement(
        (sim, finer) in arb_refinement(),
        req in arb_triple(),
    ) {
        // The early-exit rule of the justifier: once a (partially
        // simulated) value is incompatible with a requirement, no further
        // specification can recover it.
        if !sim.is_compatible(req) {
            prop_assert!(!finer.is_compatible(req));
        }
    }

    #[test]
    fn negation_is_an_involution_and_de_morgan_holds(
        a in arb_triple(),
        b in arb_triple(),
    ) {
        prop_assert_eq!(a.negate().negate(), a);
        prop_assert_eq!(a.and(b).negate(), a.negate().or(b.negate()));
        prop_assert_eq!(a.or(b).negate(), a.negate().and(b.negate()));
    }

    #[test]
    fn and_or_are_commutative_and_associative(
        a in arb_triple(),
        b in arb_triple(),
        c in arb_triple(),
    ) {
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.and(b).and(c), a.and(b.and(c)));
        prop_assert_eq!(a.or(b).or(c), a.or(b.or(c)));
        prop_assert_eq!(a.xor(b), b.xor(a));
    }

    #[test]
    fn satisfies_implies_compatible(sim in arb_triple(), req in arb_triple()) {
        if sim.satisfies(req) {
            prop_assert!(sim.is_compatible(req));
        }
    }
}
