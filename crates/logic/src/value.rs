//! The scalar three-valued domain `{0, 1, x}`.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitXor, Not};
use core::str::FromStr;

/// A three-valued logic value: `0`, `1`, or unknown/unspecified `x`.
///
/// `x` plays two roles in path delay fault test generation, and both use the
/// same algebra:
///
/// * in **simulation** it means "value not determined by the current partial
///   input assignment",
/// * in a **requirement** (an entry of the necessary assignment set `A(p)`)
///   it means "don't care".
///
/// The logical operations implement Kleene's strong three-valued logic:
/// a controlling operand decides the result even when the other operand is
/// `x` (`0 & x = 0`, `1 | x = 1`).
///
/// # Example
///
/// ```
/// use pdf_logic::Value;
///
/// assert_eq!(Value::Zero & Value::X, Value::Zero);
/// assert_eq!(Value::One | Value::X, Value::One);
/// assert_eq!(!Value::X, Value::X);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unspecified / don't-care.
    #[default]
    X,
}

impl Value {
    /// All three values, in `0, 1, x` order. Convenient for exhaustive tests.
    pub const ALL: [Value; 3] = [Value::Zero, Value::One, Value::X];

    /// Returns `true` if the value is `0` or `1` (not `x`).
    #[inline]
    #[must_use]
    pub const fn is_specified(self) -> bool {
        !matches!(self, Value::X)
    }

    /// Converts to `bool` when specified.
    ///
    /// Returns `None` for [`Value::X`].
    #[inline]
    #[must_use]
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            Value::Zero => Some(false),
            Value::One => Some(true),
            Value::X => None,
        }
    }

    /// Three-valued conjunction (`0` is controlling).
    #[inline]
    #[must_use]
    pub const fn and(self, other: Value) -> Value {
        match (self, other) {
            (Value::Zero, _) | (_, Value::Zero) => Value::Zero,
            (Value::One, Value::One) => Value::One,
            _ => Value::X,
        }
    }

    /// Three-valued disjunction (`1` is controlling).
    #[inline]
    #[must_use]
    pub const fn or(self, other: Value) -> Value {
        match (self, other) {
            (Value::One, _) | (_, Value::One) => Value::One,
            (Value::Zero, Value::Zero) => Value::Zero,
            _ => Value::X,
        }
    }

    /// Three-valued exclusive or (no controlling value: any `x` operand
    /// makes the result `x`).
    #[inline]
    #[must_use]
    pub const fn xor(self, other: Value) -> Value {
        match (self, other) {
            (Value::X, _) | (_, Value::X) => Value::X,
            (a, b) => {
                if matches!(a, Value::One) != matches!(b, Value::One) {
                    Value::One
                } else {
                    Value::Zero
                }
            }
        }
    }

    /// Three-valued negation (`!x = x`).
    #[inline]
    #[must_use]
    pub const fn negate(self) -> Value {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
            Value::X => Value::X,
        }
    }

    /// Returns `true` if `self` (a simulated value) satisfies the
    /// requirement `req`: either `req` is a don't-care, or the values agree.
    ///
    /// ```
    /// use pdf_logic::Value;
    ///
    /// assert!(Value::Zero.satisfies(Value::X));
    /// assert!(Value::Zero.satisfies(Value::Zero));
    /// assert!(!Value::X.satisfies(Value::Zero)); // unknown does not satisfy a demand
    /// ```
    #[inline]
    #[must_use]
    pub const fn satisfies(self, req: Value) -> bool {
        match req {
            Value::X => true,
            _ => matches!(
                (self, req),
                (Value::Zero, Value::Zero) | (Value::One, Value::One)
            ),
        }
    }

    /// Returns `true` if `self` and `other` could describe the same line:
    /// they are equal or at least one is `x`.
    #[inline]
    #[must_use]
    pub const fn is_compatible(self, other: Value) -> bool {
        matches!(self, Value::X) || matches!(other, Value::X) || self as u8 == other as u8
    }

    /// Intersects two *requirements*: `x` is unconstrained, specified values
    /// must agree.
    ///
    /// Returns `None` on conflict (`0` vs `1`). This is the operation used
    /// to merge the necessary assignment sets `A(p)` of several faults that
    /// one test must detect simultaneously.
    #[inline]
    #[must_use]
    pub const fn intersect(self, other: Value) -> Option<Value> {
        match (self, other) {
            (Value::X, v) | (v, Value::X) => Some(v),
            (Value::Zero, Value::Zero) => Some(Value::Zero),
            (Value::One, Value::One) => Some(Value::One),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }
}

impl BitAnd for Value {
    type Output = Value;
    #[inline]
    fn bitand(self, rhs: Value) -> Value {
        self.and(rhs)
    }
}

impl BitOr for Value {
    type Output = Value;
    #[inline]
    fn bitor(self, rhs: Value) -> Value {
        self.or(rhs)
    }
}

impl BitXor for Value {
    type Output = Value;
    #[inline]
    fn bitxor(self, rhs: Value) -> Value {
        self.xor(rhs)
    }
}

impl Not for Value {
    type Output = Value;
    #[inline]
    fn not(self) -> Value {
        self.negate()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Value::Zero => '0',
            Value::One => '1',
            Value::X => 'x',
        };
        write!(f, "{c}")
    }
}

/// Error returned when parsing a [`Value`] from a string fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseValueError {
    found: char,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid logic value `{}`, expected 0, 1 or x",
            self.found
        )
    }
}

impl std::error::Error for ParseValueError {}

impl FromStr for Value {
    type Err = ParseValueError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.chars();
        let (Some(c), None) = (chars.next(), chars.next()) else {
            return Err(ParseValueError {
                found: s.chars().next().unwrap_or('?'),
            });
        };
        Value::try_from(c)
    }
}

impl TryFrom<char> for Value {
    type Error = ParseValueError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        match c {
            '0' => Ok(Value::Zero),
            '1' => Ok(Value::One),
            'x' | 'X' => Ok(Value::X),
            other => Err(ParseValueError { found: other }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        use Value::{One, Zero, X};
        assert_eq!(Zero & Zero, Zero);
        assert_eq!(Zero & One, Zero);
        assert_eq!(One & Zero, Zero);
        assert_eq!(One & One, One);
        assert_eq!(X & Zero, Zero);
        assert_eq!(Zero & X, Zero);
        assert_eq!(X & One, X);
        assert_eq!(One & X, X);
        assert_eq!(X & X, X);
    }

    #[test]
    fn or_truth_table() {
        use Value::{One, Zero, X};
        assert_eq!(Zero | Zero, Zero);
        assert_eq!(Zero | One, One);
        assert_eq!(One | One, One);
        assert_eq!(X | One, One);
        assert_eq!(One | X, One);
        assert_eq!(X | Zero, X);
        assert_eq!(Zero | X, X);
        assert_eq!(X | X, X);
    }

    #[test]
    fn xor_truth_table() {
        use Value::{One, Zero, X};
        assert_eq!(Zero ^ Zero, Zero);
        assert_eq!(Zero ^ One, One);
        assert_eq!(One ^ Zero, One);
        assert_eq!(One ^ One, Zero);
        for v in Value::ALL {
            assert_eq!(X ^ v, X);
            assert_eq!(v ^ X, X);
        }
    }

    #[test]
    fn negation() {
        assert_eq!(!Value::Zero, Value::One);
        assert_eq!(!Value::One, Value::Zero);
        assert_eq!(!Value::X, Value::X);
    }

    #[test]
    fn de_morgan_holds_in_three_valued_logic() {
        for a in Value::ALL {
            for b in Value::ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn satisfies_semantics() {
        // Everything satisfies a don't-care.
        for v in Value::ALL {
            assert!(v.satisfies(Value::X));
        }
        // A demand is only satisfied by the exact value.
        assert!(Value::Zero.satisfies(Value::Zero));
        assert!(Value::One.satisfies(Value::One));
        assert!(!Value::Zero.satisfies(Value::One));
        assert!(!Value::One.satisfies(Value::Zero));
        assert!(!Value::X.satisfies(Value::Zero));
        assert!(!Value::X.satisfies(Value::One));
    }

    #[test]
    fn intersect_merges_requirements() {
        assert_eq!(Value::X.intersect(Value::One), Some(Value::One));
        assert_eq!(Value::Zero.intersect(Value::X), Some(Value::Zero));
        assert_eq!(Value::One.intersect(Value::One), Some(Value::One));
        assert_eq!(Value::Zero.intersect(Value::One), None);
    }

    #[test]
    fn intersect_is_commutative_and_associative_where_defined() {
        for a in Value::ALL {
            for b in Value::ALL {
                assert_eq!(a.intersect(b), b.intersect(a));
                for c in Value::ALL {
                    let left = a.intersect(b).and_then(|ab| ab.intersect(c));
                    let right = b.intersect(c).and_then(|bc| a.intersect(bc));
                    assert_eq!(left, right);
                }
            }
        }
    }

    #[test]
    fn parse_round_trip() {
        for v in Value::ALL {
            let s = v.to_string();
            assert_eq!(s.parse::<Value>().unwrap(), v);
        }
        assert!("2".parse::<Value>().is_err());
        assert!("01".parse::<Value>().is_err());
        assert!("".parse::<Value>().is_err());
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Value::from(true), Value::One);
        assert_eq!(Value::from(false), Value::Zero);
        assert_eq!(Value::One.to_bool(), Some(true));
        assert_eq!(Value::Zero.to_bool(), Some(false));
        assert_eq!(Value::X.to_bool(), None);
    }
}
