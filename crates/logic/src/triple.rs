//! Two-pattern value triples `α1 α2 α3`.

use core::fmt;
use core::str::FromStr;

use crate::Value;

/// A two-pattern value triple `α1 α2 α3` describing the waveform of one
/// circuit line under a two-pattern test (Pomeranz & Reddy, Sec. 2.1).
///
/// * `α1` — value under the first pattern,
/// * `α3` — value under the second pattern,
/// * `α2` — intermediate value while the circuit settles between patterns;
///   a specified `α2` asserts the line is **hazard-free** at that value.
///
/// The canonical waveforms are:
///
/// | triple | meaning |
/// |--------|---------------------------|
/// | `000`  | stable 0                  |
/// | `111`  | stable 1                  |
/// | `0x1`  | rising transition         |
/// | `1x0`  | falling transition        |
/// | `0x0`  | 0 with possible up-glitch |
/// | `1x1`  | 1 with possible down-glitch |
///
/// Triples are used both as *simulated values* and as *requirements* in the
/// necessary-assignment sets `A(p)`; in a requirement `x` components are
/// don't-cares.
///
/// # Example
///
/// ```
/// use pdf_logic::Triple;
///
/// let rising: Triple = "0x1".parse()?;
/// assert_eq!(rising, Triple::RISING);
/// assert!(rising.is_transition());
/// assert_eq!(rising.negate(), Triple::FALLING);
/// # Ok::<(), pdf_logic::ParseTripleError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Triple {
    first: Value,
    mid: Value,
    last: Value,
}

impl Triple {
    /// Stable logic 0: `000`.
    pub const STABLE0: Triple = Triple::new(Value::Zero, Value::Zero, Value::Zero);
    /// Stable logic 1: `111`.
    pub const STABLE1: Triple = Triple::new(Value::One, Value::X, Value::One).canonical();
    /// Rising transition: `0x1`.
    pub const RISING: Triple = Triple::new(Value::Zero, Value::X, Value::One);
    /// Falling transition: `1x0`.
    pub const FALLING: Triple = Triple::new(Value::One, Value::X, Value::Zero);
    /// Fully unspecified: `xxx`.
    pub const UNKNOWN: Triple = Triple::new(Value::X, Value::X, Value::X);

    /// Creates a triple from its three components, verbatim.
    ///
    /// Most callers should prefer [`Triple::from_patterns`], which derives
    /// the intermediate component, or the canonical constants.
    #[inline]
    #[must_use]
    pub const fn new(first: Value, mid: Value, last: Value) -> Triple {
        Triple { first, mid, last }
    }

    /// Creates the waveform of a *primary input* given its values under the
    /// two patterns. The intermediate value is derived: a primary input held
    /// at the same specified value is stable (hazard-free), anything else
    /// leaves the intermediate value unknown.
    ///
    /// ```
    /// use pdf_logic::{Triple, Value};
    ///
    /// assert_eq!(Triple::from_patterns(Value::One, Value::One), Triple::STABLE1);
    /// assert_eq!(Triple::from_patterns(Value::Zero, Value::One), Triple::RISING);
    /// assert_eq!(
    ///     Triple::from_patterns(Value::Zero, Value::X).to_string(),
    ///     "0xx",
    /// );
    /// ```
    #[inline]
    #[must_use]
    pub const fn from_patterns(first: Value, last: Value) -> Triple {
        let mid = match (first, last) {
            (Value::Zero, Value::Zero) => Value::Zero,
            (Value::One, Value::One) => Value::One,
            _ => Value::X,
        };
        Triple { first, mid, last }
    }

    /// Normalizes the intermediate component: if both outer components agree
    /// on a specified value `v` and the intermediate is `x`, the triple is
    /// *not* collapsed (an `1x1` line may glitch — that is weaker than
    /// `111`), but a specified intermediate that contradicts a stable pair
    /// is preserved as-is for the caller to detect. This helper only fixes
    /// the representation of the constants above.
    const fn canonical(self) -> Triple {
        // STABLE1 is written out via new(1, x, 1) for const-eval ergonomics;
        // restore the stable intermediate.
        Triple {
            first: self.first,
            mid: match (self.first, self.last) {
                (Value::One, Value::One) => Value::One,
                (Value::Zero, Value::Zero) => Value::Zero,
                _ => self.mid,
            },
            last: self.last,
        }
    }

    /// The value under the first pattern (`α1`).
    #[inline]
    #[must_use]
    pub const fn first(self) -> Value {
        self.first
    }

    /// The intermediate value (`α2`).
    #[inline]
    #[must_use]
    pub const fn mid(self) -> Value {
        self.mid
    }

    /// The value under the second pattern (`α3`).
    #[inline]
    #[must_use]
    pub const fn last(self) -> Value {
        self.last
    }

    /// The components as an array `[α1, α2, α3]`.
    #[inline]
    #[must_use]
    pub const fn components(self) -> [Value; 3] {
        [self.first, self.mid, self.last]
    }

    /// Returns `true` if all three components are specified (not `x`).
    #[inline]
    #[must_use]
    pub const fn is_fully_specified(self) -> bool {
        self.first.is_specified() && self.mid.is_specified() && self.last.is_specified()
    }

    /// Returns `true` if no component is specified (`xxx`).
    #[inline]
    #[must_use]
    pub const fn is_unknown(self) -> bool {
        !self.first.is_specified() && !self.mid.is_specified() && !self.last.is_specified()
    }

    /// Returns `true` for a specified rising (`0→1`) or falling (`1→0`)
    /// waveform.
    #[inline]
    #[must_use]
    pub const fn is_transition(self) -> bool {
        matches!(
            (self.first, self.last),
            (Value::Zero, Value::One) | (Value::One, Value::Zero)
        )
    }

    /// Returns `true` for a hazard-free stable waveform (`000` or `111`).
    #[inline]
    #[must_use]
    pub const fn is_stable(self) -> bool {
        matches!(
            (self.first, self.mid, self.last),
            (Value::Zero, Value::Zero, Value::Zero) | (Value::One, Value::One, Value::One)
        )
    }

    /// Component-wise negation. Maps rising to falling and vice versa.
    #[inline]
    #[must_use]
    pub const fn negate(self) -> Triple {
        Triple {
            first: self.first.negate(),
            mid: self.mid.negate(),
            last: self.last.negate(),
        }
    }

    /// Component-wise conjunction under the conservative hazard algebra.
    #[inline]
    #[must_use]
    pub const fn and(self, other: Triple) -> Triple {
        Triple {
            first: self.first.and(other.first),
            mid: self.mid.and(other.mid),
            last: self.last.and(other.last),
        }
    }

    /// Component-wise disjunction under the conservative hazard algebra.
    #[inline]
    #[must_use]
    pub const fn or(self, other: Triple) -> Triple {
        Triple {
            first: self.first.or(other.first),
            mid: self.mid.or(other.mid),
            last: self.last.or(other.last),
        }
    }

    /// Component-wise exclusive-or. Note that XOR has no controlling value,
    /// so any unknown component of either operand makes the corresponding
    /// output component unknown — XOR never filters hazards.
    #[inline]
    #[must_use]
    pub const fn xor(self, other: Triple) -> Triple {
        Triple {
            first: self.first.xor(other.first),
            mid: self.mid.xor(other.mid),
            last: self.last.xor(other.last),
        }
    }

    /// Returns `true` if `self` (a simulated waveform) satisfies the
    /// requirement `req` component-wise: every specified component of `req`
    /// must be matched exactly by `self`.
    ///
    /// This is the test used by robust fault simulation: a two-pattern test
    /// detects a path delay fault `p` iff the simulated triple of every line
    /// constrained by `A(p)` satisfies its required triple.
    ///
    /// ```
    /// use pdf_logic::Triple;
    ///
    /// let req: Triple = "xx0".parse()?; // final value 0, hazard allowed
    /// assert!(Triple::FALLING.satisfies(req));
    /// assert!(Triple::STABLE0.satisfies(req));
    /// assert!(!Triple::STABLE1.satisfies(req));
    /// # Ok::<(), pdf_logic::ParseTripleError>(())
    /// ```
    #[inline]
    #[must_use]
    pub const fn satisfies(self, req: Triple) -> bool {
        self.first.satisfies(req.first)
            && self.mid.satisfies(req.mid)
            && self.last.satisfies(req.last)
    }

    /// Intersects two *requirement* triples component-wise.
    ///
    /// Returns `None` if any component conflicts (`0` vs `1`). Merging the
    /// necessary assignments of all faults targeted by one test uses this
    /// operation; a `None` means the faults cannot share a test through
    /// these lines.
    ///
    /// ```
    /// use pdf_logic::Triple;
    ///
    /// let a: Triple = "xx0".parse()?;
    /// let b: Triple = "0xx".parse()?;
    /// assert_eq!(a.intersect(b), Some("0x0".parse()?));
    /// assert_eq!(a.intersect(Triple::STABLE1), None);
    /// # Ok::<(), pdf_logic::ParseTripleError>(())
    /// ```
    #[inline]
    #[must_use]
    pub const fn intersect(self, other: Triple) -> Option<Triple> {
        let first = match self.first.intersect(other.first) {
            Some(v) => v,
            None => return None,
        };
        let mid = match self.mid.intersect(other.mid) {
            Some(v) => v,
            None => return None,
        };
        let last = match self.last.intersect(other.last) {
            Some(v) => v,
            None => return None,
        };
        Some(Triple { first, mid, last })
    }

    /// Returns `true` if the two triples could describe the same line, i.e.
    /// [`Triple::intersect`] would succeed.
    #[inline]
    #[must_use]
    pub const fn is_compatible(self, other: Triple) -> bool {
        self.intersect(other).is_some()
    }

    /// Counts the specified (non-`x`) components. Used by the value-based
    /// compaction heuristic to size Δ-sets.
    #[inline]
    #[must_use]
    pub const fn specified_count(self) -> usize {
        self.first.is_specified() as usize
            + self.mid.is_specified() as usize
            + self.last.is_specified() as usize
    }

    /// The number of specified components `other` demands beyond what
    /// `self` already demands, assuming the triples are compatible.
    ///
    /// This is the per-line contribution to `n_Δ(p_i)` in the value-based
    /// secondary-target selection heuristic.
    #[inline]
    #[must_use]
    pub const fn delta_count(self, other: Triple) -> usize {
        (other.first.is_specified() && !self.first.is_specified()) as usize
            + (other.mid.is_specified() && !self.mid.is_specified()) as usize
            + (other.last.is_specified() && !self.last.is_specified()) as usize
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.first, self.mid, self.last)
    }
}

/// Error returned when parsing a [`Triple`] from a string fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseTripleError;

impl fmt::Display for ParseTripleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid value triple, expected three characters out of {0, 1, x}")
    }
}

impl std::error::Error for ParseTripleError {}

impl FromStr for Triple {
    type Err = ParseTripleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.chars();
        let (Some(a), Some(b), Some(c), None) =
            (chars.next(), chars.next(), chars.next(), chars.next())
        else {
            return Err(ParseTripleError);
        };
        let first = Value::try_from(a).map_err(|_| ParseTripleError)?;
        let mid = Value::try_from(b).map_err(|_| ParseTripleError)?;
        let last = Value::try_from(c).map_err(|_| ParseTripleError)?;
        Ok(Triple { first, mid, last })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Triple {
        s.parse().unwrap()
    }

    #[test]
    fn constants_have_expected_representation() {
        assert_eq!(Triple::STABLE0.to_string(), "000");
        assert_eq!(Triple::STABLE1.to_string(), "111");
        assert_eq!(Triple::RISING.to_string(), "0x1");
        assert_eq!(Triple::FALLING.to_string(), "1x0");
        assert_eq!(Triple::UNKNOWN.to_string(), "xxx");
    }

    #[test]
    fn from_patterns_derives_intermediate() {
        use Value::{One, Zero, X};
        assert_eq!(Triple::from_patterns(Zero, Zero), Triple::STABLE0);
        assert_eq!(Triple::from_patterns(One, One), Triple::STABLE1);
        assert_eq!(Triple::from_patterns(Zero, One), Triple::RISING);
        assert_eq!(Triple::from_patterns(One, Zero), Triple::FALLING);
        assert_eq!(Triple::from_patterns(X, One), t("xx1"));
        assert_eq!(Triple::from_patterns(One, X), t("1xx"));
        assert_eq!(Triple::from_patterns(X, X), Triple::UNKNOWN);
    }

    #[test]
    fn and_filters_and_preserves_hazards() {
        // Stable non-controlling side value lets a transition through.
        assert_eq!(Triple::RISING.and(Triple::STABLE1), Triple::RISING);
        // Stable controlling side value blocks everything.
        assert_eq!(Triple::RISING.and(Triple::STABLE0), Triple::STABLE0);
        // Opposing transitions can glitch: 0x0.
        assert_eq!(Triple::RISING.and(Triple::FALLING), t("0x0"));
        // A hazard on the side input with final 1 leaves a possible glitch.
        assert_eq!(Triple::RISING.and(t("1x1")), t("0x1"));
        assert_eq!(t("1x1").and(Triple::STABLE1), t("1x1"));
    }

    #[test]
    fn or_filters_and_preserves_hazards() {
        assert_eq!(Triple::FALLING.or(Triple::STABLE0), Triple::FALLING);
        assert_eq!(Triple::FALLING.or(Triple::STABLE1), Triple::STABLE1);
        assert_eq!(Triple::RISING.or(Triple::FALLING), t("1x1"));
    }

    #[test]
    fn xor_never_filters_hazards() {
        // Even a stable side input keeps the output glitch-capable when the
        // other input transitions — the mid component stays x.
        assert_eq!(Triple::RISING.xor(Triple::STABLE0), Triple::RISING);
        assert_eq!(Triple::RISING.xor(Triple::STABLE1), Triple::FALLING);
        assert_eq!(Triple::RISING.xor(Triple::RISING), t("0x0"));
    }

    #[test]
    fn satisfies_is_componentwise() {
        assert!(Triple::FALLING.satisfies(t("xx0")));
        assert!(Triple::STABLE0.satisfies(t("xx0")));
        assert!(t("0x0").satisfies(t("xx0")));
        assert!(!t("0x0").satisfies(Triple::STABLE0)); // mid x does not prove hazard-freeness
        assert!(!Triple::RISING.satisfies(t("xx0")));
        assert!(Triple::RISING.satisfies(Triple::UNKNOWN));
        assert!(!Triple::UNKNOWN.satisfies(t("xx0")));
    }

    #[test]
    fn intersect_conflicts() {
        assert_eq!(t("xx0").intersect(t("0xx")), Some(t("0x0")));
        assert_eq!(t("xx0").intersect(t("xx1")), None);
        assert_eq!(
            Triple::STABLE0.intersect(Triple::STABLE0),
            Some(Triple::STABLE0)
        );
        assert_eq!(Triple::RISING.intersect(Triple::FALLING), None);
        assert_eq!(Triple::UNKNOWN.intersect(t("1x0")), Some(t("1x0")));
    }

    #[test]
    fn delta_count_counts_new_demands() {
        assert_eq!(Triple::UNKNOWN.delta_count(t("0x1")), 2);
        assert_eq!(t("0xx").delta_count(t("0x1")), 1);
        assert_eq!(t("0x1").delta_count(t("0x1")), 0);
        assert_eq!(t("000").delta_count(Triple::UNKNOWN), 0);
    }

    #[test]
    fn negate_swaps_transitions() {
        assert_eq!(Triple::RISING.negate(), Triple::FALLING);
        assert_eq!(Triple::STABLE0.negate(), Triple::STABLE1);
        assert_eq!(t("0x0").negate(), t("1x1"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Triple>().is_err());
        assert!("0x".parse::<Triple>().is_err());
        assert!("0x12".parse::<Triple>().is_err());
        assert!("02x".parse::<Triple>().is_err());
    }

    #[test]
    fn specified_count() {
        assert_eq!(Triple::UNKNOWN.specified_count(), 0);
        assert_eq!(t("0xx").specified_count(), 1);
        assert_eq!(Triple::RISING.specified_count(), 2);
        assert_eq!(Triple::STABLE1.specified_count(), 3);
    }
}
