//! Gate primitives and their evaluation over the scalar and triple domains.

use core::fmt;
use core::str::FromStr;

use crate::{Triple, Value};

/// The primitive gate functions supported by the netlist substrate.
///
/// The set matches what ISCAS-style `.bench` files use. Gates with a
/// *controlling value* (`AND/NAND/OR/NOR`) admit the classical robust
/// sensitization conditions for path delay faults; `XOR`/`XNOR` do not and
/// are decomposed by the netlist layer before path analysis when requested.
///
/// # Example
///
/// ```
/// use pdf_logic::{GateKind, Value};
///
/// assert_eq!(GateKind::Nand.controlling_value(), Some(Value::Zero));
/// assert!(GateKind::Nand.inverts());
/// assert_eq!(
///     GateKind::Nand.eval([Value::Zero, Value::X]),
///     Value::One, // controlling input decides despite the x
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Logical conjunction.
    And,
    /// Negated conjunction.
    Nand,
    /// Logical disjunction.
    Or,
    /// Negated disjunction.
    Nor,
    /// Exclusive or (no controlling value).
    Xor,
    /// Negated exclusive or (no controlling value).
    Xnor,
    /// Inverter (single input).
    Not,
    /// Buffer (single input). Also used for fanout branches.
    Buf,
}

impl GateKind {
    /// All gate kinds, for exhaustive iteration in tests.
    pub const ALL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// The controlling value of the gate, if it has one.
    ///
    /// A controlling value on any input determines the output regardless of
    /// the other inputs: `0` for `AND`/`NAND`, `1` for `OR`/`NOR`.
    /// Single-input gates and the XOR family return `None`.
    #[inline]
    #[must_use]
    pub const fn controlling_value(self) -> Option<Value> {
        match self {
            GateKind::And | GateKind::Nand => Some(Value::Zero),
            GateKind::Or | GateKind::Nor => Some(Value::One),
            GateKind::Xor | GateKind::Xnor | GateKind::Not | GateKind::Buf => None,
        }
    }

    /// The non-controlling value (complement of the controlling value).
    #[inline]
    #[must_use]
    pub const fn noncontrolling_value(self) -> Option<Value> {
        match self.controlling_value() {
            Some(v) => Some(v.negate()),
            None => None,
        }
    }

    /// Returns `true` if the gate logically inverts (`NAND`, `NOR`, `XNOR`,
    /// `NOT`).
    #[inline]
    #[must_use]
    pub const fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Returns `true` for single-input gates (`NOT`, `BUF`).
    #[inline]
    #[must_use]
    pub const fn is_single_input(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// Returns `true` for the XOR family, which has no controlling value
    /// and therefore no unique robust off-path condition.
    #[inline]
    #[must_use]
    pub const fn is_parity(self) -> bool {
        matches!(self, GateKind::Xor | GateKind::Xnor)
    }

    /// Evaluates the gate over three-valued scalars.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or if a single-input gate receives more
    /// than one input.
    #[must_use]
    pub fn eval<I>(self, inputs: I) -> Value
    where
        I: IntoIterator<Item = Value>,
    {
        let mut it = inputs.into_iter();
        let first = it.next().expect("gate must have at least one input");
        let folded = match self {
            GateKind::And | GateKind::Nand => it.fold(first, Value::and),
            GateKind::Or | GateKind::Nor => it.fold(first, Value::or),
            GateKind::Xor | GateKind::Xnor => it.fold(first, Value::xor),
            GateKind::Not | GateKind::Buf => {
                assert!(
                    it.next().is_none(),
                    "single-input gate evaluated with multiple inputs"
                );
                first
            }
        };
        if self.inverts() {
            !folded
        } else {
            folded
        }
    }

    /// Evaluates the gate over value triples using the conservative hazard
    /// algebra (component-wise scalar evaluation).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GateKind::eval`].
    #[must_use]
    pub fn eval_triples<I>(self, inputs: I) -> Triple
    where
        I: IntoIterator<Item = Triple>,
    {
        let mut it = inputs.into_iter();
        let first = it.next().expect("gate must have at least one input");
        let folded = match self {
            GateKind::And | GateKind::Nand => it.fold(first, Triple::and),
            GateKind::Or | GateKind::Nor => it.fold(first, Triple::or),
            GateKind::Xor | GateKind::Xnor => it.fold(first, Triple::xor),
            GateKind::Not | GateKind::Buf => {
                assert!(
                    it.next().is_none(),
                    "single-input gate evaluated with multiple inputs"
                );
                first
            }
        };
        if self.inverts() {
            folded.negate()
        } else {
            folded
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`GateKind`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseGateKindError {
    found: String,
}

impl ParseGateKindError {
    /// The unrecognized gate name.
    #[must_use]
    pub fn found(&self) -> &str {
        &self.found
    }
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.found)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            other => Err(ParseGateKindError {
                found: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Value::{One, Zero, X};

    type BoolOp = fn(bool, bool) -> bool;

    #[test]
    fn two_valued_projection_matches_boolean_logic() {
        let cases: [(GateKind, BoolOp); 6] = [
            (GateKind::And, |a, b| a && b),
            (GateKind::Nand, |a, b| !(a && b)),
            (GateKind::Or, |a, b| a || b),
            (GateKind::Nor, |a, b| !(a || b)),
            (GateKind::Xor, |a, b| a != b),
            (GateKind::Xnor, |a, b| a == b),
        ];
        for (kind, f) in cases {
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(
                        kind.eval([Value::from(a), Value::from(b)]),
                        Value::from(f(a, b)),
                        "{kind} {a} {b}"
                    );
                }
            }
        }
        assert_eq!(GateKind::Not.eval([Zero]), One);
        assert_eq!(GateKind::Buf.eval([One]), One);
    }

    #[test]
    fn controlling_value_decides_despite_x() {
        assert_eq!(GateKind::And.eval([Zero, X]), Zero);
        assert_eq!(GateKind::Nand.eval([Zero, X]), One);
        assert_eq!(GateKind::Or.eval([One, X]), One);
        assert_eq!(GateKind::Nor.eval([One, X]), Zero);
        // Parity gates cannot decide.
        assert_eq!(GateKind::Xor.eval([One, X]), X);
        assert_eq!(GateKind::Xnor.eval([Zero, X]), X);
    }

    #[test]
    fn multi_input_gates_fold() {
        assert_eq!(GateKind::And.eval([One, One, One, Zero]), Zero);
        assert_eq!(GateKind::Or.eval([Zero, Zero, One]), One);
        assert_eq!(GateKind::Xor.eval([One, One, One]), One);
        assert_eq!(GateKind::Nand.eval([One, One, One]), Zero);
    }

    #[test]
    fn controlling_and_noncontrolling_are_complements() {
        for kind in GateKind::ALL {
            match (kind.controlling_value(), kind.noncontrolling_value()) {
                (Some(c), Some(nc)) => assert_eq!(c, !nc),
                (None, None) => {}
                _ => panic!("inconsistent controlling values for {kind}"),
            }
        }
    }

    #[test]
    fn triple_eval_matches_componentwise_scalar_eval() {
        let triples = [
            Triple::STABLE0,
            Triple::STABLE1,
            Triple::RISING,
            Triple::FALLING,
            Triple::UNKNOWN,
            "0x0".parse().unwrap(),
            "1x1".parse().unwrap(),
        ];
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
        ] {
            for a in triples {
                for b in triples {
                    let out = kind.eval_triples([a, b]);
                    let expect = Triple::new(
                        kind.eval([a.first(), b.first()]),
                        kind.eval([a.mid(), b.mid()]),
                        kind.eval([a.last(), b.last()]),
                    );
                    assert_eq!(out, expect, "{kind} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn parse_round_trip_including_aliases() {
        for kind in GateKind::ALL {
            assert_eq!(kind.to_string().parse::<GateKind>().unwrap(), kind);
            assert_eq!(
                kind.to_string().to_lowercase().parse::<GateKind>().unwrap(),
                kind
            );
        }
        assert_eq!("BUFF".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert_eq!("INV".parse::<GateKind>().unwrap(), GateKind::Not);
        let err = "MAJ".parse::<GateKind>().unwrap_err();
        assert_eq!(err.found(), "MAJ");
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_input_panics() {
        let _ = GateKind::And.eval([]);
    }

    #[test]
    #[should_panic(expected = "single-input gate")]
    fn not_with_two_inputs_panics() {
        let _ = GateKind::Not.eval([Zero, One]);
    }
}
