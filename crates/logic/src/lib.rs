//! Three-valued logic and two-pattern value triples for path delay fault
//! testing.
//!
//! Path delay fault (PDF) test generation reasons about *two-pattern* tests:
//! a pair of input vectors `⟨v1, v2⟩` applied in consecutive clock cycles.
//! Every signal line in the circuit is then described by a **value triple**
//! `α = α1 α2 α3` (Pomeranz & Reddy, DATE 2002, Sec. 2.1):
//!
//! * `α1` — the value under the first pattern,
//! * `α3` — the value under the second pattern,
//! * `α2` — the *intermediate* value of the line while the circuit settles
//!   (`x` when the line may glitch or transition, otherwise equal to the
//!   stable value).
//!
//! The triple domain is built on a conventional three-valued scalar domain
//! `{0, 1, x}` ([`Value`]). Gate evaluation extends component-wise to
//! triples, which yields the standard *conservative hazard algebra*: an
//! intermediate `x` survives whenever a glitch cannot be ruled out, so a
//! computed stable `000`/`111` is a **guarantee** of hazard-freeness. This is
//! exactly the property robust path delay fault tests rely on.
//!
//! # Example
//!
//! ```
//! use pdf_logic::{GateKind, Triple};
//!
//! // A rising transition reaching one AND input while the other holds a
//! // steady non-controlling 1 propagates robustly:
//! let out = GateKind::And.eval_triples([Triple::RISING, Triple::STABLE1]);
//! assert_eq!(out, Triple::RISING);
//!
//! // Two opposing transitions may glitch: the intermediate value is x.
//! let out = GateKind::And.eval_triples([Triple::RISING, Triple::FALLING]);
//! assert_eq!(out.to_string(), "0x0");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gate;
mod triple;
mod value;

pub use gate::{GateKind, ParseGateKindError};
pub use triple::{ParseTripleError, Triple};
pub use value::{ParseValueError, Value};
