//! Ablation: how the `N_P0` threshold (the size of `P_0`) shifts the cost
//! of the enrichment run.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_atpg::{EnrichmentAtpg, TargetSplit};
use pdf_bench::setup;

fn bench_np0(c: &mut Criterion) {
    let s = setup("b09", 2_000, 200);
    let mut group = c.benchmark_group("ablation_np0");
    group.sample_size(10);
    for n_p0 in [50usize, 150, 400] {
        let split = TargetSplit::by_cumulative_length(&s.faults, n_p0);
        group.bench_function(format!("b09/np0_{n_p0}"), |b| {
            b.iter(|| EnrichmentAtpg::new(&s.circuit).with_seed(2002).run(&split));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_np0);
criterion_main!(benches);
