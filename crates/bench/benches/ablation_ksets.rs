//! Ablation: the paper's two-set scheme vs. the k-set generalization it
//! mentions ("it is possible to partition P into a larger number of
//! subsets").

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_atpg::{EnrichmentAtpg, TargetSplit};
use pdf_bench::setup;
use pdf_paths::LengthHistogram;

fn bench_ksets(c: &mut Criterion) {
    let s = setup("b09", 2_000, 200);
    let histogram = LengthHistogram::from_lengths(s.faults.delays());
    let classes = histogram.classes();
    let top = classes[0].length;
    let bottom = classes.last().unwrap().length;
    let mid1 = bottom + (top - bottom) * 2 / 3;
    let mid2 = bottom + (top - bottom) / 3;

    let splits = [
        ("k2", TargetSplit::by_thresholds(&s.faults, &[mid1])),
        ("k3", TargetSplit::by_thresholds(&s.faults, &[mid1, mid2])),
        (
            "k4",
            TargetSplit::by_thresholds(&s.faults, &[mid1, mid2, bottom + 1]),
        ),
    ];
    let mut group = c.benchmark_group("ablation_ksets");
    group.sample_size(10);
    for (label, split) in &splits {
        group.bench_function(format!("b09/{label}"), |b| {
            b.iter(|| EnrichmentAtpg::new(&s.circuit).with_seed(2002).run(split));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ksets);
criterion_main!(benches);
