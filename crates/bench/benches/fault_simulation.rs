//! Robust fault simulation throughput: waveform simulation plus
//! requirement checks over the whole fault population.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_atpg::{Justifier, TestSet};
use pdf_bench::setup;
use pdf_netlist::simulate_triples;

fn bench_fsim(c: &mut Criterion) {
    let s = setup("b09", 2_000, 200);
    // Build a few real tests to simulate.
    let mut justifier = Justifier::new(&s.circuit, 3).with_attempts(2);
    let tests: TestSet = s
        .faults
        .iter()
        .take(40)
        .filter_map(|e| justifier.justify(&e.assignments))
        .map(|j| j.test)
        .collect();
    assert!(!tests.is_empty());

    let mut group = c.benchmark_group("fault_simulation");
    group.bench_function("b09/waveforms_per_test", |b| {
        let t = &tests.tests()[0];
        let triples = t.to_triples();
        b.iter(|| simulate_triples(&s.circuit, &triples));
    });
    group.bench_function("b09/coverage_full_set", |b| {
        b.iter(|| tests.coverage(&s.circuit, &s.faults).detected_count());
    });
    group.finish();
}

criterion_group!(benches, bench_fsim);
criterion_main!(benches);
