//! Robust fault simulation throughput: waveform simulation plus
//! requirement checks over the whole fault population, comparing the
//! scalar reference engine against the packed bit-plane kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_atpg::{Justifier, SimBackend, TestSet};
use pdf_bench::setup;
use pdf_netlist::simulate_triples;
use pdf_sim::{PackedBlock, LANES};

/// A deterministic many-test workload: justified tests for the first
/// faults, cycled up to `count` tests.
fn build_tests(s: &pdf_bench::BenchSetup, count: usize) -> TestSet {
    let mut justifier = Justifier::new(&s.circuit, 3).with_attempts(2);
    let base: Vec<_> = s
        .faults
        .iter()
        .take(count.min(s.faults.len()))
        .filter_map(|e| justifier.justify(&e.assignments))
        .map(|j| j.test)
        .collect();
    assert!(!base.is_empty());
    (0..count).map(|i| base[i % base.len()].clone()).collect()
}

fn bench_circuit(c: &mut Criterion, name: &str, n_p: usize, n_p0: usize) {
    let s = setup(name, n_p, n_p0);
    let tests = build_tests(&s, 256);

    let mut group = c.benchmark_group("fault_simulation");
    group.bench_function(format!("{name}/waveforms_per_test"), |b| {
        let t = &tests.tests()[0];
        let triples = t.to_triples();
        b.iter(|| simulate_triples(&s.circuit, &triples));
    });
    group.bench_function(format!("{name}/waveforms_packed_block"), |b| {
        // One packed pass = 64 tests; amortized cost per test is this /64.
        let block_tests = &tests.tests()[..LANES];
        let mut block: PackedBlock = PackedBlock::new();
        b.iter(|| {
            block.load(&s.circuit, block_tests);
            block.lanes()
        });
    });
    group.bench_function(format!("{name}/waveforms_packed_block_512"), |b| {
        // One 512-lane pass = 256 tests here; amortized cost is this /256.
        let block_tests = tests.tests();
        let mut block: PackedBlock<[u64; 8]> = PackedBlock::new();
        b.iter(|| {
            block.load(&s.circuit, block_tests);
            block.lanes()
        });
    });
    group.bench_function(format!("{name}/coverage_scalar"), |b| {
        b.iter(|| {
            tests
                .coverage_with(SimBackend::Scalar, &s.circuit, &s.faults)
                .detected_count()
        });
    });
    group.bench_function(format!("{name}/coverage_packed"), |b| {
        b.iter(|| {
            tests
                .coverage_with(SimBackend::Packed, &s.circuit, &s.faults)
                .detected_count()
        });
    });
    group.finish();
}

fn bench_fsim(c: &mut Criterion) {
    bench_circuit(c, "b09", 2_000, 200);
    // The largest bundled stand-in: where the packed win matters.
    bench_circuit(c, "s9234*", 2_000, 200);
}

criterion_group!(benches, bench_fsim);
criterion_main!(benches);
