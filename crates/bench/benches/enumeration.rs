//! Path enumeration benchmarks: the moderate work-list procedure vs. the
//! distance-guided best-first procedure (the paper's Sec. 3.1 ablation),
//! plus histogram construction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pdf_netlist::iscas::s27;
use pdf_paths::{LengthHistogram, PathEnumerator, Strategy};

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");

    let tiny = s27();
    group.bench_function("s27/moderate_cap20", |b| {
        b.iter(|| {
            PathEnumerator::new(&tiny)
                .with_cap(20)
                .with_units_per_path(1)
                .with_strategy(Strategy::Moderate)
                .enumerate()
        });
    });
    group.bench_function("s27/distance_cap20", |b| {
        b.iter(|| {
            PathEnumerator::new(&tiny)
                .with_cap(20)
                .with_units_per_path(1)
                .with_strategy(Strategy::DistanceBased)
                .enumerate()
        });
    });

    let b03 = pdf_netlist::stand_in_profile("b03")
        .unwrap()
        .generate()
        .to_circuit()
        .unwrap();
    group.bench_function("b03/distance_cap10000", |b| {
        b.iter(|| PathEnumerator::new(&b03).with_cap(10_000).enumerate());
    });
    group.bench_function("b03/moderate_cap10000", |b| {
        b.iter(|| {
            PathEnumerator::new(&b03)
                .with_cap(10_000)
                .with_strategy(Strategy::Moderate)
                .enumerate()
        });
    });

    let store = PathEnumerator::new(&b03).with_cap(10_000).enumerate().store;
    group.bench_function("b03/histogram", |b| {
        b.iter_batched(
            || store.clone(),
            |s| LengthHistogram::from_lengths(s.iter().map(|e| e.delay)),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
