//! Justification benchmarks: the randomized simulation-based engine vs.
//! the exact branch-and-bound engine, single faults vs. merged
//! requirement sets, and the implication pre-filter.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_atpg::{ExactJustifier, Justifier};
use pdf_bench::setup;
use pdf_faults::Implicator;

fn bench_justification(c: &mut Criterion) {
    let s = setup("b09", 2_000, 200);
    let entries = s.faults.entries();
    let single = &entries[0].assignments;
    let merged = entries[0]
        .assignments
        .merged(&entries[2].assignments)
        .or_else(|| entries[0].assignments.merged(&entries[4].assignments))
        .unwrap_or_else(|| entries[0].assignments.clone());

    let mut group = c.benchmark_group("justification");
    group.bench_function("b09/simulation_single", |b| {
        let mut j = Justifier::new(&s.circuit, 1);
        b.iter(|| j.justify(single));
    });
    group.bench_function("b09/simulation_merged", |b| {
        let mut j = Justifier::new(&s.circuit, 1);
        b.iter(|| j.justify(&merged));
    });
    group.bench_function("b09/exact_single", |b| {
        let j = ExactJustifier::new(&s.circuit);
        b.iter(|| j.justify(single));
    });
    group.bench_function("b09/implication_prefilter", |b| {
        b.iter(|| Implicator::from_assignments(&s.circuit, &merged).is_ok());
    });
    group.finish();
}

criterion_group!(benches, bench_justification);
criterion_main!(benches);
