//! Ablation: run time of the basic procedure under each compaction
//! heuristic (the quality numbers are in Tables 3–5; this measures cost).

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_atpg::{AtpgConfig, BasicAtpg, Compaction};
use pdf_bench::setup;

fn bench_ordering(c: &mut Criterion) {
    let s = setup("b09", 2_000, 200);
    let mut group = c.benchmark_group("ablation_ordering");
    group.sample_size(10);
    for compaction in Compaction::ALL {
        group.bench_function(format!("b09/{}", compaction.label()), |b| {
            let config = AtpgConfig {
                compaction,
                ..AtpgConfig::default()
            };
            b.iter(|| {
                BasicAtpg::new(&s.circuit)
                    .with_config(config.clone())
                    .run(s.split.p0())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
