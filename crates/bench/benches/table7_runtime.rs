//! Regenerates the paper's Table 7 as a Criterion benchmark: the run time
//! of the enrichment procedure relative to the basic value-based
//! procedure on the same split. The paper reports ratios of 0.94–2.51;
//! compare the two groups' mean times.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_atpg::{BasicAtpg, EnrichmentAtpg};
use pdf_bench::setup;

fn bench_table7(c: &mut Criterion) {
    let s = setup("b09", 2_000, 200);
    let mut group = c.benchmark_group("table7_runtime");
    group.sample_size(10);
    group.bench_function("b09/basic_values", |b| {
        b.iter(|| BasicAtpg::new(&s.circuit).with_seed(2002).run(s.split.p0()));
    });
    group.bench_function("b09/enrichment", |b| {
        b.iter(|| {
            EnrichmentAtpg::new(&s.circuit)
                .with_seed(2002)
                .run(&s.split)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table7);
criterion_main!(benches);
