//! Measures scalar vs packed fault-simulation throughput on the largest
//! bundled stand-in and writes the result to `BENCH_sim.json`.
//!
//! The figure of merit is *checks per second*: one check is one
//! (test, fault) requirement evaluation, so a full coverage pass performs
//! `tests × faults` of them. The packed engine is measured at every tile
//! width (64/256/512 lanes) with event-driven propagation on; the
//! headline `packed` row uses the width selected by `PDF_SIM_WIDTH`
//! (default: auto-detected), and a `thread_scaling` row sweeps that
//! configuration over the real worker counts (1, 2, 4, … up to the
//! machine's fan-out) to expose the scaling curve. Run with
//! `--release` (ideally `RUSTFLAGS="-C target-cpu=native"` so the wide
//! tiles vectorize); circuit and workload can be overridden via
//! `PDF_BENCH_CIRCUIT`, `PDF_BENCH_TESTS`.

use std::time::Instant;

use pdf_atpg::{BudgetSpec, Justifier, RunBudget, SimBackend, SimOptions, SimWidth, TestSet};
use pdf_bench::setup;
use pdf_experiments::json::Json;

/// The optional `PDF_TIME_BUDGET` bound on the sampling loops. The budget
/// gates *harness repetitions*, never the simulation itself, so the
/// determinism cross-checks stay meaningful: an exhausted budget means
/// fewer samples, not different outcomes.
fn bench_budget() -> RunBudget {
    match BudgetSpec::from_env().unwrap_or_else(|e| panic!("{e}")) {
        Some(spec) => {
            let now = Instant::now();
            RunBudget::with_deadline(spec.deadline_for("bench", now, now))
        }
        None => RunBudget::unlimited(),
    }
}

fn measure(budget: &RunBudget, f: impl Fn() -> usize) -> (f64, usize) {
    // One warm-up, then the median-ish best of three timed runs. At least
    // one timed run always happens; the budget only trims extra samples.
    let detected = f();
    let mut best = f64::INFINITY;
    for sample in 0..3 {
        if sample > 0 && budget.exhausted() {
            eprintln!("warning: time budget exhausted after {sample} sample(s)");
            break;
        }
        let start = Instant::now();
        let again = f();
        assert_eq!(again, detected, "nondeterministic coverage");
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, detected)
}

fn main() {
    // Honor PDF_FAILPOINTS so chaos drills cover the bench binaries too.
    pdf_chaos::install_from_env().unwrap_or_else(|e| panic!("{e}"));
    let _telemetry = pdf_telemetry::Guard::from_env();
    let circuit_name = std::env::var("PDF_BENCH_CIRCUIT").unwrap_or_else(|_| "s9234*".to_owned());
    // Default workload: four full 512-lane blocks, so the widest tile is
    // measured saturated rather than half-empty.
    let n_tests: usize = pdf_experiments::env_parse("PDF_BENCH_TESTS").unwrap_or(2048);
    let opts = SimOptions::from_env().unwrap_or_else(|e| panic!("{e}"));

    // Abort on structural defects before the sampling loops spend any
    // budget (PDF_LINT=off skips, =warn reports without aborting).
    pdf_experiments::preflight_lint(&[circuit_name.as_str()]);
    let s = setup(&circuit_name, 2_000, 200);
    let mut justifier = Justifier::new(&s.circuit, 3).with_attempts(2);
    let base: Vec<_> = s
        .faults
        .iter()
        .filter_map(|e| justifier.justify(&e.assignments))
        .map(|j| j.test)
        .collect();
    assert!(!base.is_empty(), "no justifiable faults on {circuit_name}");
    let tests: TestSet = (0..n_tests).map(|i| base[i % base.len()].clone()).collect();

    let checks = (tests.len() * s.faults.len()) as f64;
    let budget = bench_budget();
    let coverage = |o: SimOptions| {
        tests
            .coverage_with(o, &s.circuit, &s.faults)
            .detected_count()
    };
    let (scalar_s, scalar_det) = measure(&budget, || coverage(SimBackend::Scalar.into()));

    // Every tile width, events on, full fan-out.
    let mut widths = Json::object();
    let mut width_rates = Vec::new();
    for width in SimWidth::ALL {
        let o = opts.with_backend(SimBackend::Packed).with_width(width);
        let (seconds, det) = measure(&budget, || coverage(o));
        assert_eq!(det, scalar_det, "width {width} disagrees with scalar");
        width_rates.push((width, checks / seconds));
        widths = widths.field(
            width.label(),
            Json::object()
                .field("seconds", seconds)
                .field("checks_per_sec", checks / seconds)
                .field("speedup_vs_scalar", scalar_s / seconds),
        );
    }

    // The headline packed row: the env-selected (default auto) width.
    let packed_opts = opts.with_backend(SimBackend::Packed);
    let (packed_s, packed_det) = measure(&budget, || coverage(packed_opts));
    assert_eq!(scalar_det, packed_det, "backends disagree on coverage");

    // Thread scaling: the same configuration swept over the actual
    // worker counts (1, 2, 4, … up to the machine's full fan-out), each
    // measured with `PDF_SIM_THREADS` pinned. The kernel re-reads the
    // variable on every fan-out, so the pin scopes to one measurement.
    let threads = pdf_sim::max_threads();
    let mut counts: Vec<usize> = std::iter::successors(Some(1_usize), |n| n.checked_mul(2))
        .take_while(|&n| n < threads)
        .collect();
    counts.push(threads);
    let saved_threads = std::env::var("PDF_SIM_THREADS").ok();
    let mut curve = Json::object();
    let mut curve_rates = Vec::new();
    let mut single_s = packed_s;
    let mut full_s = packed_s;
    for &n in &counts {
        std::env::set_var("PDF_SIM_THREADS", n.to_string());
        let (seconds, det) = measure(&budget, || coverage(packed_opts));
        assert_eq!(det, packed_det, "{n} thread(s) changed coverage");
        if n == 1 {
            single_s = seconds;
        }
        if n == threads {
            full_s = seconds;
        }
        curve_rates.push((n, checks / seconds));
        curve = curve.field(
            &n.to_string(),
            Json::object()
                .field("seconds", seconds)
                .field("checks_per_sec", checks / seconds)
                .field("scaling_vs_single", single_s / seconds),
        );
    }
    match saved_threads {
        Some(v) => std::env::set_var("PDF_SIM_THREADS", v),
        None => std::env::remove_var("PDF_SIM_THREADS"),
    }
    // Schema self-check: the headline `threads` count must be a point on
    // the emitted curve, so the row can never go stale against the
    // machine again.
    assert!(
        counts.contains(&threads),
        "thread_scaling curve omits the full fan-out ({threads} threads)"
    );

    let speedup = scalar_s / packed_s;
    println!(
        "sim_throughput {circuit_name}: {} tests x {} faults; scalar {:.3e} checks/s, \
         packed {:.3e} checks/s @ width {} ({} threads, events {}), speedup {speedup:.1}x, \
         thread scaling {:.1}x",
        tests.len(),
        s.faults.len(),
        checks / scalar_s,
        checks / packed_s,
        packed_opts.width.lanes(),
        threads,
        if packed_opts.events { "on" } else { "off" },
        single_s / full_s,
    );
    for (width, rate) in &width_rates {
        println!("  width {:>3}: {rate:.3e} checks/s", width.lanes());
    }
    for (n, rate) in &curve_rates {
        println!("  threads {n:>3}: {rate:.3e} checks/s");
    }

    let report = Json::object()
        .field("circuit", circuit_name.as_str())
        .field("lines", s.circuit.line_count())
        .field("tests", tests.len())
        .field("faults", s.faults.len())
        .field("detected", packed_det)
        .field(
            "scalar",
            Json::object()
                .field("seconds", scalar_s)
                .field("checks_per_sec", checks / scalar_s),
        )
        .field(
            "packed",
            Json::object()
                .field("seconds", packed_s)
                .field("checks_per_sec", checks / packed_s),
        )
        .field("width", packed_opts.width.lanes())
        .field("event_driven", packed_opts.events)
        .field("widths", widths)
        .field("speedup", speedup)
        .field("threads", threads)
        .field(
            "thread_scaling",
            Json::object()
                .field("threads", threads)
                .field("curve", curve)
                .field("scaling", single_s / full_s),
        );
    std::fs::write("BENCH_sim.json", report.to_pretty()).expect("cannot write BENCH_sim.json");
}
