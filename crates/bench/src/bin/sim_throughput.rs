//! Measures scalar vs packed fault-simulation throughput on the largest
//! bundled stand-in and writes the result to `BENCH_sim.json`.
//!
//! The figure of merit is *checks per second*: one check is one
//! (test, fault) requirement evaluation, so a full coverage pass performs
//! `tests × faults` of them. Run with `--release`; circuit and workload
//! can be overridden via `PDF_BENCH_CIRCUIT`, `PDF_BENCH_TESTS`.

use std::time::Instant;

use pdf_atpg::{BudgetSpec, Justifier, RunBudget, SimBackend, TestSet};
use pdf_bench::setup;
use pdf_experiments::json::Json;

/// The optional `PDF_TIME_BUDGET` bound on the sampling loops. The budget
/// gates *harness repetitions*, never the simulation itself, so the
/// determinism cross-checks stay meaningful: an exhausted budget means
/// fewer samples, not different outcomes.
fn bench_budget() -> RunBudget {
    match BudgetSpec::from_env().unwrap_or_else(|e| panic!("{e}")) {
        Some(spec) => {
            let now = Instant::now();
            RunBudget::with_deadline(spec.deadline_for("bench", now, now))
        }
        None => RunBudget::unlimited(),
    }
}

fn measure(budget: &RunBudget, f: impl Fn() -> usize) -> (f64, usize) {
    // One warm-up, then the median-ish best of three timed runs. At least
    // one timed run always happens; the budget only trims extra samples.
    let detected = f();
    let mut best = f64::INFINITY;
    for sample in 0..3 {
        if sample > 0 && budget.exhausted() {
            eprintln!("warning: time budget exhausted after {sample} sample(s)");
            break;
        }
        let start = Instant::now();
        let again = f();
        assert_eq!(again, detected, "nondeterministic coverage");
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, detected)
}

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let circuit_name = std::env::var("PDF_BENCH_CIRCUIT").unwrap_or_else(|_| "s9234*".to_owned());
    let n_tests: usize = pdf_experiments::env_parse("PDF_BENCH_TESTS").unwrap_or(256);

    // Abort on structural defects before the sampling loops spend any
    // budget (PDF_LINT=off skips, =warn reports without aborting).
    pdf_experiments::preflight_lint(&[circuit_name.as_str()]);
    let s = setup(&circuit_name, 2_000, 200);
    let mut justifier = Justifier::new(&s.circuit, 3).with_attempts(2);
    let base: Vec<_> = s
        .faults
        .iter()
        .filter_map(|e| justifier.justify(&e.assignments))
        .map(|j| j.test)
        .collect();
    assert!(!base.is_empty(), "no justifiable faults on {circuit_name}");
    let tests: TestSet = (0..n_tests).map(|i| base[i % base.len()].clone()).collect();

    let checks = (tests.len() * s.faults.len()) as f64;
    let budget = bench_budget();
    let (scalar_s, scalar_det) = measure(&budget, || {
        tests
            .coverage_with(SimBackend::Scalar, &s.circuit, &s.faults)
            .detected_count()
    });
    let (packed_s, packed_det) = measure(&budget, || {
        tests
            .coverage_with(SimBackend::Packed, &s.circuit, &s.faults)
            .detected_count()
    });
    assert_eq!(scalar_det, packed_det, "backends disagree on coverage");

    let speedup = scalar_s / packed_s;
    println!(
        "sim_throughput {circuit_name}: {} tests x {} faults; scalar {:.3e} checks/s, \
         packed {:.3e} checks/s, speedup {speedup:.1}x",
        tests.len(),
        s.faults.len(),
        checks / scalar_s,
        checks / packed_s,
    );

    let report = Json::object()
        .field("circuit", circuit_name.as_str())
        .field("lines", s.circuit.line_count())
        .field("tests", tests.len())
        .field("faults", s.faults.len())
        .field("detected", packed_det)
        .field(
            "scalar",
            Json::object()
                .field("seconds", scalar_s)
                .field("checks_per_sec", checks / scalar_s),
        )
        .field(
            "packed",
            Json::object()
                .field("seconds", packed_s)
                .field("checks_per_sec", checks / packed_s),
        )
        .field("speedup", speedup)
        .field("threads", pdf_sim::max_threads());
    std::fs::write("BENCH_sim.json", report.to_pretty()).expect("cannot write BENCH_sim.json");
}
