//! Measures scalar vs packed *justification* throughput on the largest
//! bundled stand-in and writes the result to `BENCH_justify.json`.
//!
//! The figure of merit is *attempts per second*: one attempt is one fully
//! specified random completion of the necessary-value fixpoint, evaluated
//! through the requirement cone. The packed backend evaluates up to its
//! tile width of them per cone simulation (the width comes from
//! `PDF_SIM_WIDTH`, default auto-detected); the scalar oracle simulates
//! each individually (stopping early at the first hit, which the count
//! reflects). Both engines draw identical random fill words, so they find
//! the same tests for the same faults — asserted below.
//!
//! With event-driven propagation on (the default), each completion pass
//! re-evaluates only the lines whose input rails actually changed; the
//! `events` block reports how small that slice of the circuit is.
//!
//! Run with `--release`; circuit and workload can be overridden via
//! `PDF_BENCH_CIRCUIT`, `PDF_BENCH_TESTS` (justification calls here).

use std::time::Instant;

use pdf_atpg::{BudgetSpec, Justifier, JustifyStats, RunBudget, SimBackend, SimOptions};
use pdf_bench::setup;
use pdf_experiments::json::Json;

/// The optional `PDF_TIME_BUDGET` bound on the sampling loops. The budget
/// gates *harness repetitions*, never the justifier itself, so the
/// determinism cross-checks stay meaningful: an exhausted budget means
/// fewer samples, not different outcomes.
fn bench_budget() -> RunBudget {
    match BudgetSpec::from_env().unwrap_or_else(|e| panic!("{e}")) {
        Some(spec) => {
            let now = Instant::now();
            RunBudget::with_deadline(spec.deadline_for("bench", now, now))
        }
        None => RunBudget::unlimited(),
    }
}

struct Measured {
    /// Wall time of the best full run.
    total_seconds: f64,
    /// Completion-phase time within that run.
    completion_seconds: f64,
    found: usize,
    stats: JustifyStats,
}

fn measure(budget: &RunBudget, mut f: impl FnMut() -> (usize, JustifyStats, f64)) -> Measured {
    // One warm-up, then the best of three timed runs. At least one timed
    // run always happens; the budget only trims the extra samples.
    let (found, _, _) = f();
    let mut best = Measured {
        total_seconds: f64::INFINITY,
        completion_seconds: f64::INFINITY,
        found,
        stats: JustifyStats::default(),
    };
    for sample in 0..3 {
        if sample > 0 && budget.exhausted() {
            eprintln!("warning: time budget exhausted after {sample} sample(s)");
            break;
        }
        let start = Instant::now();
        let (again, stats, completion_seconds) = f();
        assert_eq!(again, found, "nondeterministic justification");
        let total_seconds = start.elapsed().as_secs_f64();
        if total_seconds < best.total_seconds {
            best = Measured {
                total_seconds,
                completion_seconds,
                found,
                stats,
            };
        }
    }
    best
}

fn main() {
    // Honor PDF_FAILPOINTS so chaos drills cover the bench binaries too.
    pdf_chaos::install_from_env().unwrap_or_else(|e| panic!("{e}"));
    let _telemetry = pdf_telemetry::Guard::from_env();
    let circuit_name = std::env::var("PDF_BENCH_CIRCUIT").unwrap_or_else(|_| "s9234*".to_owned());
    let n_calls: usize = pdf_experiments::env_parse("PDF_BENCH_TESTS").unwrap_or(256);
    let opts = SimOptions::from_env().unwrap_or_else(|e| panic!("{e}"));

    // Abort on structural defects before the sampling loops spend any
    // budget (PDF_LINT=off skips, =warn reports without aborting).
    pdf_experiments::preflight_lint(&[circuit_name.as_str()]);
    let s = setup(&circuit_name, 2_000, 200);
    let entries: Vec<_> = s.faults.iter().collect();
    assert!(!entries.is_empty(), "no faults on {circuit_name}");
    let run = |o: SimOptions| {
        let entries = &entries;
        let circuit = &s.circuit;
        move || {
            let mut justifier = Justifier::new(circuit, 3).with_attempts(4).with_options(o);
            let mut found = 0usize;
            for call in 0..n_calls {
                // Every requirement set is visited twice in a row, so a
                // healthy cone cache shows a ~50% hit rate.
                let entry = entries[call / 2 % entries.len()];
                found += usize::from(justifier.justify(&entry.assignments).is_some());
            }
            (found, justifier.stats(), justifier.completion_seconds())
        }
    };

    let packed_opts = opts.with_backend(SimBackend::Packed);
    let budget = bench_budget();
    let scalar = measure(&budget, run(opts.with_backend(SimBackend::Scalar)));
    let packed = measure(&budget, run(packed_opts));
    assert_eq!(scalar.found, packed.found, "backends disagree on outcomes");

    // Attempts/sec of the completion engines themselves; the phases
    // around them (necessary-value fixpoint, guided fallback) are
    // backend-independent and would only dilute the comparison.
    let scalar_rate = scalar.stats.completion_attempts as f64 / scalar.completion_seconds;
    let packed_rate = packed.stats.completion_attempts as f64 / packed.completion_seconds;
    let speedup = packed_rate / scalar_rate;
    let cache_total = packed.stats.cone_hits + packed.stats.cone_misses;
    let hit_rate = packed.stats.cone_hits as f64 / cache_total.max(1) as f64;
    // Event economy: lines actually evaluated per completion pass, as an
    // absolute count and as a fraction of the whole circuit. Narrow-cone
    // calls with most pins frozen should keep the fraction well under
    // one even though passes repeat over the same cone.
    let blocks = packed.stats.packed_blocks.max(1) as f64;
    let events_per_block = packed.stats.events_propagated as f64 / blocks;
    let lines_fraction = events_per_block / s.circuit.line_count() as f64;
    println!(
        "justify_throughput {circuit_name}: {n_calls} calls, {} justified; \
         scalar {scalar_rate:.3e} attempts/s, packed {packed_rate:.3e} attempts/s \
         @ width {} (events {}), speedup {speedup:.1}x, cone-cache hit rate {:.0}%, \
         {events_per_block:.0} lines/block ({:.1}% of circuit), \
         end-to-end {:.2}s -> {:.2}s",
        packed.found,
        packed_opts.width.lanes(),
        if packed_opts.events { "on" } else { "off" },
        hit_rate * 100.0,
        lines_fraction * 100.0,
        scalar.total_seconds,
        packed.total_seconds,
    );

    let backend_json = |m: &Measured| {
        Json::object()
            .field("seconds", m.completion_seconds)
            .field("total_seconds", m.total_seconds)
            .field("attempts", m.stats.completion_attempts)
            .field(
                "attempts_per_sec",
                m.stats.completion_attempts as f64 / m.completion_seconds,
            )
    };
    let report = Json::object()
        .field("circuit", circuit_name.as_str())
        .field("lines", s.circuit.line_count())
        .field("calls", n_calls)
        .field("justified", packed.found)
        .field("scalar", backend_json(&scalar))
        .field(
            "packed",
            backend_json(&packed).field("blocks", packed.stats.packed_blocks),
        )
        .field("width", packed_opts.width.lanes())
        .field("event_driven", packed_opts.events)
        .field("speedup", speedup)
        .field(
            "events",
            Json::object()
                .field("events_propagated", packed.stats.events_propagated)
                .field("lines_skipped", packed.stats.lines_skipped)
                .field("events_per_block", events_per_block)
                .field("lines_fraction", lines_fraction),
        )
        .field(
            "cone_cache",
            Json::object()
                .field("hits", packed.stats.cone_hits)
                .field("misses", packed.stats.cone_misses)
                .field("hit_rate", hit_rate),
        );
    std::fs::write("BENCH_justify.json", report.to_pretty())
        .expect("cannot write BENCH_justify.json");
}
