//! Measures scalar vs packed *justification* throughput on the largest
//! bundled stand-in and writes the result to `BENCH_justify.json`.
//!
//! The figure of merit is *attempts per second*: one attempt is one fully
//! specified random completion of the necessary-value fixpoint, evaluated
//! through the requirement cone. The packed backend evaluates 64 of them
//! per cone simulation; the scalar oracle simulates each individually
//! (stopping early at the first hit, which the count reflects). Both
//! backends draw identical random fill words, so they find tests for the
//! same faults — asserted below.
//!
//! Run with `--release`; circuit and workload can be overridden via
//! `PDF_BENCH_CIRCUIT`, `PDF_BENCH_TESTS` (justification calls here).

use std::time::Instant;

use pdf_atpg::{BudgetSpec, Justifier, JustifyStats, RunBudget, SimBackend};
use pdf_bench::setup;
use pdf_experiments::json::Json;

/// The optional `PDF_TIME_BUDGET` bound on the sampling loops. The budget
/// gates *harness repetitions*, never the justifier itself, so the
/// determinism cross-checks stay meaningful: an exhausted budget means
/// fewer samples, not different outcomes.
fn bench_budget() -> RunBudget {
    match BudgetSpec::from_env().unwrap_or_else(|e| panic!("{e}")) {
        Some(spec) => {
            let now = Instant::now();
            RunBudget::with_deadline(spec.deadline_for("bench", now, now))
        }
        None => RunBudget::unlimited(),
    }
}

struct Measured {
    /// Wall time of the best full run.
    total_seconds: f64,
    /// Completion-phase time within that run.
    completion_seconds: f64,
    found: usize,
    stats: JustifyStats,
}

fn measure(budget: &RunBudget, mut f: impl FnMut() -> (usize, JustifyStats, f64)) -> Measured {
    // One warm-up, then the best of three timed runs. At least one timed
    // run always happens; the budget only trims the extra samples.
    let (found, _, _) = f();
    let mut best = Measured {
        total_seconds: f64::INFINITY,
        completion_seconds: f64::INFINITY,
        found,
        stats: JustifyStats::default(),
    };
    for sample in 0..3 {
        if sample > 0 && budget.exhausted() {
            eprintln!("warning: time budget exhausted after {sample} sample(s)");
            break;
        }
        let start = Instant::now();
        let (again, stats, completion_seconds) = f();
        assert_eq!(again, found, "nondeterministic justification");
        let total_seconds = start.elapsed().as_secs_f64();
        if total_seconds < best.total_seconds {
            best = Measured {
                total_seconds,
                completion_seconds,
                found,
                stats,
            };
        }
    }
    best
}

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let circuit_name = std::env::var("PDF_BENCH_CIRCUIT").unwrap_or_else(|_| "s9234*".to_owned());
    let n_calls: usize = pdf_experiments::env_parse("PDF_BENCH_TESTS").unwrap_or(256);

    // Abort on structural defects before the sampling loops spend any
    // budget (PDF_LINT=off skips, =warn reports without aborting).
    pdf_experiments::preflight_lint(&[circuit_name.as_str()]);
    let s = setup(&circuit_name, 2_000, 200);
    let entries: Vec<_> = s.faults.iter().collect();
    assert!(!entries.is_empty(), "no faults on {circuit_name}");
    let run = |backend: SimBackend| {
        let entries = &entries;
        let circuit = &s.circuit;
        move || {
            let mut justifier = Justifier::new(circuit, 3)
                .with_attempts(4)
                .with_backend(backend);
            let mut found = 0usize;
            for call in 0..n_calls {
                // Every requirement set is visited twice in a row, so a
                // healthy cone cache shows a ~50% hit rate.
                let entry = entries[call / 2 % entries.len()];
                found += usize::from(justifier.justify(&entry.assignments).is_some());
            }
            (found, justifier.stats(), justifier.completion_seconds())
        }
    };

    let budget = bench_budget();
    let scalar = measure(&budget, run(SimBackend::Scalar));
    let packed = measure(&budget, run(SimBackend::Packed));
    assert_eq!(scalar.found, packed.found, "backends disagree on outcomes");

    // Attempts/sec of the completion engines themselves; the phases
    // around them (necessary-value fixpoint, guided fallback) are
    // backend-independent and would only dilute the comparison.
    let scalar_rate = scalar.stats.completion_attempts as f64 / scalar.completion_seconds;
    let packed_rate = packed.stats.completion_attempts as f64 / packed.completion_seconds;
    let speedup = packed_rate / scalar_rate;
    let cache_total = packed.stats.cone_hits + packed.stats.cone_misses;
    let hit_rate = packed.stats.cone_hits as f64 / cache_total.max(1) as f64;
    println!(
        "justify_throughput {circuit_name}: {n_calls} calls, {} justified; \
         scalar {scalar_rate:.3e} attempts/s, packed {packed_rate:.3e} attempts/s, \
         speedup {speedup:.1}x, cone-cache hit rate {:.0}%, \
         end-to-end {:.2}s -> {:.2}s",
        packed.found,
        hit_rate * 100.0,
        scalar.total_seconds,
        packed.total_seconds,
    );

    let backend_json = |m: &Measured| {
        Json::object()
            .field("seconds", m.completion_seconds)
            .field("total_seconds", m.total_seconds)
            .field("attempts", m.stats.completion_attempts)
            .field(
                "attempts_per_sec",
                m.stats.completion_attempts as f64 / m.completion_seconds,
            )
    };
    let report = Json::object()
        .field("circuit", circuit_name.as_str())
        .field("lines", s.circuit.line_count())
        .field("calls", n_calls)
        .field("justified", packed.found)
        .field("scalar", backend_json(&scalar))
        .field(
            "packed",
            backend_json(&packed).field("blocks", packed.stats.packed_blocks),
        )
        .field("speedup", speedup)
        .field(
            "cone_cache",
            Json::object()
                .field("hits", packed.stats.cone_hits)
                .field("misses", packed.stats.cone_misses)
                .field("hit_rate", hit_rate),
        );
    std::fs::write("BENCH_justify.json", report.to_pretty())
        .expect("cannot write BENCH_justify.json");
}
