//! Profiling aid for the packed kernel: splits coverage time into the
//! propagation (`load`) half and the requirement-check
//! (`satisfied_lanes`) half at every tile width × event mode, and times
//! the steady-state identical re-load (input transpose + skip sweep
//! alone). Not part of the published bench schemas — use it to see where
//! a width stops paying on a given machine.

use std::time::Instant;

use pdf_atpg::{Justifier, TestSet};
use pdf_bench::setup;
use pdf_sim::{PackedBlock, SimWord};

fn profile<W: SimWord>(s: &pdf_bench::BenchSetup, tests: &TestSet, events: bool) {
    let tests = tests.tests();
    let faults: Vec<_> = s.faults.iter().collect();
    let blocks: Vec<&[pdf_netlist::TwoPattern]> = tests.chunks(W::LANES).collect();

    // Load (propagation) only.
    let mut block = PackedBlock::<W>::new().with_events(events);
    let t0 = Instant::now();
    let mut reps = 0u32;
    while t0.elapsed().as_secs_f64() < 1.0 {
        for b in &blocks {
            block.load(&s.circuit, b);
        }
        reps += 1;
    }
    let load_s = t0.elapsed().as_secs_f64() / reps as f64;

    // Load + satisfied_lanes over every fault.
    let mut block = PackedBlock::<W>::new().with_events(events);
    let t0 = Instant::now();
    let mut reps = 0u32;
    let mut sink = 0u64;
    while t0.elapsed().as_secs_f64() < 1.0 {
        for b in &blocks {
            block.load(&s.circuit, b);
            for f in &faults {
                sink =
                    sink.wrapping_add(u64::from(!block.satisfied_lanes(&f.assignments).is_zero()));
            }
        }
        reps += 1;
    }
    let full_s = t0.elapsed().as_secs_f64() / reps as f64;
    let checks = (tests.len() * faults.len()) as f64;
    println!(
        "width {:>3} events {:>5}: load {:>8.2} ms, checks {:>8.2} ms, total {:>8.2} ms, {:.3e} checks/s (sink {sink})",
        W::LANES,
        events,
        load_s * 1e3,
        (full_s - load_s) * 1e3,
        full_s * 1e3,
        checks / full_s,
    );
}

/// Times a steady-state identical re-load (events on): propagation skips
/// every line, so this is input rebuild + the stamp sweep alone.
fn reload<W: SimWord>(s: &pdf_bench::BenchSetup, tests: &TestSet) {
    let tests = tests.tests();
    let block_tests = &tests[..W::LANES.min(tests.len())];
    let mut block = PackedBlock::<W>::new();
    block.load(&s.circuit, block_tests);
    let t0 = Instant::now();
    let mut reps = 0u32;
    while t0.elapsed().as_secs_f64() < 1.0 {
        block.load(&s.circuit, block_tests);
        reps += 1;
    }
    let per = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "width {:>3} identical reload: {:>10.2} us/block ({:.2} us per 64-lane group)",
        W::LANES,
        per * 1e6,
        per * 1e6 * 64.0 / W::LANES as f64,
    );
}

fn main() {
    // Honor PDF_FAILPOINTS so chaos drills cover the bench binaries too.
    pdf_chaos::install_from_env().unwrap_or_else(|e| panic!("{e}"));
    let circuit_name = std::env::var("PDF_BENCH_CIRCUIT").unwrap_or_else(|_| "s9234*".to_owned());
    let n_tests: usize = pdf_experiments::env_parse("PDF_BENCH_TESTS").unwrap_or(2048);
    let s = setup(&circuit_name, 2_000, 200);
    let mut justifier = Justifier::new(&s.circuit, 3).with_attempts(2);
    let base: Vec<_> = s
        .faults
        .iter()
        .filter_map(|e| justifier.justify(&e.assignments))
        .map(|j| j.test)
        .collect();
    let tests: TestSet = (0..n_tests).map(|i| base[i % base.len()].clone()).collect();
    println!(
        "{circuit_name}: {} lines, {} tests, {} faults",
        s.circuit.line_count(),
        tests.len(),
        s.faults.len()
    );
    reload::<u64>(&s, &tests);
    reload::<[u64; 4]>(&s, &tests);
    reload::<[u64; 8]>(&s, &tests);
    for events in [true, false] {
        profile::<u64>(&s, &tests, events);
        profile::<[u64; 4]>(&s, &tests, events);
        profile::<[u64; 8]>(&s, &tests, events);
    }
}
