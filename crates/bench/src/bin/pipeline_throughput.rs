//! Measures parallel test-generation wall-clock scaling on the largest
//! bundled stand-in and writes the result to `BENCH_pipeline.json`.
//!
//! The figure of merit is the end-to-end enrichment-generation time at
//! 1/2/4/8 worker threads over the same fault population. Every pooled
//! run is asserted byte-identical to the single-threaded reference (test
//! text, detection counts, justification counters) before its time is
//! recorded — a scaling number from a run that diverged would be
//! meaningless. The report also records the auto-selected packed tile
//! width alongside a per-width coverage timing of the generated test
//! set, so the width calibration is auditable from the same artifact.
//! Run with `--release` (ideally `RUSTFLAGS="-C target-cpu=native"`);
//! circuit and workload can be overridden via `PDF_BENCH_CIRCUIT`,
//! `PDF_BENCH_NP`, `PDF_BENCH_NP0`.

use std::time::Instant;

use pdf_atpg::{
    AtpgConfig, BudgetSpec, EnrichmentAtpg, RunBudget, SimBackend, SimOptions, SimWidth,
};
use pdf_bench::setup;
use pdf_experiments::json::Json;

/// The optional `PDF_TIME_BUDGET` bound on the sampling loops. The budget
/// gates *harness repetitions*, never the generation itself: an exhausted
/// budget means fewer samples, not different outcomes.
fn bench_budget() -> RunBudget {
    match BudgetSpec::from_env().unwrap_or_else(|e| panic!("{e}")) {
        Some(spec) => {
            let now = Instant::now();
            RunBudget::with_deadline(spec.deadline_for("bench", now, now))
        }
        None => RunBudget::unlimited(),
    }
}

/// One warm-up, then the best of up to two timed runs; the budget only
/// trims the extra sample.
fn measure<R>(budget: &RunBudget, f: impl Fn() -> R) -> (f64, R) {
    let mut result = f();
    let mut best = f64::INFINITY;
    for sample in 0..2 {
        if sample > 0 && budget.exhausted() {
            eprintln!("warning: time budget exhausted after {sample} sample(s)");
            break;
        }
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    // Honor PDF_FAILPOINTS so chaos drills cover the bench binaries too.
    pdf_chaos::install_from_env().unwrap_or_else(|e| panic!("{e}"));
    let _telemetry = pdf_telemetry::Guard::from_env();
    let circuit_name = std::env::var("PDF_BENCH_CIRCUIT").unwrap_or_else(|_| "s9234*".to_owned());
    let n_p: usize = pdf_experiments::env_parse("PDF_BENCH_NP").unwrap_or(2_000);
    let n_p0: usize = pdf_experiments::env_parse("PDF_BENCH_NP0").unwrap_or(200);
    let sim = SimOptions::from_env().unwrap_or_else(|e| panic!("{e}"));

    pdf_experiments::preflight_lint(&[circuit_name.as_str()]);
    let s = setup(&circuit_name, n_p, n_p0);
    let budget = bench_budget();

    let generate = |threads: usize| {
        let config = AtpgConfig {
            sim,
            threads,
            ..AtpgConfig::default()
        };
        EnrichmentAtpg::new(&s.circuit)
            .with_config(config)
            .run(&s.split)
    };

    // The single-threaded reference: every pooled run must reproduce it
    // byte for byte before its wall-clock counts.
    let (serial_s, reference) = measure(&budget, || generate(1));
    let reference_text = reference.tests().to_text();

    let mut curve = Json::object();
    let mut curve_rows = vec![(1_usize, serial_s)];
    for threads in [2_usize, 4, 8] {
        let (seconds, outcome) = measure(&budget, || generate(threads));
        assert_eq!(
            outcome.tests().to_text(),
            reference_text,
            "{threads}-thread test set diverged from the serial reference"
        );
        assert_eq!(
            outcome.detected_total(),
            reference.detected_total(),
            "{threads}-thread detection diverged"
        );
        assert_eq!(
            outcome.stats().justify,
            reference.stats().justify,
            "{threads}-thread justification counters diverged"
        );
        curve_rows.push((threads, seconds));
    }
    let mut speedup_at_4 = 1.0;
    for &(threads, seconds) in &curve_rows {
        let speedup = serial_s / seconds;
        if threads == 4 {
            speedup_at_4 = speedup;
        }
        curve = curve.field(
            &threads.to_string(),
            Json::object()
                .field("seconds", seconds)
                .field("speedup_vs_single", speedup),
        );
    }

    // Width calibration row: coverage of the generated test set at every
    // packed tile width, plus the width `auto` resolved to.
    let tests = reference.tests();
    let mut per_width = Json::object();
    for width in SimWidth::ALL {
        let o = sim.with_backend(SimBackend::Packed).with_width(width);
        let (seconds, det) = measure(&budget, || {
            tests
                .coverage_with(o, &s.circuit, &s.faults)
                .detected_count()
        });
        assert_eq!(det, reference.detected_total(), "width {width} disagrees");
        per_width = per_width.field(width.label(), Json::object().field("seconds", seconds));
    }

    println!(
        "pipeline_throughput {circuit_name}: {} faults, {} tests; 1t {serial_s:.3}s, \
         4t speedup {speedup_at_4:.2}x, auto width {}",
        s.faults.len(),
        tests.len(),
        SimWidth::auto().lanes(),
    );
    for &(threads, seconds) in &curve_rows {
        println!(
            "  threads {threads}: {seconds:.3}s ({:.2}x)",
            serial_s / seconds
        );
    }

    // Scaling is bounded by the machine: a 1-core runner records ~1x at
    // every count, so the curve is only meaningful next to `cores`.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let report = Json::object()
        .field("schema", "pdf-bench-pipeline")
        .field("circuit", circuit_name.as_str())
        .field("cores", cores)
        .field("lines", s.circuit.line_count())
        .field("faults", s.faults.len())
        .field("tests", tests.len())
        .field("detected", reference.detected_total())
        .field("threads_curve", curve)
        .field("speedup_at_4", speedup_at_4)
        .field("auto_width", SimWidth::auto().lanes())
        .field("width", sim.width.lanes())
        .field("per_width", per_width);
    std::fs::write("BENCH_pipeline.json", report.to_pretty())
        .expect("cannot write BENCH_pipeline.json");
}
