//! Shared setup helpers for the Criterion benchmarks.
//!
//! Benchmarks run on reduced workloads (small enumeration caps, the
//! smaller stand-in circuits) so that Criterion's repeated sampling stays
//! tractable; the full-scale numbers come from
//! `cargo run --release -p pdf-experiments --bin all_tables`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pdf_atpg::TargetSplit;
use pdf_faults::FaultList;
use pdf_netlist::Circuit;
use pdf_paths::PathEnumerator;

/// A circuit with its enumerated faults and P0/P1 split, sized for
/// benchmarking.
#[derive(Debug)]
pub struct BenchSetup {
    /// The circuit.
    pub circuit: Circuit,
    /// The detectable fault population.
    pub faults: FaultList,
    /// The target split.
    pub split: TargetSplit,
}

/// Prepares `name` with a reduced cap (`n_p` faults) and `n_p0` split
/// threshold.
///
/// # Panics
///
/// Panics if `name` is not a known benchmark stand-in.
#[must_use]
pub fn setup(name: &str, n_p: usize, n_p0: usize) -> BenchSetup {
    let circuit = if name == "s27" {
        pdf_netlist::iscas::s27()
    } else {
        pdf_netlist::stand_in_profile(name)
            .unwrap_or_else(|| panic!("unknown circuit {name}"))
            .generate()
            .to_circuit()
            .expect("stand-ins are combinational")
    };
    let enumeration = PathEnumerator::new(&circuit).with_cap(n_p).enumerate();
    let (faults, _) = FaultList::build(&circuit, &enumeration.store);
    let split = TargetSplit::by_cumulative_length(&faults, n_p0);
    BenchSetup {
        circuit,
        faults,
        split,
    }
}
