//! Deterministic failpoint injection for the ATPG pipeline.
//!
//! A failpoint is a named site in the codebase (a checkpoint write, a
//! netlist read, a worker build) where a fault can be injected on demand:
//! a transient I/O error, a persistent I/O error, a torn (truncated)
//! write, or a panic. The active set of failpoints is a [`FailpointSpec`]
//! parsed from `PDF_FAILPOINTS` (or the `--failpoints` flag), e.g.
//!
//! ```text
//! PDF_FAILPOINTS=checkpoint.write:io@3,telemetry.flush:torn@7
//! ```
//!
//! Every entry is `site:kind@N`. Injection is *deterministic*: an ordinal
//! entry fires on exactly the `N`th evaluation of its site (`full` fires
//! on every evaluation from the `N`th onward), and a keyed entry fires
//! whenever the caller-supplied key equals `N` — no randomness, no clocks,
//! so an injected run is reproducible bit for bit. Torn-write prefix
//! lengths are derived from a SplitMix64 hash of the site and ordinal,
//! again deterministic.
//!
//! The crate is dependency-free (pure `std`) so every other crate in the
//! workspace — including `pdf-telemetry` — can depend on it without
//! cycles. It deliberately does *not* count telemetry itself; call sites
//! bump `failpoints_hit` / `io_retries` when an evaluation fires.
//!
//! The second half of the crate is [`with_retry`]: a bounded
//! retry-with-exponential-backoff helper for transient I/O errors,
//! configured by `PDF_IO_RETRY` (strict parse, `attempts[@backoff]`).

#![forbid(unsafe_code)]

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// The environment twin of the `--failpoints` flag.
pub const FAILPOINTS_ENV: &str = "PDF_FAILPOINTS";
/// The retry-policy knob consumed by [`RetryPolicy::from_env`].
pub const IO_RETRY_ENV: &str = "PDF_IO_RETRY";

/// Every registered failpoint site. Specs naming any other site are
/// rejected at parse time so a typo'd site fails fast instead of
/// silently never firing.
pub mod sites {
    /// Checkpoint file writes ([`pdf-runctl`]'s atomic write path).
    pub const CHECKPOINT_WRITE: &str = "checkpoint.write";
    /// Checkpoint file reads.
    pub const CHECKPOINT_READ: &str = "checkpoint.read";
    /// Telemetry report writes (`RunReport::write` / guard drop).
    pub const TELEMETRY_FLUSH: &str = "telemetry.flush";
    /// Netlist file reads in the CLI.
    pub const NETLIST_READ: &str = "netlist.read";
    /// Worker-side test-cube builds (keyed by fault index; a firing
    /// entry panics the build, feeding the quarantine path).
    pub const POOL_BUILD: &str = "pool.build";
    /// All known sites, for validation and docs.
    pub const ALL: [&str; 5] = [
        CHECKPOINT_WRITE,
        CHECKPOINT_READ,
        TELEMETRY_FLUSH,
        NETLIST_READ,
        POOL_BUILD,
    ];
}

/// What a firing failpoint injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient `io::Error` (`ErrorKind::Interrupted`) — retryable.
    Io,
    /// A persistent `io::Error` that fires on every evaluation from the
    /// `N`th onward — models a full disk or revoked permissions.
    Full,
    /// A torn write/read: only a deterministic strict prefix of the
    /// payload goes through, and the operation reports success.
    Torn,
    /// A panic at the site.
    Panic,
}

impl FaultKind {
    /// The grammar keyword for this kind.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::Full => "full",
            FaultKind::Torn => "torn",
            FaultKind::Panic => "panic",
        }
    }

    fn parse(text: &str) -> Option<FaultKind> {
        match text {
            "io" => Some(FaultKind::Io),
            "full" => Some(FaultKind::Full),
            "torn" => Some(FaultKind::Torn),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }
}

/// One `site:kind@N` entry of a failpoint spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailpointEntry {
    /// The site this entry arms (one of [`sites::ALL`]).
    pub site: String,
    /// What to inject when it fires.
    pub kind: FaultKind,
    /// The 1-based ordinal (or key value) on which it fires.
    pub n: u64,
}

impl fmt::Display for FailpointEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.site, self.kind.label(), self.n)
    }
}

/// A parsed, validated failpoint specification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailpointSpec {
    /// The entries in spec order; the first firing entry for a site wins.
    pub entries: Vec<FailpointEntry>,
}

impl fmt::Display for FailpointSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{entry}")?;
        }
        Ok(())
    }
}

impl FailpointSpec {
    /// Parses a comma-separated `site:kind@N` list. The parse is strict:
    /// unknown sites or kinds, missing separators, and zero or
    /// non-numeric ordinals are all errors.
    pub fn parse(text: &str) -> Result<FailpointSpec, String> {
        let text = text.trim();
        if text.is_empty() {
            return Err("failpoints: empty spec".to_owned());
        }
        let mut entries = Vec::new();
        for raw in text.split(',') {
            let raw = raw.trim();
            let (head, ordinal) = raw
                .rsplit_once('@')
                .ok_or_else(|| format!("failpoints: `{raw}` is missing `@N`"))?;
            let (site, kind_text) = head
                .rsplit_once(':')
                .ok_or_else(|| format!("failpoints: `{raw}` is missing `:kind`"))?;
            if !sites::ALL.contains(&site) {
                return Err(format!(
                    "failpoints: unknown site `{site}` (known: {})",
                    sites::ALL.join(", ")
                ));
            }
            let kind = FaultKind::parse(kind_text)
                .ok_or_else(|| format!("failpoints: unknown kind `{kind_text}` in `{raw}`"))?;
            let n: u64 = ordinal
                .parse()
                .map_err(|_| format!("failpoints: `{ordinal}` is not an ordinal in `{raw}`"))?;
            if n == 0 {
                return Err(format!("failpoints: ordinal must be >= 1 in `{raw}`"));
            }
            entries.push(FailpointEntry {
                site: site.to_owned(),
                kind,
                n,
            });
        }
        Ok(FailpointSpec { entries })
    }

    /// Reads `PDF_FAILPOINTS`; `Ok(None)` when unset.
    pub fn from_env() -> Result<Option<FailpointSpec>, String> {
        match std::env::var(FAILPOINTS_ENV) {
            Ok(text) => FailpointSpec::parse(&text)
                .map(Some)
                .map_err(|e| format!("{FAILPOINTS_ENV}: {e}")),
            Err(_) => Ok(None),
        }
    }
}

/// One armed entry with its evaluation counter.
#[derive(Clone, Debug)]
struct ArmedEntry {
    site: String,
    kind: FaultKind,
    n: u64,
    evals: u64,
}

/// Process-global registry. The `ACTIVE` flag is a lock-free fast path
/// so un-armed hot sites (worker builds) pay one relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<ArmedEntry>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<ArmedEntry>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `spec`, replacing any previous installation and resetting
/// all evaluation counters (each installation is an isolated scenario).
pub fn install(spec: &FailpointSpec) {
    let mut armed = registry();
    armed.clear();
    armed.extend(spec.entries.iter().map(|e| ArmedEntry {
        site: e.site.clone(),
        kind: e.kind,
        n: e.n,
        evals: 0,
    }));
    ACTIVE.store(!armed.is_empty(), Ordering::Release);
}

/// Installs the `PDF_FAILPOINTS` spec if set. Returns whether a spec was
/// installed; a malformed value is an error (strict-knob convention).
pub fn install_from_env() -> Result<bool, String> {
    match FailpointSpec::from_env()? {
        Some(spec) => {
            install(&spec);
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Disarms every failpoint.
pub fn clear() {
    let mut armed = registry();
    armed.clear();
    ACTIVE.store(false, Ordering::Release);
}

/// Whether any failpoint is currently armed.
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// A fault to inject, returned by a firing evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Fail with a transient (retryable) error.
    Transient,
    /// Fail with a persistent error.
    Persistent,
    /// Write/read only a strict prefix and report success; `seed` drives
    /// the deterministic prefix length via [`Injection::torn_len`].
    Torn {
        /// Deterministic per-firing seed.
        seed: u64,
    },
    /// Panic at the site.
    Panic,
}

impl Injection {
    /// The `io::Error` this injection stands for, or `None` for
    /// torn/panic injections.
    #[must_use]
    pub fn error(&self) -> Option<io::Error> {
        match self {
            Injection::Transient => Some(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient failure (pdf-chaos)",
            )),
            Injection::Persistent => {
                Some(io::Error::other("injected persistent failure (pdf-chaos)"))
            }
            Injection::Torn { .. } | Injection::Panic => None,
        }
    }

    /// The deterministic torn-prefix length for a payload of `full`
    /// bytes: always a strict prefix (`< full` whenever `full > 0`).
    #[must_use]
    pub fn torn_len(&self, full: usize) -> usize {
        match self {
            Injection::Torn { seed } if full > 0 => {
                usize::try_from(seed % full as u64).unwrap_or(0)
            }
            _ => 0,
        }
    }
}

/// SplitMix64 — the same finalizer the generator uses for build seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn site_hash(site: &str) -> u64 {
    site.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

fn injection_for(entry: &ArmedEntry, ordinal: u64) -> Injection {
    match entry.kind {
        FaultKind::Io => Injection::Transient,
        FaultKind::Full => Injection::Persistent,
        FaultKind::Torn => Injection::Torn {
            seed: splitmix64(site_hash(&entry.site) ^ entry.n ^ ordinal.rotate_left(17)),
        },
        FaultKind::Panic => Injection::Panic,
    }
}

/// Ordinal evaluation: the `N`th call for a site fires its entry
/// (`full` entries fire on every call from the `N`th onward). Intended
/// for serially-evaluated sites — checkpoint and report I/O happen on
/// the driver thread, so their ordinals are schedule-independent.
pub fn evaluate(site: &str) -> Option<Injection> {
    if !is_active() {
        return None;
    }
    let mut armed = registry();
    let mut fired = None;
    for entry in armed.iter_mut().filter(|e| e.site == site) {
        entry.evals += 1;
        let fires = match entry.kind {
            FaultKind::Full => entry.evals >= entry.n,
            _ => entry.evals == entry.n,
        };
        if fires && fired.is_none() {
            fired = Some(injection_for(entry, entry.evals));
        }
    }
    fired
}

/// Keyed evaluation: fires when `key` equals the entry's `N` (`full`
/// fires for every `key >= N`). Keyed evaluation never touches the
/// ordinal counters, so it is safe from worker threads: firing depends
/// only on the caller-supplied key (e.g. a fault index), never on the
/// schedule.
pub fn evaluate_keyed(site: &str, key: u64) -> Option<Injection> {
    if !is_active() {
        return None;
    }
    let armed = registry();
    for entry in armed.iter().filter(|e| e.site == site) {
        let fires = match entry.kind {
            FaultKind::Full => key >= entry.n,
            _ => key == entry.n,
        };
        if fires {
            return Some(injection_for(entry, key));
        }
    }
    None
}

/// Bounded retry policy for transient I/O errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1); 1 means no retries.
    pub attempts: u32,
    /// Base backoff, doubled after every failed attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// Parses `attempts[@backoff]`, e.g. `5`, `3@10ms`, `4@1s`,
    /// `2@500us`. Strict: zero attempts and unknown units are errors.
    pub fn parse(text: &str) -> Result<RetryPolicy, String> {
        let text = text.trim();
        let (attempts_text, backoff) = match text.split_once('@') {
            Some((a, b)) => (a, Some(b)),
            None => (text, None),
        };
        let attempts: u32 = attempts_text
            .parse()
            .map_err(|_| format!("io-retry: `{attempts_text}` is not an attempt count"))?;
        if attempts == 0 {
            return Err("io-retry: attempts must be >= 1".to_owned());
        }
        let backoff = match backoff {
            None => RetryPolicy::default().backoff,
            Some(b) => parse_duration(b)?,
        };
        Ok(RetryPolicy { attempts, backoff })
    }

    /// Reads `PDF_IO_RETRY`; unset means the default policy, a malformed
    /// value is an error (strict-knob convention).
    pub fn from_env() -> Result<RetryPolicy, String> {
        match std::env::var(IO_RETRY_ENV) {
            Ok(text) => RetryPolicy::parse(&text).map_err(|e| format!("{IO_RETRY_ENV}: {e}")),
            Err(_) => Ok(RetryPolicy::default()),
        }
    }
}

fn parse_duration(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    let split = text
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| format!("io-retry: `{text}` is missing a unit (us/ms/s)"))?;
    let (value, unit) = text.split_at(split);
    let value: u64 = value
        .parse()
        .map_err(|_| format!("io-retry: `{text}` is not a duration"))?;
    match unit {
        "us" => Ok(Duration::from_micros(value)),
        "ms" => Ok(Duration::from_millis(value)),
        "s" => Ok(Duration::from_secs(value)),
        _ => Err(format!("io-retry: unknown unit `{unit}` (use us/ms/s)")),
    }
}

/// Whether an error is worth retrying under [`with_retry`].
#[must_use]
pub fn is_transient(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op` up to `policy.attempts` times, sleeping an exponentially
/// doubled backoff between attempts; only transient errors are retried.
/// Returns the final result plus the number of retries performed, so
/// call sites can count `io_retries` telemetry.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> io::Result<T>,
) -> (io::Result<T>, u32) {
    let mut retries = 0u32;
    loop {
        match op() {
            Ok(value) => return (Ok(value), retries),
            Err(error) => {
                if retries + 1 >= policy.attempts || !is_transient(&error) {
                    return (Err(error), retries);
                }
                let pause = policy.backoff.saturating_mul(1 << retries.min(16));
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and env are process-global; tests serialize here.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn spec_parse_round_trips_and_validates() {
        let spec =
            FailpointSpec::parse("checkpoint.write:io@3, telemetry.flush:torn@7").expect("valid");
        assert_eq!(spec.entries.len(), 2);
        assert_eq!(spec.entries[0].kind, FaultKind::Io);
        assert_eq!(spec.entries[1].n, 7);
        assert_eq!(
            spec.to_string(),
            "checkpoint.write:io@3,telemetry.flush:torn@7"
        );
        let reparsed = FailpointSpec::parse(&spec.to_string()).expect("round trip");
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn spec_parse_rejects_malformed_entries() {
        for bad in [
            "",
            "checkpoint.write:io",
            "checkpoint.write@3",
            "nosuch.site:io@1",
            "checkpoint.write:explode@1",
            "checkpoint.write:io@0",
            "checkpoint.write:io@x",
        ] {
            assert!(FailpointSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn ordinal_evaluation_fires_exactly_once_except_full() {
        let _serial = lock();
        install(&FailpointSpec::parse("checkpoint.write:io@2").expect("valid"));
        assert_eq!(evaluate(sites::CHECKPOINT_WRITE), None);
        assert_eq!(
            evaluate(sites::CHECKPOINT_WRITE),
            Some(Injection::Transient)
        );
        assert_eq!(evaluate(sites::CHECKPOINT_WRITE), None);
        assert_eq!(evaluate(sites::CHECKPOINT_READ), None, "other site inert");

        install(&FailpointSpec::parse("checkpoint.write:full@2").expect("valid"));
        assert_eq!(evaluate(sites::CHECKPOINT_WRITE), None);
        for _ in 0..3 {
            assert_eq!(
                evaluate(sites::CHECKPOINT_WRITE),
                Some(Injection::Persistent),
                "full is persistent"
            );
        }
        clear();
        assert!(!is_active());
        assert_eq!(evaluate(sites::CHECKPOINT_WRITE), None);
    }

    #[test]
    fn install_resets_ordinal_counters() {
        let _serial = lock();
        let spec = FailpointSpec::parse("netlist.read:io@1").expect("valid");
        install(&spec);
        assert!(evaluate(sites::NETLIST_READ).is_some());
        install(&spec);
        assert!(
            evaluate(sites::NETLIST_READ).is_some(),
            "reinstall must reset counters"
        );
        clear();
    }

    #[test]
    fn keyed_evaluation_depends_only_on_the_key() {
        let _serial = lock();
        install(&FailpointSpec::parse("pool.build:panic@5").expect("valid"));
        for _ in 0..4 {
            assert_eq!(evaluate_keyed(sites::POOL_BUILD, 3), None);
            assert_eq!(
                evaluate_keyed(sites::POOL_BUILD, 5),
                Some(Injection::Panic),
                "keyed firing is idempotent"
            );
        }
        clear();
    }

    #[test]
    fn torn_seed_is_deterministic_and_prefix_is_strict() {
        let _serial = lock();
        let spec = FailpointSpec::parse("checkpoint.write:torn@1").expect("valid");
        install(&spec);
        let first = evaluate(sites::CHECKPOINT_WRITE).expect("fires");
        install(&spec);
        let second = evaluate(sites::CHECKPOINT_WRITE).expect("fires");
        assert_eq!(first, second, "same site/ordinal, same seed");
        for len in [1usize, 2, 100, 4096] {
            let torn = first.torn_len(len);
            assert!(torn < len, "torn prefix must be strict for len={len}");
        }
        assert_eq!(first.torn_len(0), 0);
        clear();
    }

    #[test]
    fn retry_policy_parses_strictly() {
        assert_eq!(
            RetryPolicy::parse("5").expect("valid"),
            RetryPolicy {
                attempts: 5,
                backoff: RetryPolicy::default().backoff
            }
        );
        assert_eq!(
            RetryPolicy::parse("3@10ms").expect("valid"),
            RetryPolicy {
                attempts: 3,
                backoff: Duration::from_millis(10)
            }
        );
        assert_eq!(
            RetryPolicy::parse("2@500us").expect("valid").backoff,
            Duration::from_micros(500)
        );
        for bad in ["", "0", "x", "3@", "3@5", "3@5min", "3@ms"] {
            assert!(RetryPolicy::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn with_retry_retries_only_transient_errors() {
        let policy = RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let (result, retries) = with_retry(&policy, || {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "transient"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result.expect("heals"), 3);
        assert_eq!(retries, 2);

        let mut calls = 0;
        let (result, retries) = with_retry(&policy, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::other("persistent"))
        });
        assert!(result.is_err());
        assert_eq!((calls, retries), (1, 0), "persistent errors never retry");

        let mut calls = 0;
        let (result, retries) = with_retry(&policy, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "transient"))
        });
        assert!(result.is_err());
        assert_eq!((calls, retries), (3, 2), "attempts bound the loop");
    }

    #[test]
    fn env_installation_is_strict() {
        let _serial = lock();
        std::env::remove_var(FAILPOINTS_ENV);
        assert_eq!(install_from_env(), Ok(false));
        std::env::set_var(FAILPOINTS_ENV, "checkpoint.read:io@1");
        assert_eq!(install_from_env(), Ok(true));
        assert!(is_active());
        std::env::set_var(FAILPOINTS_ENV, "bogus");
        assert!(install_from_env().is_err());
        std::env::remove_var(FAILPOINTS_ENV);
        clear();

        std::env::set_var(IO_RETRY_ENV, "4@2ms");
        assert_eq!(
            RetryPolicy::from_env(),
            Ok(RetryPolicy {
                attempts: 4,
                backoff: Duration::from_millis(2)
            })
        );
        std::env::set_var(IO_RETRY_ENV, "zero");
        assert!(RetryPolicy::from_env().is_err());
        std::env::remove_var(IO_RETRY_ENV);
    }
}
