//! Differential properties of static implication learning.
//!
//! On random small synthesized circuits (few enough inputs that all
//! `4^n` two-pattern tests can be simulated exhaustively):
//!
//! * every learned implication holds on every simulated waveform pair;
//! * fault-list elimination with the table agrees with elimination
//!   without it, except for removals whose requirements no exhaustive
//!   two-pattern sweep can satisfy — i.e. provably untestable faults.

use std::collections::HashSet;

use pdf_analyze::learn_implications;
use pdf_faults::{FaultList, Sensitization};
use pdf_logic::{Triple, Value};
use pdf_netlist::{simulate_triples, Circuit, SynthProfile, TwoPattern};
use pdf_paths::PathEnumerator;
use proptest::prelude::*;

/// Component `slot` (0 = α1, 2 = α3) of a waveform triple.
fn component(t: Triple, slot: usize) -> Value {
    if slot == 0 {
        t.first()
    } else {
        t.last()
    }
}

/// Simulates every fully-specified two-pattern test over `n` inputs.
/// Test `k` encodes input `j`'s pair in bits `2j` (first pattern) and
/// `2j + 1` (second pattern).
fn all_waves(circuit: &Circuit) -> Vec<Vec<Triple>> {
    let n = circuit.inputs().len();
    (0..4usize.pow(n as u32))
        .map(|k| {
            let v1 = (0..n).map(|j| Value::from(k >> (2 * j) & 1 == 1)).collect();
            let v2 = (0..n)
                .map(|j| Value::from(k >> (2 * j + 1) & 1 == 1))
                .collect();
            simulate_triples(circuit, &TwoPattern::new(v1, v2).to_triples())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn learning_is_sound_on_random_small_circuits(
        seed in 0u64..1_000_000,
        inputs in 3usize..=5,
        gates in 6usize..=18,
        levels in 2usize..=4,
        gadgets in 0usize..=2,
    ) {
        let netlist = SynthProfile::new("prop", seed)
            .with_inputs(inputs)
            .with_gates(gates)
            .with_levels(levels)
            .with_redundant_gadgets(gadgets)
            .generate()
            .combinational_core()
            .decompose_parity();
        let Ok(circuit) = netlist.to_circuit() else {
            // Degenerate draws (e.g. all gates pruned) are not the
            // property under test.
            prop_assume!(false);
            unreachable!()
        };
        prop_assume!(circuit.inputs().len() <= 5);

        let waves = all_waves(&circuit);
        let table = learn_implications(&circuit);

        // Property 1: every learned implication holds on every
        // exhaustively simulated waveform pair.
        for (ante, cons) in table.iter() {
            for w in &waves {
                if component(w[ante.line.index()], ante.slot) == ante.value {
                    prop_assert_eq!(
                        component(w[cons.line.index()], cons.slot),
                        cons.value,
                        "implication {:?} => {:?} violated",
                        ante,
                        cons
                    );
                }
            }
        }

        // Property 2: elimination with the table only removes faults,
        // and every removed fault is untestable under the exhaustive
        // two-pattern sweep.
        let paths = PathEnumerator::new(&circuit).with_cap(2_000).enumerate();
        for kind in [Sensitization::Robust, Sensitization::NonRobust] {
            let (with_table, stats) =
                FaultList::build_with_learned(&circuit, &paths.store, kind, Some(&table));
            let (without, _) = FaultList::build_with(&circuit, &paths.store, kind);

            let kept: HashSet<String> =
                with_table.iter().map(|e| format!("{}", e.fault)).collect();
            let mut eliminated = 0usize;
            for entry in without.iter() {
                if kept.contains(&format!("{}", entry.fault)) {
                    continue;
                }
                eliminated += 1;
                prop_assert!(
                    !waves.iter().any(|w| entry.assignments.satisfied_by(w)),
                    "eliminated fault {} is testable",
                    entry.fault
                );
            }
            prop_assert_eq!(eliminated, stats.statically_eliminated);
            // Everything the table kept, the plain build kept too.
            let plain: HashSet<String> =
                without.iter().map(|e| format!("{}", e.fault)).collect();
            prop_assert!(kept.is_subset(&plain));
        }
    }
}
