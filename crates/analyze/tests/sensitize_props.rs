//! Differential properties of the static sensitizability pass.
//!
//! On random small synthesized circuits (few enough inputs that all
//! `4^n` two-pattern tests can be simulated exhaustively):
//!
//! * every fault the pass classifies *false* is untestable under the
//!   exhaustive two-pattern sweep — the pre-elimination filter never
//!   drops a detectable fault;
//! * every path the pass classifies *robust* has a fault some exhaustive
//!   test detects — the positive verdict is never vacuous;
//! * filtering is contractive: the filtered fault list is a subset of
//!   the unfiltered one, and the bookkeeping reconciles exactly.

use std::collections::HashSet;

use pdf_analyze::classify_store;
use pdf_faults::{assignments, ConditionError, FaultList, PathDelayFault, Polarity, Sensitization};
use pdf_logic::{Triple, Value};
use pdf_netlist::{simulate_triples, Circuit, SynthProfile, TwoPattern};
use pdf_paths::{PathClass, PathEnumerator};
use proptest::prelude::*;

/// Simulates every fully-specified two-pattern test over `n` inputs.
fn all_waves(circuit: &Circuit) -> Vec<Vec<Triple>> {
    let n = circuit.inputs().len();
    (0..4usize.pow(n as u32))
        .map(|k| {
            let v1 = (0..n).map(|j| Value::from(k >> (2 * j) & 1 == 1)).collect();
            let v2 = (0..n)
                .map(|j| Value::from(k >> (2 * j + 1) & 1 == 1))
                .collect();
            simulate_triples(circuit, &TwoPattern::new(v1, v2).to_triples())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sensitizability_verdicts_are_sound_on_random_small_circuits(
        seed in 0u64..1_000_000,
        inputs in 3usize..=5,
        gates in 6usize..=18,
        levels in 2usize..=4,
        gadgets in 0usize..=2,
    ) {
        let netlist = SynthProfile::new("prop", seed)
            .with_inputs(inputs)
            .with_gates(gates)
            .with_levels(levels)
            .with_redundant_gadgets(gadgets)
            .generate()
            .combinational_core()
            .decompose_parity();
        let Ok(circuit) = netlist.to_circuit() else {
            prop_assume!(false);
            unreachable!()
        };
        prop_assume!(circuit.inputs().len() <= 5);

        let waves = all_waves(&circuit);
        let store = PathEnumerator::new(&circuit).with_cap(2_000).enumerate().store;

        for kind in [Sensitization::Robust, Sensitization::NonRobust] {
            let analysis = classify_store(&circuit, &store, kind, None);
            prop_assert_eq!(analysis.stats.paths, store.len());
            prop_assert_eq!(analysis.class_counts().total(), store.len());

            // Per-fault verdict soundness against the exhaustive sweep.
            for (i, stored) in store.iter().enumerate() {
                let mut any_detected = false;
                for polarity in Polarity::BOTH {
                    let fault = PathDelayFault::new(stored.path.clone(), polarity);
                    let a = match assignments(&circuit, &fault, kind) {
                        Ok(a) => a,
                        Err(ConditionError::Conflict { .. }) => continue,
                        Err(_) => continue,
                    };
                    let testable = waves.iter().any(|w| a.satisfied_by(w));
                    any_detected |= testable;
                    if analysis.is_false(i, polarity) {
                        prop_assert!(
                            !testable,
                            "false-classified fault {fault} is testable"
                        );
                    }
                }
                if analysis.path_class(i) == PathClass::Robust {
                    prop_assert!(
                        any_detected,
                        "robust-classified path {} has no detecting test",
                        stored.path
                    );
                }
            }

            // The filter is contractive and the ledger reconciles.
            let (off, off_stats) = FaultList::build_with(&circuit, &store, kind);
            let (on, on_stats) = FaultList::build_with_filter(
                &circuit,
                &store,
                kind,
                None,
                Some(&|i, p| analysis.is_false(i, p)),
            );
            prop_assert_eq!(on_stats.sensitize_eliminated, analysis.stats.false_faults);
            prop_assert_eq!(
                on_stats.candidates,
                on.len()
                    + on_stats.sensitize_eliminated
                    + on_stats.rule1_conflicts
                    + on_stats.rule2_conflicts
            );
            prop_assert_eq!(off_stats.candidates, on_stats.candidates);
            let off_keys: HashSet<String> = off.iter().map(|e| format!("{}", e.fault)).collect();
            for entry in on.iter() {
                prop_assert!(
                    off_keys.contains(&format!("{}", entry.fault)),
                    "filtered list grew a fault: {}",
                    entry.fault
                );
            }
            prop_assert!(on.len() <= off.len());
        }
    }
}
