//! Pinned acceptance: static learning eliminates provably-untestable
//! faults on an ISCAS stand-in benchmark.
//!
//! The `+r` stand-in variants carry function-preserving redundancy
//! gadgets (see `pdf_netlist::synth`), restoring the untestable-fault
//! character of the real ISCAS benchmarks that clean random DAGs lack.
//! Plain per-slot implication cannot see through the gadgets'
//! reconvergence, so every fault they kill is credited to the learned
//! closure table.

use std::collections::HashSet;

use pdf_analyze::learn_implications;
use pdf_atpg::{ExactJustifier, ExactOutcome};
use pdf_faults::{FaultList, FaultListStats, LearnedImplications, Sensitization};
use pdf_netlist::{stand_in_profile, Circuit};
use pdf_paths::{PathEnumerator, PathStore};

fn b03r() -> (Circuit, PathStore, LearnedImplications) {
    let circuit = stand_in_profile("b03+r")
        .expect("b03+r stand-in profile")
        .generate()
        .combinational_core()
        .decompose_parity()
        .to_circuit()
        .expect("b03+r circuit");
    let paths = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
    let table = learn_implications(&circuit);
    (circuit, paths.store, table)
}

fn build_both(
    circuit: &Circuit,
    store: &PathStore,
    table: &LearnedImplications,
) -> (FaultListStats, Vec<String>) {
    let (with_table, stats) =
        FaultList::build_with_learned(circuit, store, Sensitization::Robust, Some(table));
    let (without, plain_stats) = FaultList::build_with(circuit, store, Sensitization::Robust);

    // The table only ever removes faults; the plain rules are untouched.
    assert_eq!(stats.rule1_conflicts, plain_stats.rule1_conflicts);
    assert_eq!(stats.rule2_conflicts, plain_stats.rule2_conflicts);
    assert_eq!(
        stats.statically_eliminated,
        without.len() - with_table.len(),
        "eliminated count must match the fault-list difference"
    );

    let kept: HashSet<String> = with_table.iter().map(|e| format!("{}", e.fault)).collect();
    let eliminated = without
        .iter()
        .map(|e| format!("{}", e.fault))
        .filter(|k| !kept.contains(k))
        .collect();
    (stats, eliminated)
}

/// Fast pinned acceptance for tier-1: the learned table eliminates a
/// non-empty set of faults on `b03+r` and the bookkeeping is coherent.
#[test]
fn static_learning_eliminates_faults_on_b03r() {
    let (circuit, store, table) = b03r();
    assert!(!table.is_empty(), "learning found no implications");
    let (stats, eliminated) = build_both(&circuit, &store, &table);
    assert!(
        stats.statically_eliminated > 0,
        "expected statically eliminated faults on b03+r, got 0"
    );
    assert_eq!(stats.statically_eliminated, eliminated.len());
}

/// Soundness audit: every statically eliminated fault must be genuinely
/// untestable — complete search over its off-path assignments proves
/// unsatisfiability. Deep cones may exhaust the node limit and come back
/// inconclusive (tolerated), but a satisfiable eliminated fault is a
/// soundness bug and fails immediately, and at least one conclusive
/// proof is required. Runs minutes even in release, so it is ignored in
/// tier-1 and exercised by the nightly CI leg.
#[test]
#[ignore = "slow exact-search audit; run explicitly or via the nightly CI leg"]
fn eliminated_faults_are_unsatisfiable_under_exact_search() {
    let (circuit, store, table) = b03r();
    let (with_table, _) =
        FaultList::build_with_learned(&circuit, &store, Sensitization::Robust, Some(&table));
    let (without, _) = FaultList::build_with(&circuit, &store, Sensitization::Robust);
    let kept: HashSet<String> = with_table.iter().map(|e| format!("{}", e.fault)).collect();

    let exact = ExactJustifier::new(&circuit).with_node_limit(2_000_000);
    let (mut unsat, mut inconclusive) = (0usize, 0usize);
    for entry in without.iter() {
        if kept.contains(&format!("{}", entry.fault)) {
            continue;
        }
        match exact.justify(&entry.assignments) {
            ExactOutcome::Unsatisfiable => unsat += 1,
            ExactOutcome::Satisfiable(_) => {
                panic!("eliminated fault {} is testable", entry.fault)
            }
            ExactOutcome::LimitExceeded => inconclusive += 1,
        }
    }
    assert!(
        unsat > 0,
        "no eliminated fault was conclusively proven untestable ({inconclusive} inconclusive)"
    );
}
