//! Soundness audits for false-path pre-elimination.
//!
//! The static sensitizability pass may only eliminate faults it can
//! *prove* unsensitizable. These tests re-prove the eliminations by
//! complete search ([`ExactJustifier`]):
//!
//! * a hand-built reconvergent gadget whose straight-through path is
//!   false in a way only the depth-1 case split can see (rules 1/2 and
//!   learning all pass) — the elimination is audited exhaustively;
//! * the `b03+r` ISCAS stand-in: the filtered list is a subset of the
//!   unfiltered one and every difference is exact-search-unsatisfiable
//!   (the release-mode nightly leg runs the full audit).

use std::collections::HashSet;

use pdf_analyze::{classify_store, learn_implications};
use pdf_atpg::{ExactJustifier, ExactOutcome};
use pdf_faults::{FaultList, Sensitization};
use pdf_logic::GateKind;
use pdf_netlist::{stand_in_profile, Circuit, CircuitBuilder};
use pdf_paths::{PathClass, PathEnumerator, PathStore};

/// A circuit whose `i → t` path is a false path invisible to plain
/// implication: the side requirements `w = 1` and `d = 1` are
/// individually free, but `w` forces `a = b` while `d` forces `a ≠ b` —
/// a conflict only a case split on `a` (or `b`) exposes.
///
/// `w = OR(AND(a, b), AND(!a, !b))` (a XNOR), `d` the matching XOR,
/// `t = AND(i, w, d)`.
fn split_false_gadget() -> Circuit {
    let mut bld = CircuitBuilder::new("split-false");
    let i = bld.input("i");
    let a = bld.input("a");
    let b = bld.input("b");
    let a1 = bld.branch("a1", a);
    let a2 = bld.branch("a2", a);
    let a3 = bld.branch("a3", a);
    let a4 = bld.branch("a4", a);
    let b1 = bld.branch("b1", b);
    let b2 = bld.branch("b2", b);
    let b3 = bld.branch("b3", b);
    let b4 = bld.branch("b4", b);
    let na = bld.gate("na", GateKind::Not, &[a2]);
    let nb = bld.gate("nb", GateKind::Not, &[b2]);
    let na2 = bld.gate("na2", GateKind::Not, &[a4]);
    let nb2 = bld.gate("nb2", GateKind::Not, &[b4]);
    let p = bld.gate("p", GateKind::And, &[a1, b1]);
    let q = bld.gate("q", GateKind::And, &[na, nb]);
    let w = bld.gate("w", GateKind::Or, &[p, q]);
    let e1 = bld.gate("e1", GateKind::And, &[a3, nb2]);
    let e2 = bld.gate("e2", GateKind::And, &[na2, b3]);
    let d = bld.gate("d", GateKind::Or, &[e1, e2]);
    let t = bld.gate("t", GateKind::And, &[i, w, d]);
    bld.mark_output(t);
    bld.finish().unwrap()
}

/// Builds both lists and returns the entries of `off` the filter dropped.
fn eliminated_entries<'a>(
    circuit: &Circuit,
    store: &PathStore,
    off: &'a FaultList,
    on: &FaultList,
) -> Vec<&'a pdf_faults::FaultEntry> {
    let _ = (circuit, store);
    let kept: HashSet<String> = on.iter().map(|e| format!("{}", e.fault)).collect();
    off.iter()
        .filter(|e| !kept.contains(&format!("{}", e.fault)))
        .collect()
}

#[test]
fn case_split_eliminates_the_gadget_false_path_and_exact_search_agrees() {
    let circuit = split_false_gadget();
    let store = PathEnumerator::new(&circuit)
        .with_cap(10_000)
        .enumerate()
        .store;
    let analysis = classify_store(&circuit, &store, Sensitization::Robust, None);
    assert!(
        analysis.stats.split_refuted > 0,
        "the gadget's false path must be caught by the case split, not the plain rules"
    );
    let t = circuit.find_line("t").unwrap();
    let i = circuit.find_line("i").unwrap();
    let direct = store
        .iter()
        .position(|s| s.path.lines() == [i, t])
        .expect("the i → t path is enumerated");
    assert_eq!(analysis.path_class(direct), PathClass::False);

    let (off, _) = FaultList::build_with(&circuit, &store, Sensitization::Robust);
    let (on, on_stats) = FaultList::build_with_filter(
        &circuit,
        &store,
        Sensitization::Robust,
        None,
        Some(&|k, p| analysis.is_false(k, p)),
    );
    assert!(on.len() < off.len(), "the filter must drop the false path");
    assert_eq!(on_stats.sensitize_eliminated, analysis.stats.false_faults);

    // Three inputs: complete search is exhaustive and must prove every
    // dropped fault unsatisfiable, with no node-limit escape hatch.
    let exact = ExactJustifier::new(&circuit).with_node_limit(1_000_000);
    let dropped = eliminated_entries(&circuit, &store, &off, &on);
    assert!(!dropped.is_empty());
    for entry in dropped {
        match exact.justify(&entry.assignments) {
            ExactOutcome::Unsatisfiable => {}
            ExactOutcome::Satisfiable(_) => {
                panic!("eliminated fault {} is testable", entry.fault)
            }
            ExactOutcome::LimitExceeded => {
                panic!("exact search must terminate on a 3-input circuit")
            }
        }
    }
}

fn b03r() -> (Circuit, PathStore) {
    let circuit = stand_in_profile("b03+r")
        .expect("b03+r stand-in profile")
        .generate()
        .combinational_core()
        .decompose_parity()
        .to_circuit()
        .expect("b03+r circuit");
    let store = PathEnumerator::new(&circuit)
        .with_cap(10_000)
        .enumerate()
        .store;
    (circuit, store)
}

/// Fast pinned acceptance for tier-1: on `b03+r` the filter is
/// contractive, the ledger reconciles, and classification tags cover the
/// store.
#[test]
fn sensitize_filter_is_contractive_on_b03r() {
    let (circuit, mut store) = b03r();
    let learned = learn_implications(&circuit);
    let analysis = classify_store(&circuit, &store, Sensitization::Robust, Some(&learned));
    assert_eq!(analysis.stats.paths, store.len());
    analysis.tag_store(&mut store);
    assert_eq!(store.class_counts().total(), store.len());

    let (off, _) =
        FaultList::build_with_learned(&circuit, &store, Sensitization::Robust, Some(&learned));
    let (on, on_stats) = FaultList::build_with_filter(
        &circuit,
        &store,
        Sensitization::Robust,
        Some(&learned),
        Some(&|k, p| analysis.is_false(k, p)),
    );
    assert_eq!(on_stats.sensitize_eliminated, analysis.stats.false_faults);
    assert_eq!(
        on_stats.candidates,
        on.len()
            + on_stats.sensitize_eliminated
            + on_stats.rule1_conflicts
            + on_stats.rule2_conflicts
            + on_stats.statically_eliminated
    );
    let off_keys: HashSet<String> = off.iter().map(|e| format!("{}", e.fault)).collect();
    for entry in on.iter() {
        assert!(
            off_keys.contains(&format!("{}", entry.fault)),
            "filtered list grew a fault: {}",
            entry.fault
        );
    }
    // Everything the rules already eliminate is classified false too, so
    // the filtered build's rule counters can only shrink.
    assert!(on.len() <= off.len());
}

/// Nightly soundness audit: every fault the full static layer
/// eliminates *beyond* rules 1/2 — present in the plain rules-only
/// list, absent from the filtered list built with learning and the
/// sensitizability filter — is re-proven untestable by complete search,
/// on the gadget and on `b03+r`. The baseline is deliberately the
/// rules-only list: the learned baseline already absorbs everything the
/// classifier proves false on these circuits, which would leave nothing
/// to audit. Deep `b03+r` cones may exhaust the node limit (tolerated);
/// a satisfiable eliminated fault fails immediately. Runs minutes in
/// release, so tier-1 ignores it.
#[test]
#[ignore = "slow exact-search audit; run explicitly or via the nightly CI leg"]
fn sensitize_eliminated_faults_are_unsatisfiable_under_exact_search() {
    let (b03r_circuit, b03r_store) = b03r();
    let gadget = split_false_gadget();
    let gadget_store = PathEnumerator::new(&gadget)
        .with_cap(10_000)
        .enumerate()
        .store;
    let (mut unsat, mut inconclusive) = (0usize, 0usize);
    for (circuit, store) in [(&gadget, &gadget_store), (&b03r_circuit, &b03r_store)] {
        let learned = learn_implications(circuit);
        let analysis = classify_store(circuit, store, Sensitization::Robust, Some(&learned));
        let (off, _) = FaultList::build_with(circuit, store, Sensitization::Robust);
        let (on, _) = FaultList::build_with_filter(
            circuit,
            store,
            Sensitization::Robust,
            Some(&learned),
            Some(&|k, p| analysis.is_false(k, p)),
        );
        let exact = ExactJustifier::new(circuit).with_node_limit(2_000_000);
        for entry in eliminated_entries(circuit, store, &off, &on) {
            match exact.justify(&entry.assignments) {
                ExactOutcome::Unsatisfiable => unsat += 1,
                ExactOutcome::Satisfiable(_) => {
                    panic!("eliminated fault {} is testable", entry.fault)
                }
                ExactOutcome::LimitExceeded => inconclusive += 1,
            }
        }
    }
    assert!(
        unsat > 0,
        "no eliminated fault was conclusively proven untestable ({inconclusive} inconclusive)"
    );
}
