//! Structural netlist linting.
//!
//! Two passes, run at the two representation levels:
//!
//! * [`lint_netlist`] inspects a parsed [`Netlist`] for defects the
//!   builder's validation does not reject — dead gates, unused inputs,
//!   width-0 output cones — and re-derives cycle membership with *named*
//!   signals when topological ordering fails on a transformed netlist.
//! * [`lint_circuit`] inspects the expanded line-level [`Circuit`] for
//!   duplicate line names and degenerate fanout branching.
//!
//! Error-severity findings are conditions that would make downstream path
//! or fault analysis fail or silently lie; warnings are legal but
//! suspicious structure. [`LintMode`] (from `PDF_LINT`) decides whether
//! errors abort, print, or stay silent.

use std::collections::HashMap;

use pdf_netlist::{Circuit, Driver, LineKind, Netlist};

use crate::diagnostic::{codes, Diagnostic};

/// What to do with lint findings, from the `PDF_LINT` variable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LintMode {
    /// Report everything; error-severity findings abort the run (default).
    #[default]
    Deny,
    /// Report everything to stderr; never abort.
    Warn,
    /// Skip linting entirely.
    Off,
}

impl LintMode {
    /// Reads `PDF_LINT` (`deny` | `warn` | `off`, default `deny`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a misspelled mode silently
    /// downgrading to the default would defeat the gate's purpose.
    #[must_use]
    pub fn from_env() -> LintMode {
        match std::env::var("PDF_LINT") {
            Err(_) => LintMode::Deny,
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "deny" | "" => LintMode::Deny,
                "warn" => LintMode::Warn,
                "off" => LintMode::Off,
                other => panic!("PDF_LINT: unrecognized mode `{other}` (want deny|warn|off)"),
            },
        }
    }
}

/// The findings of one lint pass (or several, via [`LintReport::extend`]).
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Merges another report into this one.
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, errors first, in detection order within a severity.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Iterates over the findings.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Returns `true` when at least one finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Returns `true` when nothing was found at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints a parsed netlist. See the module docs for the checks performed.
#[must_use]
pub fn lint_netlist(netlist: &Netlist) -> LintReport {
    let mut report = LintReport::new();
    let source = netlist.name().to_owned();

    // Signal universe: every id mentioned by inputs, outputs, gates, dffs.
    let mut max_sig = 0usize;
    let mut note = |i: usize| max_sig = max_sig.max(i + 1);
    for &s in netlist.inputs().iter().chain(netlist.outputs()) {
        note(s.index());
    }
    for g in netlist.gates() {
        note(g.output.index());
        for &i in &g.inputs {
            note(i.index());
        }
    }
    for d in netlist.dffs() {
        note(d.d.index());
        note(d.q.index());
    }

    // Reader counts: how many gate inputs / DFF data pins / primary
    // outputs consume each signal.
    let mut readers = vec![0usize; max_sig];
    for g in netlist.gates() {
        for &i in &g.inputs {
            readers[i.index()] += 1;
        }
    }
    for d in netlist.dffs() {
        readers[d.d.index()] += 1;
    }
    for &o in netlist.outputs() {
        readers[o.index()] += 1;
    }

    // PDL001: combinational cycle, with the member gates named. The
    // builder already rejects cycles at parse time; this re-check guards
    // netlists produced by transformations, and upgrades the message with
    // signal names when it does fire.
    if netlist.gate_topo_order().is_err() {
        let cyclic = cyclic_gate_outputs(netlist);
        report.push(Diagnostic::error(
            codes::CYCLE,
            &source,
            cyclic.first().map(String::as_str),
            format!(
                "gates form a combinational cycle through {}",
                format_names(&cyclic)
            ),
        ));
    }

    // PDL002: a declared primary input nothing reads. The line-level
    // expansion would reject it as a context-free `Dangling`; name it now.
    for &input in netlist.inputs() {
        if readers[input.index()] == 0 {
            let name = netlist.signal_name(input);
            report.push(Diagnostic::error(
                codes::FLOATING,
                &source,
                Some(name),
                format!("primary input `{name}` is never used"),
            ));
        }
    }

    // PDL004: dead logic — a gate whose output nothing consumes.
    for gate in netlist.gates() {
        if readers[gate.output.index()] == 0 {
            let name = netlist.signal_name(gate.output);
            report.push(Diagnostic::error(
                codes::UNREACHABLE,
                &source,
                Some(name),
                format!("gate `{name}` drives no output, gate, or flip-flop"),
            ));
        }
    }

    // PDL006: width-0 cone — an output whose transitive fanin contains no
    // primary input (fed entirely by flip-flops). Legal, but a path-delay
    // target population over it is empty.
    for &output in netlist.outputs() {
        if !cone_reaches_primary_input(netlist, output) {
            let name = netlist.signal_name(output);
            report.push(Diagnostic::warning(
                codes::EMPTY_CONE,
                &source,
                Some(name),
                format!("output `{name}` depends on no primary input (width-0 cone)"),
            ));
        }
    }

    count_lint_errors(&report);
    report
}

/// Lints an expanded line-level circuit.
#[must_use]
pub fn lint_circuit(circuit: &Circuit) -> LintReport {
    let mut report = LintReport::new();
    let source = circuit.name().to_owned();

    // PDL005: duplicate line names. `CircuitBuilder` never checks this,
    // and every by-name lookup (CLI specs, fault reports) silently
    // resolves to the first match.
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for (_, line) in circuit.iter() {
        *seen.entry(line.name()).or_insert(0) += 1;
    }
    let mut duplicates: Vec<(&str, usize)> = seen.into_iter().filter(|&(_, n)| n > 1).collect();
    duplicates.sort_unstable();
    for (name, n) in duplicates {
        report.push(Diagnostic::warning(
            codes::DUPLICATE,
            &source,
            Some(name),
            format!("{n} lines share the name `{name}`; by-name lookups are ambiguous"),
        ));
    }

    // PDL003: a stem fanning out through exactly one branch. Valid, but
    // the branch is redundant indirection and usually a generator bug —
    // it silently doubles the stem's contribution to path delays.
    for (_, line) in circuit.iter() {
        if let LineKind::Branch { stem } = line.kind() {
            let stem_line = circuit.line(*stem);
            if stem_line.fanout().len() == 1 {
                let name = stem_line.name();
                report.push(Diagnostic::warning(
                    codes::BRANCH,
                    &source,
                    Some(name),
                    format!("stem `{name}` fans out through a single redundant branch"),
                ));
            }
        }
    }

    count_lint_errors(&report);
    report
}

fn count_lint_errors(report: &LintReport) {
    pdf_telemetry::count(
        pdf_telemetry::counters::LINT_ERRORS,
        report.error_count() as u64,
    );
}

/// Names of gate outputs that sit on (or feed only) a combinational
/// cycle: the gates a Kahn peel never reaches.
fn cyclic_gate_outputs(netlist: &Netlist) -> Vec<String> {
    let n = netlist.gate_count();
    let gates = netlist.gates();
    let mut indeg = vec![0usize; n];
    let mut users: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, gate) in gates.iter().enumerate() {
        for &inp in &gate.inputs {
            if let Driver::Gate(src) = netlist.driver(inp) {
                indeg[gi] += 1;
                users[src].push(gi);
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&g| indeg[g] == 0).collect();
    let mut head = 0;
    let mut peeled = vec![false; n];
    while head < queue.len() {
        let g = queue[head];
        head += 1;
        peeled[g] = true;
        for &u in &users[g] {
            indeg[u] -= 1;
            if indeg[u] == 0 {
                queue.push(u);
            }
        }
    }
    let mut names: Vec<String> = (0..n)
        .filter(|&g| !peeled[g])
        .map(|g| netlist.signal_name(gates[g].output).to_owned())
        .collect();
    names.sort_unstable();
    names
}

fn format_names(names: &[String]) -> String {
    const SHOWN: usize = 5;
    if names.is_empty() {
        return "(unnamed)".to_owned();
    }
    let mut s = names
        .iter()
        .take(SHOWN)
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(", ");
    if names.len() > SHOWN {
        s.push_str(&format!(" and {} more", names.len() - SHOWN));
    }
    s
}

/// Depth-first walk from `output` back towards primary inputs; `true` as
/// soon as one is reached. Flip-flop outputs terminate the walk without
/// counting as inputs.
fn cone_reaches_primary_input(netlist: &Netlist, output: pdf_netlist::SignalId) -> bool {
    let mut stack = vec![output];
    let mut visited = std::collections::HashSet::new();
    while let Some(sig) = stack.pop() {
        if !visited.insert(sig) {
            continue;
        }
        match netlist.driver(sig) {
            Driver::Input => return true,
            Driver::Gate(g) => stack.extend(netlist.gates()[g].inputs.iter().copied()),
            Driver::Dff(_) | Driver::Undriven => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_logic::GateKind;
    use pdf_netlist::{CircuitBuilder, NetlistBuilder};

    fn clean_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("clean");
        b.input("a").input("b").output("z");
        b.gate(GateKind::And, "m", &["a", "b"]);
        b.gate(GateKind::Not, "z", &["m"]);
        b.finish().unwrap()
    }

    #[test]
    fn clean_netlist_lints_clean() {
        assert!(lint_netlist(&clean_netlist()).is_clean());
    }

    #[test]
    fn iscas_benchmarks_lint_clean() {
        for netlist in [
            pdf_netlist::parse_bench(pdf_netlist::iscas::S27_BENCH, "s27").unwrap(),
            pdf_netlist::parse_bench(pdf_netlist::iscas::C17_BENCH, "c17").unwrap(),
        ] {
            let core = netlist.combinational_core();
            let report = lint_netlist(&core);
            assert!(!report.has_errors(), "{:?}", report.diagnostics());
            let circuit = core.decompose_parity().to_circuit().unwrap();
            assert!(!lint_circuit(&circuit).has_errors());
        }
    }

    #[test]
    fn unused_input_is_a_floating_error() {
        let mut b = NetlistBuilder::new("u");
        b.input("a").input("ghost").output("z");
        b.gate(GateKind::Not, "z", &["a"]);
        let report = lint_netlist(&b.finish().unwrap());
        assert!(report.has_errors());
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, codes::FLOATING);
        assert_eq!(d.line.as_deref(), Some("ghost"));
        assert!(d.to_string().contains("u:ghost"));
    }

    #[test]
    fn dead_gate_is_an_unreachable_error() {
        let mut b = NetlistBuilder::new("d");
        b.input("a").output("z");
        b.gate(GateKind::Not, "z", &["a"]);
        b.gate(GateKind::Not, "dead", &["a"]);
        let report = lint_netlist(&b.finish().unwrap());
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics()[0].code, codes::UNREACHABLE);
        assert_eq!(report.diagnostics()[0].line.as_deref(), Some("dead"));
    }

    #[test]
    fn dff_only_cone_is_a_width0_warning() {
        // z is fed only through the flip-flop: no primary input in its cone.
        let mut b = NetlistBuilder::new("w");
        b.input("a").output("z");
        b.gate(GateKind::Not, "z", &["q"]);
        b.gate(GateKind::Buf, "d", &["a"]);
        b.dff("q", "d");
        let report = lint_netlist(&b.finish().unwrap());
        assert!(!report.has_errors());
        assert_eq!(report.warning_count(), 1);
        assert_eq!(report.diagnostics()[0].code, codes::EMPTY_CONE);
        assert_eq!(report.diagnostics()[0].line.as_deref(), Some("z"));
    }

    #[test]
    fn duplicate_line_names_warn() {
        let mut b = CircuitBuilder::new("dup");
        let x = b.input("n");
        let y = b.input("n");
        let g = b.gate("g", GateKind::And, &[x, y]);
        b.mark_output(g);
        let report = lint_circuit(&b.finish().unwrap());
        assert!(!report.has_errors());
        assert_eq!(report.diagnostics()[0].code, codes::DUPLICATE);
        assert_eq!(report.diagnostics()[0].line.as_deref(), Some("n"));
    }

    #[test]
    fn single_branch_stem_warns() {
        let mut b = CircuitBuilder::new("sb");
        let x = b.input("x");
        let x1 = b.branch("x1", x);
        let g = b.gate("g", GateKind::Not, &[x1]);
        b.mark_output(g);
        let report = lint_circuit(&b.finish().unwrap());
        assert!(!report.has_errors());
        assert_eq!(report.diagnostics()[0].code, codes::BRANCH);
        assert_eq!(report.diagnostics()[0].line.as_deref(), Some("x"));
    }

    #[test]
    fn lint_mode_default_is_deny() {
        // No env manipulation (tests run in parallel): just the default.
        assert_eq!(LintMode::default(), LintMode::Deny);
    }
}
