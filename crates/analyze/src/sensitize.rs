//! Static path-sensitizability analysis.
//!
//! For every stored path (and each of its two path delay faults) the pass
//! collects the fault's necessary assignment set `A(p)` and decides,
//! without enumerating tests, where the fault sits in a three-way
//! lattice:
//!
//! * **false** ([`PathClass::False`]) — `A(p)` is unsatisfiable: the
//!   requirements conflict outright (rule 1), their implication closure
//!   conflicts (rule 2, sharpened by the learned table when one is
//!   attached), or a depth-1 case split over the cone's primary inputs
//!   refutes both values of some input. Every test of the circuit
//!   assigns each primary input a fully specified value pair, so a
//!   refutation of both slot-2 values is a proof of unsatisfiability —
//!   the verdict is sound, and the exact-search audit re-proves it.
//! * **robust** ([`PathClass::Robust`]) — every line `A(p)` constrains
//!   is a primary input (or a fanout branch of one), so the required
//!   waveforms can be applied directly: a robust two-pattern test exists
//!   by construction.
//! * **unknown** ([`PathClass::Unknown`]) — neither proof applies.
//!
//! False verdicts feed the [`FaultList`](pdf_faults::FaultList)
//! pre-elimination hook ([`SensitizeAnalysis::is_false`]); the same
//! machinery powers the semantic lints ([`lint_semantic`]: statically
//! constant lines, never-sensitizable fanin edges, reconvergence
//! masking) and the `pdfatpg analyze` report.

use pdf_faults::{
    assignments as fault_assignments, Assignments, ConditionError, Implicator, LearnedImplications,
    PathDelayFault, Polarity, Sensitization,
};
use pdf_logic::{Triple, Value};
use pdf_netlist::{Circuit, LineId, LineKind};
use pdf_paths::{ClassCounts, PathClass, PathStore};

use crate::diagnostic::{codes, Diagnostic};
use crate::lint::LintReport;
use crate::testability::switch_env;

/// Default cap on the number of cone inputs the depth-1 case split
/// tries per fault. Splitting is the expensive part of classification;
/// eight inputs keeps the pass linear in practice while catching the
/// reconvergent conflicts plain implication misses.
pub const DEFAULT_SENSITIZE_SPLIT_CAP: usize = 8;

/// Counters from one classification pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SensitizeStats {
    /// Paths classified (= store length).
    pub paths: usize,
    /// Paths proven false (both polarities unsensitizable).
    pub false_paths: usize,
    /// Paths proven robustly sensitizable (some polarity).
    pub robust_paths: usize,
    /// Paths with neither proof.
    pub unknown_paths: usize,
    /// Individual faults (path × polarity) proven false.
    pub false_faults: usize,
    /// Faults proven false only by the depth-1 case split — the
    /// elimination power this pass adds beyond rules 1/2 + learning.
    pub split_refuted: usize,
}

/// The result of classifying one path store against one circuit.
#[derive(Clone, Debug)]
pub struct SensitizeAnalysis {
    /// Per-path combined verdict, indexed like the store.
    path_class: Vec<PathClass>,
    /// Per-path, per-polarity false proofs (`[rise, fall]`).
    fault_false: Vec<[bool; 2]>,
    /// Pass counters.
    pub stats: SensitizeStats,
}

/// Classifies every path of `store` under the default split cap. See
/// [`classify_store_with`].
#[must_use]
pub fn classify_store(
    circuit: &Circuit,
    store: &PathStore,
    kind: Sensitization,
    learned: Option<&LearnedImplications>,
) -> SensitizeAnalysis {
    classify_store_with(circuit, store, kind, learned, DEFAULT_SENSITIZE_SPLIT_CAP)
}

/// Classifies every path of `store`: false / robust / unknown, per the
/// module docs. `learned` sharpens the implication closure exactly as in
/// fault-list elimination; `split_cap` bounds the depth-1 case split
/// (0 disables splitting).
#[must_use]
pub fn classify_store_with(
    circuit: &Circuit,
    store: &PathStore,
    kind: Sensitization,
    learned: Option<&LearnedImplications>,
    split_cap: usize,
) -> SensitizeAnalysis {
    let _phase = pdf_telemetry::Span::enter("sensitize");
    let mut stats = SensitizeStats::default();
    let mut path_class = Vec::with_capacity(store.len());
    let mut fault_false = Vec::with_capacity(store.len());
    for stored in store.iter() {
        let mut verdicts = [FaultVerdict::Unknown; 2];
        for (slot, polarity) in Polarity::BOTH.into_iter().enumerate() {
            let fault = PathDelayFault::new(stored.path.clone(), polarity);
            let verdict = classify_fault(circuit, &fault, kind, learned, split_cap, &mut stats);
            if matches!(verdict, FaultVerdict::False) {
                stats.false_faults += 1;
            }
            verdicts[slot] = verdict;
        }
        let class = combine(verdicts);
        match class {
            PathClass::False => stats.false_paths += 1,
            PathClass::Robust => stats.robust_paths += 1,
            PathClass::Unknown => stats.unknown_paths += 1,
        }
        stats.paths += 1;
        path_class.push(class);
        fault_false.push([
            matches!(verdicts[0], FaultVerdict::False),
            matches!(verdicts[1], FaultVerdict::False),
        ]);
    }
    pdf_telemetry::count(
        pdf_telemetry::counters::PATHS_CLASSIFIED,
        stats.paths as u64,
    );
    SensitizeAnalysis {
        path_class,
        fault_false,
        stats,
    }
}

impl SensitizeAnalysis {
    /// The combined verdict for the path at store `index`.
    #[must_use]
    pub fn path_class(&self, index: usize) -> PathClass {
        self.path_class.get(index).copied().unwrap_or_default()
    }

    /// `true` when the fault of the path at `index` with `polarity` is
    /// proven unsensitizable — the predicate
    /// [`FaultList::build_with_filter`](pdf_faults::FaultList::build_with_filter)
    /// consumes.
    #[must_use]
    pub fn is_false(&self, index: usize, polarity: Polarity) -> bool {
        let slot = match polarity {
            Polarity::SlowToRise => 0,
            Polarity::SlowToFall => 1,
        };
        self.fault_false.get(index).is_some_and(|f| f[slot])
    }

    /// Writes the per-path verdicts into the store's classification tags.
    pub fn tag_store(&self, store: &mut PathStore) {
        for (index, &class) in self.path_class.iter().enumerate() {
            store.set_class(index, class);
        }
    }

    /// Per-class totals; always sums to the number of classified paths.
    #[must_use]
    pub fn class_counts(&self) -> ClassCounts {
        ClassCounts {
            false_paths: self.stats.false_paths,
            robust: self.stats.robust_paths,
            unknown: self.stats.unknown_paths,
        }
    }
}

/// Per-fault verdict, before combining the two polarities of one path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultVerdict {
    False,
    Robust,
    Unknown,
}

/// Path verdict from the two fault verdicts: a path is false when *no*
/// transition can propagate, robust when *some* polarity provably can.
fn combine(verdicts: [FaultVerdict; 2]) -> PathClass {
    if verdicts.iter().all(|v| matches!(v, FaultVerdict::False)) {
        PathClass::False
    } else if verdicts.iter().any(|v| matches!(v, FaultVerdict::Robust)) {
        PathClass::Robust
    } else {
        PathClass::Unknown
    }
}

fn classify_fault(
    circuit: &Circuit,
    fault: &PathDelayFault,
    kind: Sensitization,
    learned: Option<&LearnedImplications>,
    split_cap: usize,
    stats: &mut SensitizeStats,
) -> FaultVerdict {
    let a = match fault_assignments(circuit, fault, kind) {
        Ok(a) => a,
        // Rule 1: the requirements conflict with each other.
        Err(ConditionError::Conflict { .. }) => return FaultVerdict::False,
        // Parity gates / malformed paths are outside this analysis.
        Err(_) => return FaultVerdict::Unknown,
    };
    // Rule 2 (+ learned closure): the implication fixpoint conflicts.
    let base = match Implicator::from_assignments_with(circuit, &a, learned) {
        Ok(imp) => imp,
        Err(_) => return FaultVerdict::False,
    };
    // Robust proof: every constrained line is directly drivable from a
    // primary input, so the requirement waveforms can simply be applied.
    if a.lines().all(|l| input_realizable(circuit, l)) {
        return FaultVerdict::Robust;
    }
    // Depth-1 case split: a cone input that conflicts under both
    // second-pattern values refutes every completion of A(p).
    if split_refutes(circuit, &base, &a, split_cap) {
        stats.split_refuted += 1;
        return FaultVerdict::False;
    }
    FaultVerdict::Unknown
}

/// `true` when `line` is a primary input or a fanout branch of one.
fn input_realizable(circuit: &Circuit, line: LineId) -> bool {
    match circuit.line(line).kind() {
        LineKind::Input => true,
        LineKind::Branch { stem } => circuit.line(*stem).kind().is_input(),
        LineKind::Gate(_) => false,
    }
}

/// Tries the depth-1 case split: over up to `cap` primary inputs of the
/// assignment set's fanin cone (in line-id order, skipping inputs whose
/// second-pattern value the base fixpoint already decided), assert 0 and
/// then 1 under the second pattern. If both assertions conflict for some
/// input, no test satisfies `A(p)`.
fn split_refutes(circuit: &Circuit, base: &Implicator<'_>, a: &Assignments, cap: usize) -> bool {
    if cap == 0 {
        return false;
    }
    let mut seen = vec![false; circuit.line_count()];
    let mut stack: Vec<LineId> = a.lines().collect();
    let mut cone_inputs = Vec::new();
    while let Some(l) = stack.pop() {
        if seen[l.index()] {
            continue;
        }
        seen[l.index()] = true;
        let line = circuit.line(l);
        match line.kind() {
            LineKind::Input => cone_inputs.push(l),
            LineKind::Branch { stem } => stack.push(*stem),
            LineKind::Gate(_) => stack.extend(line.fanin().iter().copied()),
        }
    }
    cone_inputs.sort_unstable();
    let mut tried = 0usize;
    for pi in cone_inputs {
        if base.value(pi).last().is_specified() {
            continue;
        }
        if tried >= cap {
            break;
        }
        tried += 1;
        let refuted = [Value::Zero, Value::One].into_iter().all(|v| {
            let mut imp = base.clone();
            imp.assign(pi, Triple::new(Value::X, Value::X, v)).is_err() || imp.propagate().is_err()
        });
        if refuted {
            return true;
        }
    }
    false
}

/// A line whose steady-state (second-pattern) value is provably fixed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstantLine {
    /// The constant line.
    pub line: LineId,
    /// The only value it can settle to.
    pub value: Value,
}

/// Finds every statically constant line: a line whose second-pattern
/// value `v` is implication-refutable is constant at `!v`. Runs one
/// single-assertion implication fixpoint per line and value, so it is
/// linear in practice.
#[must_use]
pub fn constant_lines(circuit: &Circuit) -> Vec<ConstantLine> {
    let mut constants = Vec::new();
    for &id in circuit.topo_order() {
        // Inputs are free by definition; branches mirror their stems.
        if !matches!(circuit.line(id).kind(), LineKind::Gate(_)) {
            continue;
        }
        for value in [Value::Zero, Value::One] {
            let mut imp = Implicator::new(circuit);
            let infeasible = imp
                .assign(id, Triple::new(Value::X, Value::X, value))
                .is_err()
                || imp.propagate().is_err();
            if infeasible {
                constants.push(ConstantLine {
                    line: id,
                    value: value.negate(),
                });
                break;
            }
        }
    }
    constants
}

/// Semantic lints over a circuit's value behaviour, complementing the
/// structural passes of [`lint_circuit`](crate::lint_circuit). All
/// findings are warnings — the circuit stays analyzable, but paths
/// through the flagged structure waste generation budget:
///
/// * `PDL008` — statically constant line ([`constant_lines`]);
/// * `PDL009` — never-sensitizable fanin edge: a sibling input is
///   constant at the gate's controlling value, so no transition on this
///   edge ever reaches the gate output;
/// * `PDL010` — reconvergence masking: a gate joins two fanout branches
///   of one stem, so its side inputs can never be set independently.
#[must_use]
pub fn lint_semantic(circuit: &Circuit) -> LintReport {
    let mut report = LintReport::new();
    let source = circuit.name().to_owned();
    let constants = constant_lines(circuit);
    let mut constant_at = vec![None; circuit.line_count()];
    for c in &constants {
        constant_at[c.line.index()] = Some(c.value);
        let name = circuit.line(c.line).name().to_owned();
        report.push(Diagnostic::warning(
            codes::CONSTANT,
            &source,
            Some(&name),
            format!(
                "line `{name}` is statically constant at {}; no path through it is testable",
                c.value
            ),
        ));
    }
    for &id in circuit.topo_order() {
        let line = circuit.line(id);
        let LineKind::Gate(kind) = line.kind() else {
            continue;
        };
        // PDL009: a sibling constant at the controlling value masks every
        // other fanin edge of this gate.
        if let Some(control) = kind.controlling_value() {
            for &f in line.fanin() {
                let constant = match circuit.line(f).kind() {
                    LineKind::Branch { stem } => {
                        constant_at[f.index()].or(constant_at[stem.index()])
                    }
                    _ => constant_at[f.index()],
                };
                if constant == Some(control) {
                    let gate = line.name().to_owned();
                    let culprit = circuit.line(f).name().to_owned();
                    report.push(Diagnostic::warning(
                        codes::UNSENSITIZABLE_EDGE,
                        &source,
                        Some(&gate),
                        format!(
                            "no fanin edge of `{gate}` is sensitizable: input `{culprit}` is \
                             constant at the controlling value {control}"
                        ),
                    ));
                    break;
                }
            }
        }
        // PDL010: two direct branches of one stem reconverge here.
        let mut stems: Vec<LineId> = line
            .fanin()
            .iter()
            .filter_map(|&f| match circuit.line(f).kind() {
                LineKind::Branch { stem } => Some(*stem),
                _ => None,
            })
            .collect();
        stems.sort_unstable();
        for pair in stems.windows(2) {
            if pair[0] == pair[1] {
                let gate = line.name().to_owned();
                let stem = circuit.line(pair[0]).name().to_owned();
                report.push(Diagnostic::warning(
                    codes::RECONVERGENCE,
                    &source,
                    Some(&gate),
                    format!(
                        "`{gate}` joins two fanout branches of `{stem}`: its side inputs \
                         reconverge and may mask transitions"
                    ),
                ));
                break;
            }
        }
        let _ = kind;
    }
    report
}

/// Reads the `PDF_SENSITIZE` toggle: `1`/`true`/`on` enables the static
/// sensitizability pass (path classification, false-path pre-elimination
/// and the semantic lints), `0`/`false`/`off`/unset disables it. Off
/// means byte-identical behavior to a build without the pass.
///
/// # Panics
///
/// Panics on an unrecognized value — the strict `PDF_*` parsing contract.
#[must_use]
pub fn sensitize_from_env() -> bool {
    switch_env("PDF_SENSITIZE")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_logic::GateKind;
    use pdf_netlist::iscas::s27;
    use pdf_netlist::CircuitBuilder;
    use pdf_paths::PathEnumerator;

    /// g = AND(a, NOT(a)) is constant 0; h = OR(y, g) keeps the circuit
    /// legal and gives g observable fanout.
    fn constant_gadget() -> Circuit {
        let mut b = CircuitBuilder::new("gadget");
        let a = b.input("a");
        let y = b.input("y");
        let a1 = b.branch("a1", a);
        let a2 = b.branch("a2", a);
        let n = b.gate("n", GateKind::Not, &[a2]);
        let g = b.gate("g", GateKind::And, &[a1, n]);
        let h = b.gate("h", GateKind::Or, &[y, g]);
        b.mark_output(h);
        b.finish().unwrap()
    }

    #[test]
    fn constant_line_is_found() {
        let c = constant_gadget();
        let constants = constant_lines(&c);
        let g = c.find_line("g").unwrap();
        assert!(
            constants
                .iter()
                .any(|cl| cl.line == g && cl.value == Value::Zero),
            "{constants:?}"
        );
    }

    #[test]
    fn semantic_lints_fire_on_the_gadget() {
        let c = constant_gadget();
        let report = lint_semantic(&c);
        assert!(!report.has_errors(), "semantic findings are warnings");
        let codes_found: Vec<&str> = report.iter().map(|d| d.code).collect();
        assert!(codes_found.contains(&codes::CONSTANT), "{codes_found:?}");
    }

    #[test]
    fn reconvergence_lint_fires_on_direct_branch_join() {
        // g = AND(a1, a2) with both fanins branches of stem a.
        let mut b = CircuitBuilder::new("reconv");
        let a = b.input("a");
        let a1 = b.branch("a1", a);
        let a2 = b.branch("a2", a);
        let g = b.gate("g", GateKind::And, &[a1, a2]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        let report = lint_semantic(&c);
        assert!(report.iter().any(|d| d.code == codes::RECONVERGENCE));
    }

    #[test]
    fn unsensitizable_edge_lint_fires() {
        // k = AND(x, g) where g is constant 0 (controlling for AND).
        let mut b = CircuitBuilder::new("mask");
        let a = b.input("a");
        let x = b.input("x");
        let a1 = b.branch("a1", a);
        let a2 = b.branch("a2", a);
        let n = b.gate("n", GateKind::Not, &[a2]);
        let g = b.gate("g", GateKind::And, &[a1, n]);
        let k = b.gate("k", GateKind::And, &[x, g]);
        b.mark_output(k);
        let c = b.finish().unwrap();
        let report = lint_semantic(&c);
        assert!(report.iter().any(|d| d.code == codes::UNSENSITIZABLE_EDGE));
    }

    #[test]
    fn s27_is_semantically_clean_and_classifies_fully() {
        let c = s27();
        assert!(lint_semantic(&c).is_clean());
        let store = PathEnumerator::new(&c).with_cap(10_000).enumerate().store;
        let analysis = classify_store(&c, &store, Sensitization::Robust, None);
        assert_eq!(analysis.stats.paths, store.len());
        assert_eq!(analysis.class_counts().total(), store.len());
        // s27 has no false paths: the fault list keeps every candidate
        // that rules 1/2 keep, and classification must agree.
        let (plain, stats) = pdf_faults::FaultList::build_with(&c, &store, Sensitization::Robust);
        let (filtered, fstats) = pdf_faults::FaultList::build_with_filter(
            &c,
            &store,
            Sensitization::Robust,
            None,
            Some(&|i, p| analysis.is_false(i, p)),
        );
        assert_eq!(
            fstats.sensitize_eliminated,
            stats.rule1_conflicts + stats.rule2_conflicts,
            "on s27 the false faults are exactly the rule-eliminated ones"
        );
        assert_eq!(plain.len(), filtered.len());
    }

    #[test]
    fn constant_cone_paths_classify_false() {
        let c = constant_gadget();
        let store = PathEnumerator::new(&c).with_cap(10_000).enumerate().store;
        let analysis = classify_store(&c, &store, Sensitization::Robust, None);
        // Paths through the constant gate g can never launch or
        // propagate a transition: they must be classified false.
        let g = c.find_line("g").unwrap();
        for (i, stored) in store.iter().enumerate() {
            if stored.path.lines().contains(&g) {
                assert_eq!(analysis.path_class(i), PathClass::False, "{}", stored.path);
            }
        }
        let mut store = store;
        analysis.tag_store(&mut store);
        assert_eq!(store.class_counts().false_paths, analysis.stats.false_paths);
    }

    #[test]
    fn single_gate_paths_classify_robust() {
        // z = AND(x, y): both paths constrain only primary inputs, so
        // classification proves them robustly sensitizable.
        let mut b = CircuitBuilder::new("and2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.gate("z", GateKind::And, &[x, y]);
        b.mark_output(z);
        let c = b.finish().unwrap();
        let store = PathEnumerator::new(&c).with_cap(100).enumerate().store;
        let analysis = classify_store(&c, &store, Sensitization::Robust, None);
        assert_eq!(analysis.stats.robust_paths, store.len());
        assert_eq!(analysis.stats.false_paths, 0);
    }

    #[test]
    fn sensitize_env_default_off() {
        assert!(!sensitize_from_env());
    }
}
