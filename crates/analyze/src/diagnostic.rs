//! Typed lint diagnostics with named-line context.
//!
//! Everything the analysis layer reports — linter findings, parse
//! failures, implication conflicts — funnels through [`Diagnostic`] so
//! users always see `source:line-name: message` with a stable `PDLxxx`
//! code, never a raw [`LineId`](pdf_netlist::LineId) or an unlocated
//! token.

use core::fmt;

use pdf_faults::ImplicationConflict;
use pdf_netlist::{BenchParseError, Circuit, CircuitError, NetlistError, NetlistParseError};

/// Stable diagnostic codes, one per defect class.
pub mod codes {
    /// Parse or structural-validation failure outside the other classes.
    pub const PARSE: &str = "PDL000";
    /// Combinational cycle.
    pub const CYCLE: &str = "PDL001";
    /// Floating, undriven, or dangling line.
    pub const FLOATING: &str = "PDL002";
    /// Fanout-branch inconsistency (missing, mixed, or redundant branches).
    pub const BRANCH: &str = "PDL003";
    /// Gate whose output reaches no primary output (dead logic).
    pub const UNREACHABLE: &str = "PDL004";
    /// Duplicate name (two lines sharing a name, or a signal defined twice).
    pub const DUPLICATE: &str = "PDL005";
    /// Output cone containing no primary input (width-0 cone).
    pub const EMPTY_CONE: &str = "PDL006";
    /// Implication conflict (contradictory value requirements on a line).
    pub const CONFLICT: &str = "PDL007";
    /// Statically constant line (its steady-state value is provably fixed).
    pub const CONSTANT: &str = "PDL008";
    /// Never-sensitizable gate fanin edge (a sibling input is constant at
    /// the gate's controlling value).
    pub const UNSENSITIZABLE_EDGE: &str = "PDL009";
    /// Reconvergence masking (a gate directly joins two fanout branches
    /// of one stem, so its side inputs cannot be set independently).
    pub const RECONVERGENCE: &str = "PDL010";
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but analyzable; reported and ignored.
    Warning,
    /// The netlist cannot be analyzed soundly; aborts under `PDF_LINT=deny`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One located finding.
///
/// Renders as `severity[code] source:line-name: message`; the line
/// segment is omitted when the finding is not tied to a nameable line.
///
/// ```
/// use pdf_analyze::{codes, Diagnostic};
///
/// let d = Diagnostic::error(codes::FLOATING, "c17", Some("G3"), "input is never used");
/// assert_eq!(d.to_string(), "error[PDL002] c17:G3: input is never used");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The `PDLxxx` code (see [`codes`]).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// The circuit or file the finding belongs to.
    pub source: String,
    /// The named line or signal, when the finding is tied to one.
    pub line: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    #[must_use]
    pub fn error(
        code: &'static str,
        source: impl Into<String>,
        line: Option<&str>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            source: source.into(),
            line: line.map(str::to_owned),
            message: message.into(),
        }
    }

    /// Creates a warning-severity diagnostic.
    #[must_use]
    pub fn warning(
        code: &'static str,
        source: impl Into<String>,
        line: Option<&str>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, source, line, message)
        }
    }

    /// Maps a typed `.bench` parse failure onto its diagnostic class.
    #[must_use]
    pub fn from_bench_error(source: &str, error: &BenchParseError) -> Diagnostic {
        match error {
            BenchParseError::Netlist(e) => Diagnostic::from_netlist_error(source, e),
            BenchParseError::Syntax { line, text } => Diagnostic::error(
                codes::PARSE,
                source,
                None,
                format!("line {line}: unparseable statement `{text}`"),
            ),
            BenchParseError::UnknownFunction { line, function } => Diagnostic::error(
                codes::PARSE,
                source,
                None,
                format!("line {line}: unknown gate function `{function}`"),
            ),
            BenchParseError::BadDffArity { line } => Diagnostic::error(
                codes::PARSE,
                source,
                None,
                format!("line {line}: DFF must have exactly one input"),
            ),
        }
    }

    /// Maps a netlist-validation failure onto its diagnostic class.
    #[must_use]
    pub fn from_netlist_error(source: &str, error: &NetlistError) -> Diagnostic {
        match error {
            NetlistError::MultipleDrivers { signal } => Diagnostic::error(
                codes::DUPLICATE,
                source,
                Some(signal),
                format!("signal `{signal}` has multiple drivers"),
            ),
            NetlistError::Undriven { signal } => Diagnostic::error(
                codes::FLOATING,
                source,
                Some(signal),
                format!("signal `{signal}` is undriven"),
            ),
            NetlistError::UnknownSignal { signal } => Diagnostic::error(
                codes::FLOATING,
                source,
                Some(signal),
                format!("signal `{signal}` is referenced but never defined"),
            ),
            NetlistError::CombinationalCycle => Diagnostic::error(
                codes::CYCLE,
                source,
                None,
                "gates form a combinational cycle",
            ),
            NetlistError::Circuit(e) => Diagnostic::from_circuit_error(source, e),
            other => Diagnostic::error(codes::PARSE, source, None, other.to_string()),
        }
    }

    /// Maps a line-level circuit-validation failure onto its class.
    #[must_use]
    pub fn from_circuit_error(source: &str, error: &CircuitError) -> Diagnostic {
        match error {
            CircuitError::Cyclic => Diagnostic::error(
                codes::CYCLE,
                source,
                None,
                "lines form a combinational cycle",
            ),
            CircuitError::Dangling { line } => Diagnostic::error(
                codes::FLOATING,
                source,
                Some(line),
                format!("non-output line `{line}` has no fanout"),
            ),
            CircuitError::MissingBranch { line } => Diagnostic::error(
                codes::BRANCH,
                source,
                Some(line),
                format!("multi-sink stem `{line}` must fan out through branch lines only"),
            ),
            CircuitError::OutputWithFanout { line } => Diagnostic::error(
                codes::BRANCH,
                source,
                Some(line),
                format!("output line `{line}` has fanout"),
            ),
            other => Diagnostic::error(codes::PARSE, source, None, other.to_string()),
        }
    }

    /// Wraps a located `.bench` file/parse failure. Prefer
    /// [`Diagnostic::from_bench_error`] when the typed error is still at
    /// hand — this variant can only classify by location, not by cause.
    #[must_use]
    pub fn from_parse_error(error: &NetlistParseError) -> Diagnostic {
        let message = match (error.line(), error.token()) {
            (Some(line), Some(token)) => {
                format!("line {line}: {} (near `{token}`)", error.message())
            }
            (Some(line), None) => format!("line {line}: {}", error.message()),
            (None, Some(token)) => format!("{} (near `{token}`)", error.message()),
            (None, None) => error.message().to_owned(),
        };
        Diagnostic::error(codes::PARSE, error.source_name(), None, message)
    }

    /// Renders an implication conflict with the line's *name* instead of
    /// its raw id.
    #[must_use]
    pub fn implication_conflict(circuit: &Circuit, conflict: &ImplicationConflict) -> Diagnostic {
        let name = circuit.line(conflict.line).name().to_owned();
        Diagnostic::error(
            codes::CONFLICT,
            circuit.name(),
            Some(&name),
            format!("implications assign conflicting values to line `{name}`"),
        )
    }

    /// Returns `true` for error severity.
    #[inline]
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.source)?;
        if let Some(line) = &self.line {
            write!(f, ":{line}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        let d = Diagnostic::error(
            codes::CYCLE,
            "bad",
            None,
            "gates form a combinational cycle",
        );
        assert_eq!(
            d.to_string(),
            "error[PDL001] bad: gates form a combinational cycle"
        );
        let d = Diagnostic::warning(codes::BRANCH, "c", Some("s1"), "redundant branch");
        assert_eq!(d.to_string(), "warning[PDL003] c:s1: redundant branch");
    }

    #[test]
    fn netlist_errors_map_to_stable_codes() {
        let cases = [
            (
                NetlistError::MultipleDrivers { signal: "z".into() },
                codes::DUPLICATE,
            ),
            (
                NetlistError::Undriven { signal: "q".into() },
                codes::FLOATING,
            ),
            (
                NetlistError::UnknownSignal {
                    signal: "ghost".into(),
                },
                codes::FLOATING,
            ),
            (NetlistError::CombinationalCycle, codes::CYCLE),
            (NetlistError::Sequential, codes::PARSE),
        ];
        for (err, code) in cases {
            let d = Diagnostic::from_netlist_error("t", &err);
            assert_eq!(d.code, code, "{err:?}");
            assert!(d.is_error());
        }
    }

    #[test]
    fn implication_conflict_names_the_line() {
        let circuit = pdf_netlist::iscas::s27();
        let line = circuit.find_line("G10").unwrap();
        let d = Diagnostic::implication_conflict(&circuit, &ImplicationConflict { line });
        assert_eq!(d.code, codes::CONFLICT);
        assert_eq!(d.line.as_deref(), Some("G10"));
        assert!(d.to_string().contains("s27:G10"));
        assert!(!d.to_string().contains(&format!("line {}", line)));
    }

    #[test]
    fn parse_error_keeps_location_context() {
        let err = pdf_netlist::parse_bench_named("INPUT(a\n", "bad", "bad.bench").unwrap_err();
        let d = Diagnostic::from_parse_error(&err);
        assert_eq!(d.code, codes::PARSE);
        assert_eq!(d.source, "bad.bench");
        assert!(d.message.contains("line 1"), "{}", d.message);
    }
}
