//! Static analysis for path-delay ATPG: netlist linting and static
//! implication learning.
//!
//! Two cooperating front-door passes run before any budgeted analysis:
//!
//! * **Structural linting** ([`lint_netlist`], [`lint_circuit`]) finds
//!   defects that parsing and builder validation let through — dead
//!   gates, unused inputs, width-0 output cones, duplicate line names,
//!   redundant branches — and reports them as typed [`Diagnostic`]s with
//!   `source:line-name` context and stable `PDLxxx` codes. The `PDF_LINT`
//!   variable ([`LintMode`]) decides whether errors abort (`deny`,
//!   default), print (`warn`), or are skipped (`off`).
//! * **Static learning** ([`learn_implications`]) runs SOCRATES-style
//!   contrapositive learning plus depth-1 branch-and-intersect
//!   (recursive learning) once per circuit and returns a
//!   [`pdf_faults::LearnedImplications`] closure table that the
//!   implication engine and the fault-list elimination pass consult to
//!   kill more provably-untestable faults before enumeration and
//!   justification spend any budget. Toggled by `PDF_STATIC_LEARNING`
//!   ([`static_learning_from_env`]); off by default, and byte-identical
//!   outputs are guaranteed when off.
//! * **Path sensitizability** ([`classify_store`]) statically sorts every
//!   candidate path delay fault into *false* / *robust* / *unknown*
//!   without enumerating tests; the false verdicts pre-eliminate faults
//!   through [`FaultList::build_with_filter`](pdf_faults::FaultList::build_with_filter)
//!   and power the semantic lints `PDL008`–`PDL010` ([`lint_semantic`]).
//!   Toggled by `PDF_SENSITIZE` ([`sensitize_from_env`]).
//! * **SCOAP testability** ([`Testability`]) computes `CC0`/`CC1`/`CO` in
//!   two topological sweeps to order guided-search branching and fault
//!   selection. Toggled by `PDF_SCOAP` ([`scoap_from_env`]).
//!
//! # Example
//!
//! ```
//! use pdf_analyze::{learn_implications, lint_circuit};
//! use pdf_faults::{FaultList, Sensitization};
//! use pdf_netlist::iscas::s27;
//! use pdf_paths::PathEnumerator;
//!
//! let circuit = s27();
//! assert!(!lint_circuit(&circuit).has_errors());
//!
//! let table = learn_implications(&circuit);
//! let paths = PathEnumerator::new(&circuit).enumerate();
//! let (_faults, stats) =
//!     FaultList::build_with_learned(&circuit, &paths.store, Sensitization::Robust, Some(&table));
//! // The table only ever removes faults the plain rules would keep.
//! assert_eq!(
//!     stats.candidates,
//!     _faults.len() + stats.rule1_conflicts + stats.rule2_conflicts + stats.statically_eliminated
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnostic;
mod learning;
mod lint;
mod sensitize;
mod testability;

pub use diagnostic::{codes, Diagnostic, Severity};
pub use learning::{
    learn_implications, learn_implications_with_cap, static_learning_from_env, DEFAULT_SPLIT_CAP,
};
pub use lint::{lint_circuit, lint_netlist, LintMode, LintReport};
pub use sensitize::{
    classify_store, classify_store_with, constant_lines, lint_semantic, sensitize_from_env,
    ConstantLine, SensitizeAnalysis, SensitizeStats, DEFAULT_SENSITIZE_SPLIT_CAP,
};
pub use testability::{scoap_from_env, Testability};
