//! SCOAP-style testability analysis.
//!
//! One forward topological sweep computes the combinational
//! controllabilities `CC0`/`CC1` (the classic Goldstein measures: the
//! minimum number of line assignments needed to set a line to 0/1), and
//! one backward sweep computes the observability `CO` (assignments needed
//! to propagate the line to a primary output). All arithmetic saturates
//! at `u32::MAX` so reconvergent blow-ups stay ordered instead of
//! wrapping.
//!
//! The measures feed two consumers:
//!
//! * the justifier's guided completion phase, where they replace the
//!   random branch pick with a deterministic hardest-line-first,
//!   easiest-value decision (via `pdf_atpg`'s guide hook), and
//! * the generation session's primary fault ordering, where a fault's
//!   difficulty is the summed controllability cost of its necessary
//!   assignment set.

use pdf_logic::{GateKind, Value};
use pdf_netlist::{Circuit, LineId, LineKind};

/// Per-line SCOAP measures of one circuit.
///
/// # Example
///
/// ```
/// use pdf_analyze::Testability;
/// use pdf_netlist::iscas::s27;
///
/// let circuit = s27();
/// let t = Testability::of(&circuit);
/// let input = circuit.inputs()[0];
/// assert_eq!(t.cc0(input), 1);
/// assert_eq!(t.cc1(input), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Testability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Testability {
    /// Computes the measures in one forward and one backward topological
    /// pass over `circuit`.
    #[must_use]
    pub fn of(circuit: &Circuit) -> Testability {
        let n = circuit.line_count();
        let mut cc0 = vec![0u32; n];
        let mut cc1 = vec![0u32; n];
        for &id in circuit.topo_order() {
            let line = circuit.line(id);
            let (c0, c1) = match line.kind() {
                LineKind::Input => (1, 1),
                LineKind::Branch { stem } => (cc0[stem.index()], cc1[stem.index()]),
                LineKind::Gate(kind) => gate_controllability(*kind, line.fanin(), &cc0, &cc1),
            };
            cc0[id.index()] = c0;
            cc1[id.index()] = c1;
        }

        let mut co = vec![u32::MAX; n];
        for &id in circuit.topo_order().iter().rev() {
            let line = circuit.line(id);
            if line.is_output() {
                co[id.index()] = 0;
                continue;
            }
            // Every sink is topologically later, so its CO is already
            // final in this reverse sweep: a gate input pays the sink's
            // CO plus its siblings' non-controlling costs, a stem
            // observes through its cheapest branch for free.
            co[id.index()] = line
                .fanout()
                .iter()
                .map(|&f| sink_observability(circuit, f, id, &cc0, &cc1, &co))
                .min()
                .unwrap_or(u32::MAX);
        }
        Testability { cc0, cc1, co }
    }

    /// `CC0`: cost of setting `line` to 0.
    #[inline]
    #[must_use]
    pub fn cc0(&self, line: LineId) -> u32 {
        self.cc0[line.index()]
    }

    /// `CC1`: cost of setting `line` to 1.
    #[inline]
    #[must_use]
    pub fn cc1(&self, line: LineId) -> u32 {
        self.cc1[line.index()]
    }

    /// `CO`: cost of observing `line` at a primary output (`u32::MAX`
    /// for unobservable lines).
    #[inline]
    #[must_use]
    pub fn co(&self, line: LineId) -> u32 {
        self.co[line.index()]
    }

    /// Cost of controlling `line` to `value` (`X` costs nothing).
    #[must_use]
    pub fn control_cost(&self, line: LineId, value: Value) -> u32 {
        match value {
            Value::Zero => self.cc0(line),
            Value::One => self.cc1(line),
            Value::X => 0,
        }
    }

    /// A line's overall difficulty: the harder controllability plus the
    /// observability, saturating. Orders lines for guided search and
    /// faults (via their assignment sets) for generation.
    #[must_use]
    pub fn difficulty(&self, line: LineId) -> u32 {
        let cc = self.cc0(line).max(self.cc1(line));
        cc.saturating_add(self.co(line))
    }

    /// The raw `CC0` table, indexed by [`LineId::index`] — the shape the
    /// justifier's guide hook consumes.
    #[must_use]
    pub fn cc0_table(&self) -> &[u32] {
        &self.cc0
    }

    /// The raw `CC1` table, indexed by [`LineId::index`].
    #[must_use]
    pub fn cc1_table(&self) -> &[u32] {
        &self.cc1
    }
}

/// SCOAP controllabilities of a gate output from its input tables.
fn gate_controllability(kind: GateKind, fanin: &[LineId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let sum = |table: &[u32]| {
        fanin
            .iter()
            .fold(0u32, |a, f| a.saturating_add(table[f.index()]))
            .saturating_add(1)
    };
    let min = |table: &[u32]| {
        fanin
            .iter()
            .map(|f| table[f.index()])
            .min()
            .unwrap_or(0)
            .saturating_add(1)
    };
    match kind {
        GateKind::Buf => (min(cc0), min(cc1)),
        GateKind::Not => (min(cc1), min(cc0)),
        GateKind::And => (min(cc0), sum(cc1)),
        GateKind::Nand => (sum(cc1), min(cc0)),
        GateKind::Or => (sum(cc0), min(cc1)),
        GateKind::Nor => (min(cc1), sum(cc0)),
        GateKind::Xor | GateKind::Xnor => {
            // Fold the classic two-input parity rule across the fanin.
            let mut acc: Option<(u32, u32)> = None;
            for f in fanin {
                let (b0, b1) = (cc0[f.index()], cc1[f.index()]);
                acc = Some(match acc {
                    None => (b0, b1),
                    Some((a0, a1)) => (
                        a0.saturating_add(b0).min(a1.saturating_add(b1)),
                        a0.saturating_add(b1).min(a1.saturating_add(b0)),
                    ),
                });
            }
            let (even, odd) = acc.unwrap_or((0, 0));
            let (c0, c1) = if matches!(kind, GateKind::Xor) {
                (even, odd)
            } else {
                (odd, even)
            };
            (c0.saturating_add(1), c1.saturating_add(1))
        }
    }
}

/// The cost of observing `through` (a fanin of gate-or-branch `sink`) at
/// a primary output: the sink's own observability plus the cost of
/// holding every sibling input at the sink gate's non-controlling value.
fn sink_observability(
    circuit: &Circuit,
    sink: LineId,
    through: LineId,
    cc0: &[u32],
    cc1: &[u32],
    co: &[u32],
) -> u32 {
    let sink_line = circuit.line(sink);
    let base = co[sink.index()];
    let LineKind::Gate(kind) = sink_line.kind() else {
        // Branch sink: identity, no sibling cost.
        return base;
    };
    let siblings = sink_line.fanin().iter().filter(|&&f| f != through);
    let sibling_cost = match kind.noncontrolling_value() {
        Some(Value::Zero) => siblings.fold(0u32, |a, f| a.saturating_add(cc0[f.index()])),
        Some(Value::One) => siblings.fold(0u32, |a, f| a.saturating_add(cc1[f.index()])),
        // Parity or single-input gate: a sibling passes the transition
        // whichever value it holds; charge its cheaper side.
        _ => siblings.fold(0u32, |a, f| {
            a.saturating_add(cc0[f.index()].min(cc1[f.index()]))
        }),
    };
    base.saturating_add(sibling_cost).saturating_add(1)
}

/// Reads the `PDF_SCOAP` toggle: `1`/`true`/`on` enables SCOAP testability
/// guidance, `0`/`false`/`off`/unset disables it.
///
/// # Panics
///
/// Panics on an unrecognized value — the strict `PDF_*` parsing contract.
#[must_use]
pub fn scoap_from_env() -> bool {
    switch_env("PDF_SCOAP")
}

/// Shared strict parser for boolean `PDF_*` switches.
pub(crate) fn switch_env(name: &str) -> bool {
    match std::env::var(name) {
        Err(_) => false,
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => true,
            "0" | "false" | "off" | "" => false,
            other => {
                panic!("{name}: unrecognized value `{other}` (want 0|1|true|false|on|off)")
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::CircuitBuilder;

    #[test]
    fn and2_controllabilities() {
        let mut b = CircuitBuilder::new("and2");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate("g", GateKind::And, &[x, y]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        let t = Testability::of(&c);
        // AND: CC0 = min(1,1)+1 = 2; CC1 = 1+1+1 = 3.
        assert_eq!(t.cc0(g), 2);
        assert_eq!(t.cc1(g), 3);
        assert_eq!(t.co(g), 0);
        // Observing x needs y at non-controlling 1: CO = 0 + CC1(y) + 1.
        assert_eq!(t.co(x), 2);
        assert_eq!(t.difficulty(x), 3);
    }

    #[test]
    fn inverter_swaps_controllabilities() {
        let mut b = CircuitBuilder::new("inv");
        let x = b.input("x");
        let g = b.gate("g", GateKind::Not, &[x]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        let t = Testability::of(&c);
        assert_eq!(t.cc0(g), 2); // needs x = 1
        assert_eq!(t.cc1(g), 2); // needs x = 0
        assert_eq!(t.co(x), 1);
    }

    #[test]
    fn stem_observes_through_cheapest_branch() {
        // s fans out to an AND (expensive sibling chain) and a NOT
        // (free): the stem must take the NOT's cost.
        let mut b = CircuitBuilder::new("fan");
        let s = b.input("s");
        let x = b.input("x");
        let y = b.input("y");
        let s1 = b.branch("s1", s);
        let s2 = b.branch("s2", s);
        let big = b.gate("big", GateKind::And, &[x, y]);
        let g1 = b.gate("g1", GateKind::And, &[s1, big]);
        let g2 = b.gate("g2", GateKind::Not, &[s2]);
        b.mark_output(g1);
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let t = Testability::of(&c);
        // Branch controllabilities mirror the stem's.
        assert_eq!(t.cc0(s1), t.cc0(s));
        // Through g2: CO = 0 + 1 = 1. Through g1: 0 + CC1(big) + 1 = 4.
        assert_eq!(t.co(s2), 1);
        assert_eq!(t.co(s1), 4);
        assert_eq!(t.co(s), 1);
    }

    #[test]
    fn scoap_sweeps_cover_s27() {
        let c = pdf_netlist::iscas::s27();
        let t = Testability::of(&c);
        for &id in c.topo_order() {
            assert!(t.cc0(id) >= 1, "line {id} CC0");
            assert!(t.cc1(id) >= 1, "line {id} CC1");
            assert!(t.co(id) < u32::MAX, "line {id} CO unobservable");
        }
    }

    #[test]
    fn env_switch_parses_strictly() {
        // The default (unset) is off; the parser itself is exercised via
        // the shared helper against a variable this test owns.
        assert!(!scoap_from_env());
    }
}
