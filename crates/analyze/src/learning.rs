//! Static implication learning, run once per circuit.
//!
//! Two rounds per asserted literal:
//!
//! 1. **Direct contrapositives** (SOCRATES-style). For every line `l`,
//!    outer slot `s ∈ {α1, α3}` and value `v ∈ {0, 1}`, assert the single
//!    requirement `l.s = v` on a fresh [`Implicator`], propagate to the
//!    fixpoint, and for every implied literal `m.s' = w` on another line
//!    store the contrapositive `m.s' = ¬w ⇒ l.s = ¬v` in the
//!    [`LearnedImplications`] closure table. The forward direction is not
//!    stored — the implicator rederives it structurally — so round 1
//!    holds exactly the indirect implications the engine's local rules
//!    miss.
//! 2. **Depth-1 branch-and-intersect** (recursive learning, depth one).
//!    Direct propagation is blind to implications that hold for *every*
//!    value of some undecided line but follow from neither value alone —
//!    the signature of reconvergent redundancy. For each unspecified
//!    *frontier* line `f` (a fanin slot of a gate the round-1 fixpoint
//!    already touched), clone the fixpoint twice, assert `f.s = 0` and
//!    `f.s = 1`, and propagate both. Outer literals specified identically
//!    in both branch fixpoints (or in the single consistent branch, when
//!    the other conflicts) hold under the antecedent unconditionally,
//!    because outer components are binary in every completed test. Each
//!    such literal `m.s' = w` that round 1 did not already derive is
//!    stored in *both* directions: `l.s = v ⇒ m.s' = w` and the
//!    contrapositive `m.s' = ¬w ⇒ l.s = ¬v`.
//!
//! Soundness rests on two facts:
//!
//! * outer components are binary in every completed two-pattern test, so
//!   `≠ v` really is `= ¬v` and a case split on `f.s` is exhaustive —
//!   which is why mid (`α2`) components, which may legitimately stay `x`
//!   (*may glitch*), are never learned from, into, or split on (see
//!   [`pdf_faults::Literal`]);
//! * the propagation behind every recorded literal is itself sound: every
//!   test satisfying the antecedent satisfies the consequent.
//!
//! When asserting `l.s = v` *conflicts* outright, the literal is
//! unsatisfiable and nothing is learned from it — rule-1/rule-2
//! elimination already kills any fault requiring it.

use pdf_faults::{Implicator, LearnedImplications, Literal};
use pdf_logic::{Triple, Value};
use pdf_netlist::{Circuit, LineId, LineKind};

/// Default cap on depth-1 case splits tried per asserted literal.
///
/// Learning cost is `4 · lines · (1 + cap)` propagations; the default
/// keeps the pass under a few seconds on the largest stand-ins while
/// still reaching the frontier lines that guard reconvergent redundancy.
pub const DEFAULT_SPLIT_CAP: usize = 24;

/// Runs the one-off static learning pass with [`DEFAULT_SPLIT_CAP`].
///
/// The learned count is reported on the `learned_implications` telemetry
/// counter.
///
/// # Example
///
/// ```
/// use pdf_analyze::learn_implications;
/// use pdf_netlist::iscas::s27;
///
/// let circuit = s27();
/// let table = learn_implications(&circuit);
/// // s27's reconvergent fanout yields indirect implications.
/// assert!(!table.is_empty());
/// ```
#[must_use]
pub fn learn_implications(circuit: &Circuit) -> LearnedImplications {
    learn_implications_with_cap(circuit, DEFAULT_SPLIT_CAP)
}

/// Runs the learning pass with an explicit per-literal split cap.
///
/// `split_cap = 0` disables round 2 and yields pure contrapositive
/// learning.
#[must_use]
pub fn learn_implications_with_cap(circuit: &Circuit, split_cap: usize) -> LearnedImplications {
    let _span = pdf_telemetry::Span::enter("static_learning");
    let mut table = LearnedImplications::new(circuit.line_count());
    for (id, _) in circuit.iter() {
        for slot in [0usize, 2] {
            for value in [Value::Zero, Value::One] {
                learn_from_assertion(circuit, id, slot, value, split_cap, &mut table);
            }
        }
    }
    pdf_telemetry::count(
        pdf_telemetry::counters::LEARNED_IMPLICATIONS,
        table.len() as u64,
    );
    table
}

/// Asserts `line.slot = value`, propagates, records round-1
/// contrapositives, then branch-and-intersects over the frontier.
fn learn_from_assertion(
    circuit: &Circuit,
    line: LineId,
    slot: usize,
    value: Value,
    split_cap: usize,
    table: &mut LearnedImplications,
) {
    let mut imp = Implicator::new(circuit);
    let req = single_component(slot, value);
    if imp.assign(line, req).is_err() || imp.propagate().is_err() {
        // The literal itself is unsatisfiable; nothing to learn — any
        // fault requiring it already dies under rule 2.
        return;
    }
    let antecedent = Literal::new(line, slot, value);

    // Round 1: direct contrapositives of the plain fixpoint.
    for (idx, &implied) in imp.values().iter().enumerate() {
        let m = LineId::new(idx);
        if m == line {
            continue;
        }
        for (cons_slot, w) in [(0usize, implied.first()), (2, implied.last())] {
            if !w.is_specified() {
                continue;
            }
            // (l.s = v) ⇒ (m.s' = w), so (m.s' = ¬w) ⇒ (l.s = ¬v).
            let consequent = Literal::new(m, cons_slot, w);
            table.add(consequent.negated(), antecedent.negated());
        }
    }

    // Round 2: depth-1 branch-and-intersect over the frontier.
    let base: Vec<Triple> = imp.values().to_vec();
    for (split, split_slot) in frontier_splits(circuit, &base, split_cap) {
        let branch = |v: Value| -> Option<Vec<Triple>> {
            let mut b = imp.clone();
            if b.assign(split, single_component(split_slot, v)).is_ok() && b.propagate().is_ok() {
                Some(b.values().to_vec())
            } else {
                None
            }
        };
        let merged: Vec<Triple> = match (branch(Value::Zero), branch(Value::One)) {
            // Both values consistent: keep what the branches agree on.
            (Some(f0), Some(f1)) => f0
                .iter()
                .zip(&f1)
                .map(|(a, b)| {
                    Triple::new(
                        if a.first() == b.first() {
                            a.first()
                        } else {
                            Value::X
                        },
                        Value::X,
                        if a.last() == b.last() {
                            a.last()
                        } else {
                            Value::X
                        },
                    )
                })
                .collect(),
            // One value conflicts: the other is forced, its fixpoint holds.
            (Some(f), None) | (None, Some(f)) => f,
            // Both conflict: the antecedent is unsatisfiable after all —
            // leave that to rule-2; record nothing.
            (None, None) => continue,
        };
        for (idx, &t) in merged.iter().enumerate() {
            let m = LineId::new(idx);
            if m == line {
                continue;
            }
            for (cons_slot, w) in [(0usize, t.first()), (2, t.last())] {
                // Only record what round 1 could not already see.
                if !w.is_specified() || component(base[idx], cons_slot).is_specified() {
                    continue;
                }
                let consequent = Literal::new(m, cons_slot, w);
                // Split-derived implications are invisible to the
                // engine's structural rules, so store both directions.
                table.add(antecedent, consequent);
                table.add(consequent.negated(), antecedent.negated());
            }
        }
    }
}

/// Split candidates: unspecified outer slots of fanins of gates the
/// fixpoint already touched (output or some sibling fanin specified in
/// that slot). Branch lines resolve to their stems so the candidate list
/// is not inflated by equivalent splits.
fn frontier_splits(circuit: &Circuit, values: &[Triple], cap: usize) -> Vec<(LineId, usize)> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    if cap == 0 {
        return out;
    }
    for (id, line) in circuit.iter() {
        if !line.kind().is_gate() {
            continue;
        }
        for slot in [0usize, 2] {
            let out_spec = component(values[id.index()], slot).is_specified();
            let any_in_spec = line
                .fanin()
                .iter()
                .any(|f| component(values[f.index()], slot).is_specified());
            if !out_spec && !any_in_spec {
                continue;
            }
            for &f in line.fanin() {
                if component(values[f.index()], slot).is_specified() {
                    continue;
                }
                let stem = match circuit.line(f).kind() {
                    LineKind::Branch { stem } => *stem,
                    _ => f,
                };
                if seen.insert((stem, slot)) {
                    out.push((stem, slot));
                    if out.len() >= cap {
                        return out;
                    }
                }
            }
        }
    }
    out
}

/// Reads one outer component of a triple.
fn component(t: Triple, slot: usize) -> Value {
    match slot {
        0 => t.first(),
        2 => t.last(),
        other => unreachable!("learning never reads slot {other}"),
    }
}

/// Builds a triple that is `value` in `slot` and unconstrained elsewhere.
fn single_component(slot: usize, value: Value) -> Triple {
    match slot {
        0 => Triple::new(value, Value::X, Value::X),
        2 => Triple::new(Value::X, Value::X, value),
        other => unreachable!("learning never asserts slot {other}"),
    }
}

/// Reads the `PDF_STATIC_LEARNING` toggle (`1`/`true`/`on` versus
/// `0`/`false`/`off`; default off).
///
/// # Panics
///
/// Panics on an unrecognized value, matching the repo-wide strict
/// env-parsing convention.
#[must_use]
pub fn static_learning_from_env() -> bool {
    match std::env::var("PDF_STATIC_LEARNING") {
        Err(_) => false,
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => true,
            "0" | "false" | "off" | "" => false,
            other => panic!(
                "PDF_STATIC_LEARNING: unrecognized value `{other}` (want 0|1|true|false|on|off)"
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_logic::GateKind;
    use pdf_netlist::CircuitBuilder;

    /// z = AND(x, y): x.α1 = 0 forces z.α1 = 0, so the table must hold
    /// the contrapositive z.α1 = 1 ⇒ x.α1 = 1 (and the y twin).
    #[test]
    fn and_gate_learns_contrapositives() {
        let mut b = CircuitBuilder::new("and2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.gate("z", GateKind::And, &[x, y]);
        b.mark_output(z);
        let c = b.finish().unwrap();

        let table = learn_implications(&c);
        let from_z1: Vec<Literal> = table.consequents(Literal::new(z, 0, Value::One)).collect();
        assert!(from_z1.contains(&Literal::new(x, 0, Value::One)));
        assert!(from_z1.contains(&Literal::new(y, 0, Value::One)));
    }

    /// The reconvergent redundancy the gadget of
    /// `SynthProfile::with_redundant_gadgets` builds: `z ≡ a` through a
    /// select `s` that direct propagation cannot resolve. Only the
    /// branch-and-intersect round learns `a = 0 ⇒ z = 0`.
    #[test]
    fn branch_and_intersect_sees_through_reconvergence() {
        let mut b = CircuitBuilder::new("mux-buffer");
        let s = b.input("s");
        let a = b.input("a");
        let s1 = b.branch("s1", s);
        let s2 = b.branch("s2", s);
        let s3 = b.branch("s3", s);
        let a1 = b.branch("a1", a);
        let a2 = b.branch("a2", a);
        let ns = b.gate("ns", GateKind::Not, &[s2]);
        let ns1 = b.branch("ns1", ns);
        let ns2 = b.branch("ns2", ns);
        let u = b.gate("u", GateKind::And, &[s3, ns1]);
        let u1 = b.branch("u1", u);
        let u2 = b.branch("u2", u);
        let o1 = b.gate("o1", GateKind::Or, &[s1, u1, a1]);
        let o2 = b.gate("o2", GateKind::Or, &[ns2, u2, a2]);
        let z = b.gate("z", GateKind::And, &[o1, o2]);
        b.mark_output(z);
        let c = b.finish().unwrap();

        // Direct propagation stalls: {a = 0, z = 1} reaches a fixpoint.
        let mut plain = Implicator::new(&c);
        plain.assign(a, single_component(0, Value::Zero)).unwrap();
        plain.assign(z, single_component(0, Value::One)).unwrap();
        assert!(plain.propagate().is_ok(), "plain propagation must stall");

        // Pure contrapositive learning is equally blind.
        let shallow = learn_implications_with_cap(&c, 0);
        let mut imp = Implicator::new(&c).with_learned(&shallow);
        imp.assign(a, single_component(0, Value::Zero)).unwrap();
        imp.assign(z, single_component(0, Value::One)).unwrap();
        assert!(imp.propagate().is_ok());

        // Depth-1 branch-and-intersect proves z ≡ a.
        let table = learn_implications(&c);
        let learned: Vec<Literal> = table.consequents(Literal::new(a, 0, Value::Zero)).collect();
        assert!(learned.contains(&Literal::new(z, 0, Value::Zero)));
        let mut imp = Implicator::new(&c).with_learned(&table);
        imp.assign(a, single_component(0, Value::Zero)).unwrap();
        let conflicted = imp
            .assign(z, single_component(0, Value::One))
            .and_then(|()| imp.propagate());
        assert!(
            conflicted.is_err(),
            "learned table must expose the conflict"
        );
    }

    /// Every learned implication must already be a theorem of the plain
    /// implicator when checked *forward* from its contrapositive: assume
    /// the antecedent, propagate, and the consequent may not be refutable.
    #[test]
    fn learned_pairs_are_consistent_with_propagation() {
        let c = pdf_netlist::iscas::s27();
        let table = learn_implications(&c);
        assert!(!table.is_empty());
        for (ante, cons) in table.iter() {
            let mut imp = Implicator::new(&c);
            imp.assign(ante.line, single_component(ante.slot, ante.value))
                .unwrap();
            if imp.propagate().is_err() {
                continue; // antecedent unsatisfiable: implication vacuous
            }
            // Adding the consequent on top must not conflict.
            let ok = imp
                .assign(cons.line, single_component(cons.slot, cons.value))
                .and_then(|()| imp.propagate());
            assert!(
                ok.is_ok(),
                "learned {:?} => {:?} contradicts direct propagation",
                ante,
                cons
            );
        }
    }

    /// Attaching the table may only tighten: anything provable without it
    /// stays provable, and the implicator with the table finds at least
    /// as many conflicts.
    #[test]
    fn table_strengthens_the_implicator() {
        let c = pdf_netlist::iscas::s27();
        let table = learn_implications(&c);
        for (id, _) in c.iter() {
            for value in [
                Triple::new(Value::One, Value::X, Value::X),
                Triple::new(Value::Zero, Value::X, Value::X),
                Triple::new(Value::X, Value::X, Value::One),
                Triple::new(Value::X, Value::X, Value::Zero),
            ] {
                let mut plain = Implicator::new(&c);
                let plain_ok = plain
                    .assign(id, value)
                    .and_then(|()| plain.propagate())
                    .is_ok();
                let mut learned = Implicator::new(&c).with_learned(&table);
                let learned_ok = learned
                    .assign(id, value)
                    .and_then(|()| learned.propagate())
                    .is_ok();
                // learned may fail where plain succeeds, never the reverse.
                assert!(plain_ok || !learned_ok);
            }
        }
    }

    #[test]
    fn single_component_shapes() {
        assert_eq!(single_component(0, Value::Zero).to_string(), "0xx");
        assert_eq!(single_component(2, Value::One).to_string(), "xx1");
    }
}
