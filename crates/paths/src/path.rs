//! Physical paths through a line-level circuit.

use core::fmt;

use pdf_netlist::{Circuit, LineId};

/// A physical path: a connected sequence of lines starting at a primary
/// input.
///
/// A path is *complete* when its last line is a (pseudo) primary output;
/// otherwise it is *partial*. The delay of a path is the sum of its lines'
/// delays (the paper's default model assigns one unit per line, so delay
/// equals line count).
///
/// Paths display in the paper's notation:
///
/// ```
/// use pdf_netlist::LineId;
/// use pdf_paths::Path;
///
/// let p = Path::new(vec![LineId::new(1), LineId::new(8), LineId::new(9)]);
/// assert_eq!(p.to_string(), "(2,9,10)"); // 1-based line numbers
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path {
    lines: Vec<LineId>,
}

impl Path {
    /// Creates a path from its line sequence.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty. Connectivity against a specific circuit
    /// is *not* checked here; use [`Path::validate`].
    #[must_use]
    pub fn new(lines: Vec<LineId>) -> Path {
        assert!(!lines.is_empty(), "a path has at least one line");
        Path { lines }
    }

    /// The lines of the path, in input-to-output order.
    #[inline]
    #[must_use]
    pub fn lines(&self) -> &[LineId] {
        &self.lines
    }

    /// The first line (the path's source).
    #[inline]
    #[must_use]
    pub fn source(&self) -> LineId {
        self.lines[0]
    }

    /// The last line reached so far (the path's sink once complete).
    #[inline]
    #[must_use]
    pub fn last(&self) -> LineId {
        *self.lines.last().expect("paths are non-empty")
    }

    /// The number of lines on the path.
    #[inline]
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// The path's delay under the circuit's delay model (sum of line
    /// delays; equals [`Path::line_count`] under the default unit model).
    #[must_use]
    pub fn delay(&self, circuit: &Circuit) -> u32 {
        self.lines.iter().map(|&l| circuit.line(l).delay()).sum()
    }

    /// Returns `true` if the path ends at a (pseudo) primary output.
    #[must_use]
    pub fn is_complete(&self, circuit: &Circuit) -> bool {
        circuit.line(self.last()).is_output()
    }

    /// The tightest upper bound on the delay of any complete path having
    /// this path as a prefix: `len(p) = delay(p) + d(last(p))` (paper,
    /// Fig. 2). Equals [`Path::delay`] for complete paths.
    #[must_use]
    pub fn max_extension_delay(&self, circuit: &Circuit) -> u32 {
        self.delay(circuit) + circuit.distance_to_output(self.last())
    }

    /// Returns a new path extended by `line`.
    #[must_use]
    pub fn extended(&self, line: LineId) -> Path {
        let mut lines = Vec::with_capacity(self.lines.len() + 1);
        lines.extend_from_slice(&self.lines);
        lines.push(line);
        Path { lines }
    }

    /// Checks that the path is structurally valid in `circuit`: it starts
    /// at a primary input and each line feeds the next.
    ///
    /// # Errors
    ///
    /// Returns a [`PathError`] describing the first violation.
    pub fn validate(&self, circuit: &Circuit) -> Result<(), PathError> {
        if self.lines.iter().any(|l| l.index() >= circuit.line_count()) {
            return Err(PathError::UnknownLine);
        }
        if !circuit.line(self.source()).kind().is_input() {
            return Err(PathError::BadSource {
                line: self.source(),
            });
        }
        for w in self.lines.windows(2) {
            if !circuit.line(w[1]).fanin().contains(&w[0]) {
                return Err(PathError::Disconnected {
                    from: w[0],
                    to: w[1],
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, l) in self.lines.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{l}")?;
        }
        f.write_str(")")
    }
}

impl FromIterator<LineId> for Path {
    fn from_iter<T: IntoIterator<Item = LineId>>(iter: T) -> Path {
        Path::new(iter.into_iter().collect())
    }
}

/// Error produced by [`Path::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathError {
    /// A line id on the path does not exist in the circuit.
    UnknownLine,
    /// The path does not start at a primary input.
    BadSource {
        /// The offending first line.
        line: LineId,
    },
    /// Two consecutive lines are not connected.
    Disconnected {
        /// The earlier line.
        from: LineId,
        /// The later line, which `from` does not feed.
        to: LineId,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::UnknownLine => f.write_str("path references a line outside the circuit"),
            PathError::BadSource { line } => {
                write!(f, "path source (line {line}) is not a primary input")
            }
            PathError::Disconnected { from, to } => {
                write!(f, "line {from} does not feed line {to}")
            }
        }
    }
}

impl std::error::Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::s27;

    fn path(ids: &[usize]) -> Path {
        ids.iter().map(|&k| LineId::new(k - 1)).collect()
    }

    #[test]
    fn paper_example_path_is_valid() {
        let c = s27();
        let p = path(&[2, 9, 10, 15]);
        p.validate(&c).unwrap();
        assert!(p.is_complete(&c));
        assert_eq!(p.delay(&c), 4);
        assert_eq!(p.to_string(), "(2,9,10,15)");
    }

    #[test]
    fn longest_paper_path() {
        let c = s27();
        let p = path(&[1, 8, 13, 14, 16, 19, 20, 21, 22, 25]);
        p.validate(&c).unwrap();
        assert!(p.is_complete(&c));
        assert_eq!(p.delay(&c), 10);
        assert_eq!(p.max_extension_delay(&c), 10);
    }

    #[test]
    fn partial_path_extension_bound() {
        let c = s27();
        // (1,8,13) can extend to the length-10 path above.
        let p = path(&[1, 8, 13]);
        p.validate(&c).unwrap();
        assert!(!p.is_complete(&c));
        assert_eq!(p.max_extension_delay(&c), 10);
        let q = p.extended(LineId::new(13)); // line 14
        q.validate(&c).unwrap();
        assert_eq!(q.line_count(), 4);
    }

    #[test]
    fn disconnected_path_rejected() {
        let c = s27();
        let p = path(&[2, 9, 15]); // 9 does not feed 15 directly (10 does)
        assert!(matches!(
            p.validate(&c),
            Err(PathError::Disconnected { .. })
        ));
    }

    #[test]
    fn non_input_source_rejected() {
        let c = s27();
        let p = path(&[9, 10, 15]);
        assert!(matches!(p.validate(&c), Err(PathError::BadSource { .. })));
    }

    #[test]
    fn unknown_line_rejected() {
        let c = s27();
        let p = path(&[2, 99]);
        assert_eq!(p.validate(&c), Err(PathError::UnknownLine));
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn empty_path_panics() {
        let _ = Path::new(vec![]);
    }
}
