//! Enumeration of the longest paths under a capped store.
//!
//! The paper (Sec. 3.1) enumerates paths from the primary inputs towards
//! the outputs while keeping the fault store `P` below a preselected bound
//! `N_P`:
//!
//! * the **moderate** procedure (illustrated on `s27` with `N_P = 20`)
//!   scans a work list, extends the first partial path one line at a time
//!   (first successor in place, other successors appended), and on cap
//!   pressure removes complete paths of minimal length — never the longest
//!   complete ones;
//! * the **distance-based** procedure, for circuits with large numbers of
//!   paths, ranks every partial path `p` by the bound
//!   `len(p) = delay(p) + d(last(p))` on any completion of `p`, always
//!   extends the partial with maximal `len`, and on cap pressure removes
//!   (partial or complete) paths of minimal `len` — unless all live paths
//!   share one length.
//!
//! Both produce a [`PathStore`] of complete paths, sorted by decreasing
//! delay.

use std::collections::BTreeMap;

use pdf_netlist::{Circuit, LineId};

use crate::{Path, PathStore};

/// Which enumeration procedure to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The work-list procedure for circuits with moderate path counts
    /// (paper Sec. 3.1, first procedure; reproduces the `s27`/Table 1
    /// walkthrough exactly).
    Moderate,
    /// The `len(p)`-guided best-first procedure for circuits with large
    /// path counts (paper Sec. 3.1, extension). The default.
    #[default]
    DistanceBased,
}

/// A snapshot row passed to enumeration observers.
#[derive(Clone, Debug)]
pub struct SnapshotPath {
    /// The path at snapshot time.
    pub path: Path,
    /// Whether it had reached a primary output.
    pub complete: bool,
    /// Its delay at snapshot time.
    pub delay: u32,
}

/// Events emitted during enumeration (for tracing and for reproducing the
/// paper's Table 1).
#[derive(Clone, Debug)]
pub enum EnumEvent {
    /// The store reached or exceeded the cap after an extension step; the
    /// snapshot is taken *before* any removal. In the moderate strategy the
    /// snapshot preserves work-list order.
    CapReached {
        /// The live paths at this moment.
        snapshot: Vec<SnapshotPath>,
    },
}

/// Counters describing an enumeration run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Number of single-line extension steps performed.
    pub extensions: usize,
    /// Number of paths removed under cap pressure.
    pub removed: usize,
    /// Number of times the cap was reached.
    pub cap_hits: usize,
    /// `true` if the cap could not be honoured (no removable path —
    /// the moderate strategy ran out of non-critical complete paths, or
    /// every live path shared one length).
    pub overflowed: bool,
    /// Partial paths discarded because the extension work limit was hit.
    pub truncated_partials: usize,
}

/// The result of an enumeration run.
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// The complete paths retained, sorted by decreasing delay.
    pub store: PathStore,
    /// Run counters.
    pub stats: EnumerationStats,
}

/// Enumerates the faults associated with the longest paths of a circuit,
/// subject to a store cap.
///
/// # Example
///
/// ```
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::{PathEnumerator, Strategy};
///
/// let circuit = s27();
/// // The paper's walkthrough: paths (not faults), cap 20, moderate mode.
/// let result = PathEnumerator::new(&circuit)
///     .with_cap(20)
///     .with_units_per_path(1)
///     .with_strategy(Strategy::Moderate)
///     .enumerate();
/// // The paper's 18 paths of lengths 7..=10 plus one length-6 survivor
/// // (see the crate tests for the walkthrough discrepancy analysis).
/// assert_eq!(result.store.len(), 19);
/// assert_eq!(result.store.max_delay(), Some(10));
/// ```
#[derive(Clone, Debug)]
pub struct PathEnumerator<'c> {
    circuit: &'c Circuit,
    cap: usize,
    units: u32,
    strategy: Strategy,
    work_limit: usize,
}

impl<'c> PathEnumerator<'c> {
    /// Creates an enumerator with the paper's defaults: cap `N_P = 10000`
    /// fault units, two faults per path, distance-based strategy.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> PathEnumerator<'c> {
        PathEnumerator {
            circuit,
            cap: 10_000,
            units: 2,
            strategy: Strategy::DistanceBased,
            work_limit: 5_000_000,
        }
    }

    /// Sets the extension work limit — a safety valve against circuits
    /// whose near-critical path population is too dense to enumerate.
    /// When hit, enumeration stops, surviving partial paths are dropped,
    /// and [`EnumerationStats::truncated_partials`] reports how many.
    #[must_use]
    pub fn with_work_limit(mut self, limit: usize) -> PathEnumerator<'c> {
        self.work_limit = limit.max(1);
        self
    }

    /// Sets the store cap `N_P`, measured in fault units.
    #[must_use]
    pub fn with_cap(mut self, cap: usize) -> PathEnumerator<'c> {
        self.cap = cap.max(1);
        self
    }

    /// Sets how many faults each path contributes to the cap (2 in the
    /// standard model — slow-to-rise and slow-to-fall; 1 reproduces the
    /// paper's path-granularity `s27` walkthrough).
    #[must_use]
    pub fn with_units_per_path(mut self, units: u32) -> PathEnumerator<'c> {
        self.units = units.max(1);
        self
    }

    /// Selects the enumeration strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> PathEnumerator<'c> {
        self.strategy = strategy;
        self
    }

    /// Runs the enumeration.
    #[must_use]
    pub fn enumerate(&self) -> Enumeration {
        match self.strategy {
            Strategy::Moderate => self.run_moderate(None),
            Strategy::DistanceBased => self.run_distance(None),
        }
    }

    /// Runs the enumeration, reporting [`EnumEvent`]s to `observer`.
    /// Snapshot materialization is costly; use [`PathEnumerator::enumerate`]
    /// unless the events are needed.
    pub fn enumerate_observed<F>(&self, mut observer: F) -> Enumeration
    where
        F: FnMut(&EnumEvent),
    {
        match self.strategy {
            Strategy::Moderate => self.run_moderate(Some(&mut observer)),
            Strategy::DistanceBased => self.run_distance(Some(&mut observer)),
        }
    }

    fn over_cap(&self, live_paths: usize) -> bool {
        live_paths.saturating_mul(self.units as usize) >= self.cap
    }

    fn run_moderate(&self, mut observer: Option<&mut dyn FnMut(&EnumEvent)>) -> Enumeration {
        struct Item {
            path: Path,
            delay: u32,
            complete: bool,
        }
        let _phase = pdf_telemetry::Span::enter("enumerate");
        let c = self.circuit;
        let mut stats = EnumerationStats::default();
        let mut list: Vec<Item> = c
            .inputs()
            .iter()
            .map(|&i| Item {
                path: Path::new(vec![i]),
                delay: c.line(i).delay(),
                complete: c.line(i).is_output(),
            })
            .collect();

        loop {
            if stats.extensions >= self.work_limit {
                stats.truncated_partials = list.iter().filter(|e| !e.complete).count();
                list.retain(|e| e.complete);
                break;
            }
            let Some(pos) = list.iter().position(|e| !e.complete) else {
                break;
            };
            // The paper marks a path complete when *its construction
            // terminates*, i.e. when the actively extended path reaches a
            // primary output — appended siblings stay partial until they
            // are selected (Table 1(a) lists (4,19,20,21,24) as partial
            // even though line 24 is a pseudo output).
            let last = list[pos].path.last();
            if c.line(last).is_output() {
                list[pos].complete = true;
                continue;
            }
            // Extend the first partial path in all possible ways: the first
            // successor replaces it in place, the others are appended.
            stats.extensions += 1;
            let fanout: Vec<LineId> = c.line(last).fanout().to_vec();
            debug_assert!(!fanout.is_empty(), "partial paths always extend");
            for &f in fanout.iter().skip(1) {
                let item = &list[pos];
                list.push(Item {
                    path: item.path.extended(f),
                    delay: item.delay + c.line(f).delay(),
                    complete: false,
                });
            }
            let first = fanout[0];
            let item = &mut list[pos];
            item.path = item.path.extended(first);
            item.delay += c.line(first).delay();
            item.complete = c.line(first).is_output();

            if self.over_cap(list.len()) {
                stats.cap_hits += 1;
                if let Some(observer) = observer.as_deref_mut() {
                    observer(&EnumEvent::CapReached {
                        snapshot: list
                            .iter()
                            .map(|e| SnapshotPath {
                                path: e.path.clone(),
                                complete: e.complete,
                                delay: e.delay,
                            })
                            .collect(),
                    });
                }
                while self.over_cap(list.len()) {
                    // Remove the first complete path of minimal delay,
                    // refusing to touch the longest complete paths.
                    let completes = list.iter().enumerate().filter(|(_, e)| e.complete);
                    let min = completes.clone().map(|(_, e)| e.delay).min();
                    let max = completes.clone().map(|(_, e)| e.delay).max();
                    match (min, max) {
                        (Some(lo), Some(hi)) if lo < hi => {
                            let victim = list
                                .iter()
                                .position(|e| e.complete && e.delay == lo)
                                .expect("a minimal complete path exists");
                            list.remove(victim);
                            stats.removed += 1;
                        }
                        _ => {
                            stats.overflowed = true;
                            break;
                        }
                    }
                }
            }
        }

        let mut store: PathStore = PathStore::new();
        for e in list {
            debug_assert!(e.complete);
            store.push(e.path, e.delay);
        }
        store.sort_by_delay_desc();
        pdf_telemetry::count(
            pdf_telemetry::counters::STORE_EVICTIONS,
            stats.removed as u64,
        );
        Enumeration { store, stats }
    }

    fn run_distance(&self, mut observer: Option<&mut dyn FnMut(&EnumEvent)>) -> Enumeration {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        struct Item {
            path: Path,
            delay: u32,
            len: u32,
            complete: bool,
        }
        let _phase = pdf_telemetry::Span::enter("enumerate");
        let c = self.circuit;
        let mut stats = EnumerationStats::default();

        let mut slab: Vec<Option<Item>> = Vec::new();
        let mut live = 0usize;
        // Live `len` multiset, to know min/max and the all-equal guard.
        let mut len_counts: BTreeMap<u32, usize> = BTreeMap::new();
        // Max-heap over partial paths: (len, Reverse(idx)) prefers longer
        // bounds, then earlier indices — fully deterministic.
        let mut partials: BinaryHeap<(u32, Reverse<usize>)> = BinaryHeap::new();
        // Min-heap over all live paths for removals.
        let mut removal: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();

        let insert = |slab: &mut Vec<Option<Item>>,
                      len_counts: &mut BTreeMap<u32, usize>,
                      partials: &mut BinaryHeap<(u32, Reverse<usize>)>,
                      removal: &mut BinaryHeap<Reverse<(u32, usize)>>,
                      live: &mut usize,
                      item: Item| {
            let idx = slab.len();
            let len = item.len;
            if !item.complete {
                partials.push((len, Reverse(idx)));
            }
            removal.push(Reverse((len, idx)));
            *len_counts.entry(len).or_insert(0) += 1;
            *live += 1;
            slab.push(Some(item));
        };

        for &i in c.inputs() {
            let delay = c.line(i).delay();
            let item = Item {
                path: Path::new(vec![i]),
                delay,
                len: delay + c.distance_to_output(i),
                complete: c.line(i).is_output(),
            };
            insert(
                &mut slab,
                &mut len_counts,
                &mut partials,
                &mut removal,
                &mut live,
                item,
            );
        }

        let remove_len =
            |len_counts: &mut BTreeMap<u32, usize>, len: u32| match len_counts.get_mut(&len) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    len_counts.remove(&len);
                }
                None => unreachable!("live length must be counted"),
            };

        loop {
            if stats.extensions >= self.work_limit {
                for item in slab.iter_mut() {
                    if item.as_ref().is_some_and(|i| !i.complete) {
                        *item = None;
                        stats.truncated_partials += 1;
                    }
                }
                break;
            }
            // Lazy deletion lets stale slab entries and heap records pile
            // up; compact once they dominate, preserving relative order so
            // tie-breaking stays deterministic.
            if slab.len() > 1024 && slab.len() > 4 * live {
                let mut new_slab: Vec<Option<Item>> = Vec::with_capacity(live);
                partials.clear();
                removal.clear();
                for item in slab.into_iter().flatten() {
                    let idx = new_slab.len();
                    if !item.complete {
                        partials.push((item.len, Reverse(idx)));
                    }
                    removal.push(Reverse((item.len, idx)));
                    new_slab.push(Some(item));
                }
                slab = new_slab;
            }
            // Pop the live partial with maximal len (skip stale entries).
            let Some(idx) = ({
                let mut found = None;
                while let Some(&(len, Reverse(idx))) = partials.peek() {
                    match &slab[idx] {
                        Some(item) if !item.complete && item.len == len => {
                            found = Some(idx);
                            break;
                        }
                        _ => {
                            partials.pop();
                        }
                    }
                }
                found
            }) else {
                break;
            };
            partials.pop();

            stats.extensions += 1;
            let item = slab[idx].take().expect("peeked item is live");
            live -= 1;
            remove_len(&mut len_counts, item.len);

            let fanout: Vec<LineId> = c.line(item.path.last()).fanout().to_vec();
            debug_assert!(!fanout.is_empty());
            for &f in &fanout {
                let delay = item.delay + c.line(f).delay();
                let child = Item {
                    path: item.path.extended(f),
                    delay,
                    len: delay + c.distance_to_output(f),
                    complete: c.line(f).is_output(),
                };
                insert(
                    &mut slab,
                    &mut len_counts,
                    &mut partials,
                    &mut removal,
                    &mut live,
                    child,
                );
            }

            if self.over_cap(live) {
                stats.cap_hits += 1;
                if let Some(observer) = observer.as_deref_mut() {
                    observer(&EnumEvent::CapReached {
                        snapshot: slab
                            .iter()
                            .flatten()
                            .map(|e| SnapshotPath {
                                path: e.path.clone(),
                                complete: e.complete,
                                delay: e.delay,
                            })
                            .collect(),
                    });
                }
                while self.over_cap(live) {
                    if len_counts.len() <= 1 {
                        // All live paths share one length: the paper's
                        // guard forbids removing the (joint) longest.
                        stats.overflowed = true;
                        break;
                    }
                    // Pop the live path with minimal len.
                    let victim = loop {
                        match removal.pop() {
                            Some(Reverse((len, idx))) => match &slab[idx] {
                                Some(item) if item.len == len => break Some(idx),
                                _ => continue,
                            },
                            None => break None,
                        }
                    };
                    match victim {
                        Some(idx) => {
                            let item = slab[idx].take().expect("victim is live");
                            live -= 1;
                            remove_len(&mut len_counts, item.len);
                            stats.removed += 1;
                        }
                        None => {
                            stats.overflowed = true;
                            break;
                        }
                    }
                }
            }
        }

        let mut store = PathStore::new();
        for item in slab.into_iter().flatten() {
            debug_assert!(item.complete);
            store.push(item.path, item.delay);
        }
        store.sort_by_delay_desc();
        pdf_telemetry::count(
            pdf_telemetry::counters::STORE_EVICTIONS,
            stats.removed as u64,
        );
        Enumeration { store, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::{c17, s27};
    use std::collections::BTreeSet;

    fn path_set(store: &PathStore) -> BTreeSet<String> {
        store.iter().map(|e| e.path.to_string()).collect()
    }

    #[test]
    fn s27_walkthrough_first_cap_snapshot_matches_table_1a() {
        let c = s27();
        let mut snapshots = Vec::new();
        let result = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(1)
            .with_strategy(Strategy::Moderate)
            .enumerate_observed(|e| {
                let EnumEvent::CapReached { snapshot } = e;
                snapshots.push(snapshot.clone());
            });
        assert!(!snapshots.is_empty());
        let set1: BTreeSet<String> = snapshots[0]
            .iter()
            .map(|s| format!("{}{}", s.path, if s.complete { "c" } else { "p" }))
            .collect();
        let expected: BTreeSet<String> = [
            "(1,8,12,25)c",
            "(2,9,10,15)c",
            "(3,15)c",
            "(4,19,20,21,22,25)c",
            "(5,21,22,25)c",
            "(6,14,16,19,20,21,22,25)c",
            "(7,9,10,15)c",
            "(1,8,13,14,16,19,20,21,22)p",
            "(2,9,11)p",
            "(4,19,20,21,23)p",
            "(4,19,20,21,24)p",
            "(5,21,23)p",
            "(5,21,24)p",
            "(6,14,17)p",
            "(6,14,16,19,20,21,23)p",
            "(6,14,16,19,20,21,24)p",
            "(7,9,11)p",
            "(1,8,13,14,17)p",
            "(1,8,13,14,16,19,20,21,23)p",
            "(1,8,13,14,16,19,20,21,24)p",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        assert_eq!(set1, expected, "Table 1(a) snapshot mismatch");
        assert_eq!(snapshots[0].len(), 20);
        let _ = result;
    }

    #[test]
    fn s27_walkthrough_final_store_matches_paper() {
        // The paper reports "a set of 18 paths of lengths between 7 and
        // 10". Our faithful replay keeps those exact 18 plus one length-6
        // path, because at the walkthrough's final cap event the store
        // drops below N_P before the second length-6 path becomes
        // removable. (The paper's own Table 1(b) is internally
        // inconsistent at the corresponding step: it lists (5,21,24) as a
        // complete length-3 path that survived a removal event whose rule
        // removes minimal-length complete paths first.) The top 18 paths
        // match the paper's description exactly.
        let c = s27();
        let result = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(1)
            .with_strategy(Strategy::Moderate)
            .enumerate();
        assert_eq!(result.store.len(), 19);
        let delays: Vec<u32> = result.store.iter().map(|e| e.delay).collect();
        assert_eq!(delays[0], 10);
        assert_eq!(delays[17], 7);
        assert!(delays[..18].iter().all(|&d| (7..=10).contains(&d)));
        assert_eq!(delays[18], 6);
        assert!(!result.stats.overflowed);
    }

    #[test]
    fn s27_walkthrough_fourth_cap_event_matches_table_1b() {
        // Event 4 of the replay corresponds to the paper's Table 1(b):
        // all 10 partial paths and 10 of the 11 complete paths coincide;
        // the single difference is the internally inconsistent (5,21,24)
        // discussed in `s27_walkthrough_final_store_matches_paper`.
        let c = s27();
        let mut snapshots = Vec::new();
        let _ = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(1)
            .with_strategy(Strategy::Moderate)
            .enumerate_observed(|e| {
                let EnumEvent::CapReached { snapshot } = e;
                snapshots.push(snapshot.clone());
            });
        assert!(snapshots.len() >= 4);
        let event4: BTreeSet<String> = snapshots[3]
            .iter()
            .map(|s| format!("{}{}", s.path, if s.complete { "c" } else { "p" }))
            .collect();
        let table_1b: BTreeSet<String> = [
            "(4,19,20,21,22,25)c",
            "(6,14,16,19,20,21,22,25)c",
            "(1,8,13,14,16,19,20,21,22,25)c",
            "(2,9,11,18,20,21,22,25)c",
            "(4,19,20,21,23,26)c",
            "(4,19,20,21,24)c",
            "(5,21,23,26)c",
            "(5,21,24)c",
            "(6,14,17,18,20,21,22,25)c",
            "(6,14,16,19,20,21,23,26)c",
            "(6,14,16,19,20,21,24)c",
            "(7,9,11,18,20,21,22)p",
            "(1,8,13,14,17)p",
            "(1,8,13,14,16,19,20,21,23)p",
            "(1,8,13,14,16,19,20,21,24)p",
            "(2,9,11,18,20,21,23)p",
            "(2,9,11,18,20,21,24)p",
            "(6,14,17,18,20,21,23)p",
            "(6,14,17,18,20,21,24)p",
            "(7,9,11,18,20,21,23)p",
            "(7,9,11,18,20,21,24)p",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let only_paper: Vec<&String> = table_1b.difference(&event4).collect();
        let only_ours: Vec<&String> = event4.difference(&table_1b).collect();
        assert_eq!(only_paper, vec!["(5,21,24)c"]);
        assert_eq!(only_ours, vec!["(7,9,10,15)c"]);
    }

    #[test]
    fn distance_strategy_agrees_with_moderate_on_s27() {
        let c = s27();
        let moderate = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(1)
            .with_strategy(Strategy::Moderate)
            .enumerate();
        let distance = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(1)
            .with_strategy(Strategy::DistanceBased)
            .enumerate();
        assert_eq!(path_set(&moderate.store), path_set(&distance.store));
    }

    #[test]
    fn uncapped_enumeration_finds_every_path() {
        let c = c17();
        for strategy in [Strategy::Moderate, Strategy::DistanceBased] {
            let result = PathEnumerator::new(&c)
                .with_cap(1_000_000)
                .with_strategy(strategy)
                .enumerate();
            assert_eq!(result.store.len() as u64, c.path_count(), "{strategy:?}");
            assert_eq!(result.stats.removed, 0);
            for e in result.store.iter() {
                e.path.validate(&c).unwrap();
                assert!(e.path.is_complete(&c));
            }
        }
    }

    #[test]
    fn s27_uncapped_path_count_consistency() {
        let c = s27();
        let result = PathEnumerator::new(&c).with_cap(1_000_000).enumerate();
        assert_eq!(result.store.len() as u64, c.path_count());
        // All 18 kept by the capped run are among the longest here.
        let capped = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(1)
            .with_strategy(Strategy::Moderate)
            .enumerate();
        let all = path_set(&result.store);
        for p in path_set(&capped.store) {
            assert!(all.contains(&p));
        }
    }

    #[test]
    fn capped_store_keeps_the_longest_paths() {
        let c = s27();
        let full = PathEnumerator::new(&c).with_cap(1_000_000).enumerate();
        let capped = PathEnumerator::new(&c)
            .with_cap(10)
            .with_units_per_path(1)
            .enumerate();
        // Every kept path must be at least as long as every dropped path
        // is short: the shortest kept delay >= delay rank of the cut.
        let mut all_delays: Vec<u32> = full.store.iter().map(|e| e.delay).collect();
        all_delays.sort_unstable_by(|a, b| b.cmp(a));
        let kept_min = capped.store.min_delay().unwrap();
        let threshold = all_delays[capped.store.len() - 1];
        assert!(
            kept_min >= threshold,
            "kept_min={kept_min} threshold={threshold}"
        );
    }

    #[test]
    fn fault_units_double_the_pressure() {
        let c = s27();
        let paths_cap = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(1)
            .enumerate();
        let fault_cap = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(2)
            .enumerate();
        assert!(fault_cap.store.len() < paths_cap.store.len());
        assert!(fault_cap.store.len() * 2 < 20);
    }

    #[test]
    fn stats_are_populated() {
        let c = s27();
        let r = PathEnumerator::new(&c)
            .with_cap(20)
            .with_units_per_path(1)
            .with_strategy(Strategy::Moderate)
            .enumerate();
        assert!(r.stats.extensions > 0);
        assert!(r.stats.removed > 0);
        assert!(r.stats.cap_hits > 0);
    }

    #[test]
    fn stand_in_enumeration_is_fast_and_capped() {
        let netlist = pdf_netlist::stand_in_profile("b03").unwrap().generate();
        let c = netlist.to_circuit().unwrap();
        let r = PathEnumerator::new(&c).with_cap(10_000).enumerate();
        assert!(r.store.len() * 2 <= 10_000 || r.stats.overflowed);
        assert!(!r.store.is_empty());
        // Longest paths first.
        let delays: Vec<u32> = r.store.iter().map(|e| e.delay).collect();
        assert!(delays.windows(2).all(|w| w[0] >= w[1]));
        // The critical path must have survived.
        assert_eq!(delays[0], c.critical_delay());
    }
}
