//! Non-enumerative path counting by length.
//!
//! The paper sizes its fault stores by "considering the number of paths of
//! every length" and cites the authors' non-enumerative coverage
//! estimation work (its reference \[2\]). This module provides that
//! substrate: the exact number of complete paths of every delay, computed
//! by dynamic programming over the line graph **without enumerating a
//! single path** — time `O(lines × distinct delays)`, even when the
//! circuit has astronomically many paths.
//!
//! It doubles as a differential oracle for the enumerator: on circuits
//! small enough to enumerate, the per-length counts must match exactly.

use core::fmt;
use std::collections::BTreeMap;

use pdf_netlist::{Circuit, LineId};

/// A path count that saturates at `u64::MAX`, with the clamping made
/// explicit: `saturated` means the true count is *at least* `count`, so
/// callers can distinguish "exactly 2⁶⁴−1" from "too many to represent"
/// instead of silently treating the clamp as exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatCount {
    /// The count, clamped at `u64::MAX`.
    pub count: u64,
    /// `true` when the count is a lower bound because some addition or
    /// multiplication on the way here overflowed `u64`.
    pub saturated: bool,
}

impl SatCount {
    /// An exact (unsaturated) count.
    #[must_use]
    pub const fn exact(count: u64) -> SatCount {
        SatCount {
            count,
            saturated: false,
        }
    }

    /// Adds two counts, saturating and propagating the flag.
    #[must_use]
    pub const fn saturating_add(self, other: SatCount) -> SatCount {
        let (sum, overflow) = self.count.overflowing_add(other.count);
        SatCount {
            count: if overflow { u64::MAX } else { sum },
            saturated: self.saturated || other.saturated || overflow,
        }
    }

    /// Multiplies two counts, saturating and propagating the flag.
    #[must_use]
    pub const fn saturating_mul(self, other: SatCount) -> SatCount {
        let (product, overflow) = self.count.overflowing_mul(other.count);
        SatCount {
            count: if overflow { u64::MAX } else { product },
            saturated: self.saturated || other.saturated || overflow,
        }
    }
}

impl fmt::Display for SatCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.saturated {
            write!(f, ">={}", self.count)
        } else {
            write!(f, "{}", self.count)
        }
    }
}

/// The result of [`PathSpectrum::cutoff_delay`]: the chosen cutoff, with
/// an explicit flag when the cumulative population count saturated on the
/// way down. A saturated cutoff is still sound — the true population is
/// at least the clamped one, so the threshold really is reached — but the
/// caller must not treat intermediate counts as exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cutoff {
    /// The smallest delay whose cumulative population reaches the
    /// threshold.
    pub delay: u32,
    /// `true` when the cumulative count clamped at `u64::MAX` at or
    /// before the cutoff.
    pub saturated: bool,
}

/// The number of complete input-to-output paths per total delay.
///
/// Counts saturate at `u64::MAX` (flagged by [`PathSpectrum::saturated`]).
///
/// # Example
///
/// ```
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathSpectrum;
///
/// let spectrum = PathSpectrum::of(&s27());
/// assert_eq!(spectrum.total(), 28);            // s27 has 28 paths
/// assert_eq!(spectrum.count_at(10), 4);        // four critical paths
/// assert_eq!(spectrum.count_at_least(7).count, 18); // the walkthrough's 18
/// assert!(!spectrum.count_at_least(7).saturated);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSpectrum {
    /// delay -> number of complete paths of exactly that delay.
    counts: BTreeMap<u32, u64>,
    saturated: bool,
}

impl PathSpectrum {
    /// Computes the spectrum of `circuit`.
    #[must_use]
    pub fn of(circuit: &Circuit) -> PathSpectrum {
        // suffix[l] : delay -> number of line sequences from l (inclusive)
        // to an output, where the delay includes l's own delay.
        let mut suffix: Vec<BTreeMap<u32, u64>> = vec![BTreeMap::new(); circuit.line_count()];
        let mut saturated = false;
        for &id in circuit.topo_order().iter().rev() {
            let line = circuit.line(id);
            let mut map = BTreeMap::new();
            if line.is_output() {
                map.insert(line.delay(), 1u64);
            } else {
                for &f in line.fanout() {
                    // Clone keeps the borrow checker happy; suffix maps are
                    // small (one entry per distinct delay).
                    let child = suffix[f.index()].clone();
                    for (d, n) in child {
                        let entry = map.entry(d + line.delay()).or_insert(0u64);
                        let (sum, overflow) = entry.overflowing_add(n);
                        *entry = if overflow { u64::MAX } else { sum };
                        saturated |= overflow || *entry == u64::MAX && n == u64::MAX;
                    }
                }
            }
            suffix[id.index()] = map;
        }
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for &i in circuit.inputs() {
            for (&d, &n) in &suffix[i.index()] {
                let entry = counts.entry(d).or_insert(0);
                let (sum, overflow) = entry.overflowing_add(n);
                *entry = if overflow { u64::MAX } else { sum };
                saturated |= overflow;
            }
        }
        PathSpectrum { counts, saturated }
    }

    /// The number of complete paths of exactly `delay`.
    #[must_use]
    pub fn count_at(&self, delay: u32) -> u64 {
        self.counts.get(&delay).copied().unwrap_or(0)
    }

    /// The number of complete paths of delay `delay` or more, with the
    /// saturation made explicit: a clamped per-delay bucket or an
    /// overflowing fold sets [`SatCount::saturated`] instead of silently
    /// returning `u64::MAX` as if it were exact.
    #[must_use]
    pub fn count_at_least(&self, delay: u32) -> SatCount {
        self.counts
            .range(delay..)
            .fold(SatCount::exact(0), |acc, (_, &n)| {
                acc.saturating_add(SatCount {
                    count: n,
                    // A bucket pinned at u64::MAX only ever comes from the
                    // saturating DP: treat it as a lower bound.
                    saturated: self.saturated && n == u64::MAX,
                })
            })
    }

    /// Total number of complete paths.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts
            .values()
            .fold(0u64, |acc, &n| acc.saturating_add(n))
    }

    /// The largest path delay (`L_0`), or `None` for a pathless circuit.
    #[must_use]
    pub fn max_delay(&self) -> Option<u32> {
        self.counts.keys().next_back().copied()
    }

    /// The smallest path delay, or `None` for a pathless circuit.
    #[must_use]
    pub fn min_delay(&self) -> Option<u32> {
        self.counts.keys().next().copied()
    }

    /// Iterates `(delay, count)` pairs in decreasing delay order.
    pub fn iter_desc(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().rev().map(|(&d, &n)| (d, n))
    }

    /// `true` if any count saturated at `u64::MAX` (the circuit has more
    /// than 2⁶⁴−1 paths of some length).
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// The smallest delay `L` such that counting `units` faults per path,
    /// the population at delay `L` or longer reaches `threshold` — the
    /// non-enumerative way to choose the `P_0` cutoff, useful to size
    /// `N_P` before enumerating (the paper: "`N_P` can be determined by
    /// considering the number of paths of every length").
    ///
    /// A saturated cumulative count is reported through
    /// [`Cutoff::saturated`]; the returned delay is still sound because
    /// the clamped count is a lower bound on the true population.
    #[must_use]
    pub fn cutoff_delay(&self, units: u64, threshold: u64) -> Option<Cutoff> {
        let mut acc = SatCount::exact(0);
        for (&d, &n) in self.counts.iter().rev() {
            let bucket = SatCount {
                count: n,
                saturated: self.saturated && n == u64::MAX,
            };
            acc = acc.saturating_add(bucket.saturating_mul(SatCount::exact(units)));
            if acc.count >= threshold {
                return Some(Cutoff {
                    delay: d,
                    saturated: acc.saturated,
                });
            }
        }
        None
    }

    /// The number of complete paths running through `line` (any delay),
    /// with explicit saturation. Convenience for one line; use
    /// [`PathTraffic`] to query many lines of one circuit.
    #[must_use]
    pub fn paths_through(circuit: &Circuit, line: LineId) -> SatCount {
        PathTraffic::of(circuit).through(line)
    }
}

/// Per-line path-count DP: for every line, the number of complete
/// input-to-output paths running through it, computed by one forward and
/// one backward sweep with saturating arithmetic and per-line saturation
/// flags.
///
/// # Example
///
/// ```
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathTraffic;
///
/// let circuit = s27();
/// let traffic = PathTraffic::of(&circuit);
/// assert_eq!(traffic.total().count, 28);
/// assert!(!traffic.total().saturated);
/// ```
#[derive(Clone, Debug)]
pub struct PathTraffic {
    /// forward[l]: #paths from any input to l (inclusive).
    forward: Vec<SatCount>,
    /// backward[l]: #line sequences from l (inclusive) to any output.
    backward: Vec<SatCount>,
    /// Total complete paths (sum of forward over outputs).
    total: SatCount,
}

impl PathTraffic {
    /// Runs the two sweeps over `circuit`.
    #[must_use]
    pub fn of(circuit: &Circuit) -> PathTraffic {
        let mut forward = vec![SatCount::exact(0); circuit.line_count()];
        let mut backward = vec![SatCount::exact(0); circuit.line_count()];
        for &id in circuit.topo_order() {
            let l = circuit.line(id);
            forward[id.index()] = if l.kind().is_input() {
                SatCount::exact(1)
            } else {
                l.fanin().iter().fold(SatCount::exact(0), |a, f| {
                    a.saturating_add(forward[f.index()])
                })
            };
        }
        let mut total = SatCount::exact(0);
        for &id in circuit.topo_order().iter().rev() {
            let l = circuit.line(id);
            backward[id.index()] = if l.is_output() {
                total = total.saturating_add(forward[id.index()]);
                SatCount::exact(1)
            } else {
                l.fanout().iter().fold(SatCount::exact(0), |a, f| {
                    a.saturating_add(backward[f.index()])
                })
            };
        }
        PathTraffic {
            forward,
            backward,
            total,
        }
    }

    /// The number of complete paths through `line`.
    #[must_use]
    pub fn through(&self, line: LineId) -> SatCount {
        self.forward[line.index()].saturating_mul(self.backward[line.index()])
    }

    /// The total number of complete paths of the circuit — by
    /// construction this equals [`PathSpectrum::total`] when neither side
    /// saturated, the reconciliation `pdfatpg analyze` asserts.
    #[must_use]
    pub fn total(&self) -> SatCount {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathEnumerator;
    use pdf_netlist::iscas::{c17, s27};
    use pdf_netlist::SynthProfile;

    #[test]
    fn s27_spectrum_matches_enumeration() {
        let c = s27();
        let spectrum = PathSpectrum::of(&c);
        let full = PathEnumerator::new(&c).with_cap(1_000_000).enumerate();
        assert_eq!(spectrum.total(), full.store.len() as u64);
        for (delay, count) in spectrum.iter_desc() {
            let enumerated = full.store.iter().filter(|e| e.delay == delay).count() as u64;
            assert_eq!(count, enumerated, "delay {delay}");
        }
        assert_eq!(spectrum.max_delay(), Some(10));
        assert_eq!(spectrum.min_delay(), Some(2));
        assert!(!spectrum.saturated());
    }

    #[test]
    fn c17_spectrum() {
        let spectrum = PathSpectrum::of(&c17());
        assert_eq!(spectrum.total(), 11);
    }

    #[test]
    fn random_circuits_match_enumeration() {
        for seed in 0..10u64 {
            let c = SynthProfile::new("spec", seed)
                .with_inputs(6)
                .with_gates(40)
                .with_levels(6)
                .generate()
                .to_circuit()
                .unwrap();
            let spectrum = PathSpectrum::of(&c);
            assert_eq!(spectrum.total(), c.path_count(), "seed {seed}");
            let full = PathEnumerator::new(&c).with_cap(10_000_000).enumerate();
            for (delay, count) in spectrum.iter_desc() {
                let enumerated = full.store.iter().filter(|e| e.delay == delay).count() as u64;
                assert_eq!(count, enumerated, "seed {seed} delay {delay}");
            }
        }
    }

    #[test]
    fn cutoff_delay_mirrors_histogram_cutoff() {
        let c = s27();
        let spectrum = PathSpectrum::of(&c);
        // 2 faults per path; find the cutoff for 10 faults.
        let cutoff = spectrum.cutoff_delay(2, 10).unwrap();
        // Manually: 4 paths at 10 (8 faults), 2 at 9 (12 faults total).
        assert_eq!(cutoff.delay, 9);
        assert!(!cutoff.saturated);
        assert_eq!(spectrum.cutoff_delay(2, 8).map(|c| c.delay), Some(10));
        assert!(spectrum.cutoff_delay(2, 100_000).is_none());
    }

    #[test]
    fn paths_through_lines() {
        let c = s27();
        // Line 21 (id 20) is on 18 of the 28 paths: all paths through the
        // NOR stem G11.
        let through = PathSpectrum::paths_through(&c, pdf_netlist::LineId::new(20));
        let full = PathEnumerator::new(&c).with_cap(1_000_000).enumerate();
        let expected = full
            .store
            .iter()
            .filter(|e| e.path.lines().contains(&pdf_netlist::LineId::new(20)))
            .count() as u64;
        assert_eq!(through, SatCount::exact(expected));
    }

    #[test]
    fn traffic_totals_reconcile_with_spectrum() {
        for (name, c) in [("s27", s27()), ("c17", c17())] {
            let spectrum = PathSpectrum::of(&c);
            let traffic = PathTraffic::of(&c);
            assert_eq!(traffic.total(), SatCount::exact(spectrum.total()), "{name}");
            for &i in c.inputs() {
                assert_eq!(
                    traffic.through(i),
                    PathSpectrum::paths_through(&c, i),
                    "{name} input {i}"
                );
            }
        }
    }

    /// A 70-level branch-and-reconverge chain doubles the path count per
    /// level: 2⁷⁰ complete paths overflow `u64`, and every query must say
    /// so explicitly instead of silently clamping.
    fn overflowing_chain() -> Circuit {
        let mut b = pdf_netlist::CircuitBuilder::new("overflow-chain");
        let mut prev = b.input("x");
        for i in 0..70 {
            let left = b.branch(format!("l{i}"), prev);
            let right = b.branch(format!("r{i}"), prev);
            prev = b.gate(format!("g{i}"), pdf_logic::GateKind::And, &[left, right]);
        }
        b.mark_output(prev);
        b.finish().unwrap()
    }

    #[test]
    fn deep_chain_overflow_is_explicit() {
        let c = overflowing_chain();
        let spectrum = PathSpectrum::of(&c);
        assert!(spectrum.saturated());
        let all = spectrum.count_at_least(0);
        assert!(all.saturated, "count_at_least must flag the clamp");
        assert_eq!(all.count, u64::MAX);
        // The cutoff is reached immediately (the population dwarfs any
        // threshold) and reports the saturation it went through.
        let cutoff = spectrum.cutoff_delay(2, u64::MAX).unwrap();
        assert!(cutoff.saturated);
        // Per-line traffic: the input feeds every path, and its count
        // overflowed on the backward sweep.
        let traffic = PathTraffic::of(&c);
        let through_input = traffic.through(c.inputs()[0]);
        assert!(through_input.saturated);
        assert_eq!(through_input.count, u64::MAX);
        assert!(traffic.total().saturated);
        assert_eq!(format!("{through_input}"), format!(">={}", u64::MAX));
    }

    /// Just below the overflow knee the counts stay exact: 2⁶³ paths fit
    /// in a u64 and nothing may be flagged.
    #[test]
    fn near_overflow_chain_stays_exact() {
        let mut b = pdf_netlist::CircuitBuilder::new("exact-chain");
        let mut prev = b.input("x");
        for i in 0..63 {
            let left = b.branch(format!("l{i}"), prev);
            let right = b.branch(format!("r{i}"), prev);
            prev = b.gate(format!("g{i}"), pdf_logic::GateKind::And, &[left, right]);
        }
        b.mark_output(prev);
        let c = b.finish().unwrap();
        let spectrum = PathSpectrum::of(&c);
        assert!(!spectrum.saturated());
        let all = spectrum.count_at_least(0);
        assert!(!all.saturated);
        assert_eq!(all.count, 1u64 << 63);
        let traffic = PathTraffic::of(&c);
        assert_eq!(traffic.total(), SatCount::exact(1u64 << 63));
    }

    #[test]
    fn deep_circuit_does_not_enumerate() {
        // A circuit with far too many paths to enumerate still gets an
        // exact spectrum instantly.
        let c = SynthProfile::new("deep", 1)
            .with_inputs(12)
            .with_gates(600)
            .with_levels(40)
            .with_adjacent_bias(0.9)
            .with_pi_bias(0.1)
            .generate()
            .to_circuit()
            .unwrap();
        let spectrum = PathSpectrum::of(&c);
        assert_eq!(spectrum.total(), c.path_count());
        assert!(spectrum.total() > 100_000);
    }
}
