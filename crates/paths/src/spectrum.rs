//! Non-enumerative path counting by length.
//!
//! The paper sizes its fault stores by "considering the number of paths of
//! every length" and cites the authors' non-enumerative coverage
//! estimation work (its reference \[2\]). This module provides that
//! substrate: the exact number of complete paths of every delay, computed
//! by dynamic programming over the line graph **without enumerating a
//! single path** — time `O(lines × distinct delays)`, even when the
//! circuit has astronomically many paths.
//!
//! It doubles as a differential oracle for the enumerator: on circuits
//! small enough to enumerate, the per-length counts must match exactly.

use std::collections::BTreeMap;

use pdf_netlist::{Circuit, LineId};

/// The number of complete input-to-output paths per total delay.
///
/// Counts saturate at `u64::MAX` (flagged by [`PathSpectrum::saturated`]).
///
/// # Example
///
/// ```
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathSpectrum;
///
/// let spectrum = PathSpectrum::of(&s27());
/// assert_eq!(spectrum.total(), 28);            // s27 has 28 paths
/// assert_eq!(spectrum.count_at(10), 4);        // four critical paths
/// assert_eq!(spectrum.count_at_least(7), 18);  // the walkthrough's 18
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSpectrum {
    /// delay -> number of complete paths of exactly that delay.
    counts: BTreeMap<u32, u64>,
    saturated: bool,
}

impl PathSpectrum {
    /// Computes the spectrum of `circuit`.
    #[must_use]
    pub fn of(circuit: &Circuit) -> PathSpectrum {
        // suffix[l] : delay -> number of line sequences from l (inclusive)
        // to an output, where the delay includes l's own delay.
        let mut suffix: Vec<BTreeMap<u32, u64>> = vec![BTreeMap::new(); circuit.line_count()];
        let mut saturated = false;
        for &id in circuit.topo_order().iter().rev() {
            let line = circuit.line(id);
            let mut map = BTreeMap::new();
            if line.is_output() {
                map.insert(line.delay(), 1u64);
            } else {
                for &f in line.fanout() {
                    // Clone keeps the borrow checker happy; suffix maps are
                    // small (one entry per distinct delay).
                    let child = suffix[f.index()].clone();
                    for (d, n) in child {
                        let entry = map.entry(d + line.delay()).or_insert(0u64);
                        let (sum, overflow) = entry.overflowing_add(n);
                        *entry = if overflow { u64::MAX } else { sum };
                        saturated |= overflow || *entry == u64::MAX && n == u64::MAX;
                    }
                }
            }
            suffix[id.index()] = map;
        }
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for &i in circuit.inputs() {
            for (&d, &n) in &suffix[i.index()] {
                let entry = counts.entry(d).or_insert(0);
                let (sum, overflow) = entry.overflowing_add(n);
                *entry = if overflow { u64::MAX } else { sum };
                saturated |= overflow;
            }
        }
        PathSpectrum { counts, saturated }
    }

    /// The number of complete paths of exactly `delay`.
    #[must_use]
    pub fn count_at(&self, delay: u32) -> u64 {
        self.counts.get(&delay).copied().unwrap_or(0)
    }

    /// The number of complete paths of delay `delay` or more.
    #[must_use]
    pub fn count_at_least(&self, delay: u32) -> u64 {
        self.counts
            .range(delay..)
            .fold(0u64, |acc, (_, &n)| acc.saturating_add(n))
    }

    /// Total number of complete paths.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts
            .values()
            .fold(0u64, |acc, &n| acc.saturating_add(n))
    }

    /// The largest path delay (`L_0`), or `None` for a pathless circuit.
    #[must_use]
    pub fn max_delay(&self) -> Option<u32> {
        self.counts.keys().next_back().copied()
    }

    /// The smallest path delay, or `None` for a pathless circuit.
    #[must_use]
    pub fn min_delay(&self) -> Option<u32> {
        self.counts.keys().next().copied()
    }

    /// Iterates `(delay, count)` pairs in decreasing delay order.
    pub fn iter_desc(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().rev().map(|(&d, &n)| (d, n))
    }

    /// `true` if any count saturated at `u64::MAX` (the circuit has more
    /// than 2⁶⁴−1 paths of some length).
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// The smallest delay `L` such that counting `units` faults per path,
    /// the population at delay `L` or longer reaches `threshold` — the
    /// non-enumerative way to choose the `P_0` cutoff, useful to size
    /// `N_P` before enumerating (the paper: "`N_P` can be determined by
    /// considering the number of paths of every length").
    #[must_use]
    pub fn cutoff_delay(&self, units: u64, threshold: u64) -> Option<u32> {
        let mut acc = 0u64;
        for (&d, &n) in self.counts.iter().rev() {
            acc = acc.saturating_add(n.saturating_mul(units));
            if acc >= threshold {
                return Some(d);
            }
        }
        None
    }

    /// The number of complete paths running through `line` (any delay),
    /// saturating.
    #[must_use]
    pub fn paths_through(circuit: &Circuit, line: LineId) -> u64 {
        // forward[l]: #paths from any input to l; backward[l]: #sequences
        // from l to any output. Paths through l = forward × backward.
        let mut forward = vec![0u64; circuit.line_count()];
        let mut backward = vec![0u64; circuit.line_count()];
        for &id in circuit.topo_order() {
            let l = circuit.line(id);
            forward[id.index()] = if l.kind().is_input() {
                1
            } else {
                l.fanin()
                    .iter()
                    .fold(0u64, |a, f| a.saturating_add(forward[f.index()]))
            };
        }
        for &id in circuit.topo_order().iter().rev() {
            let l = circuit.line(id);
            backward[id.index()] = if l.is_output() {
                1
            } else {
                l.fanout()
                    .iter()
                    .fold(0u64, |a, f| a.saturating_add(backward[f.index()]))
            };
        }
        forward[line.index()].saturating_mul(backward[line.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathEnumerator;
    use pdf_netlist::iscas::{c17, s27};
    use pdf_netlist::SynthProfile;

    #[test]
    fn s27_spectrum_matches_enumeration() {
        let c = s27();
        let spectrum = PathSpectrum::of(&c);
        let full = PathEnumerator::new(&c).with_cap(1_000_000).enumerate();
        assert_eq!(spectrum.total(), full.store.len() as u64);
        for (delay, count) in spectrum.iter_desc() {
            let enumerated = full.store.iter().filter(|e| e.delay == delay).count() as u64;
            assert_eq!(count, enumerated, "delay {delay}");
        }
        assert_eq!(spectrum.max_delay(), Some(10));
        assert_eq!(spectrum.min_delay(), Some(2));
        assert!(!spectrum.saturated());
    }

    #[test]
    fn c17_spectrum() {
        let spectrum = PathSpectrum::of(&c17());
        assert_eq!(spectrum.total(), 11);
    }

    #[test]
    fn random_circuits_match_enumeration() {
        for seed in 0..10u64 {
            let c = SynthProfile::new("spec", seed)
                .with_inputs(6)
                .with_gates(40)
                .with_levels(6)
                .generate()
                .to_circuit()
                .unwrap();
            let spectrum = PathSpectrum::of(&c);
            assert_eq!(spectrum.total(), c.path_count(), "seed {seed}");
            let full = PathEnumerator::new(&c).with_cap(10_000_000).enumerate();
            for (delay, count) in spectrum.iter_desc() {
                let enumerated = full.store.iter().filter(|e| e.delay == delay).count() as u64;
                assert_eq!(count, enumerated, "seed {seed} delay {delay}");
            }
        }
    }

    #[test]
    fn cutoff_delay_mirrors_histogram_cutoff() {
        let c = s27();
        let spectrum = PathSpectrum::of(&c);
        // 2 faults per path; find the cutoff for 10 faults.
        let cutoff = spectrum.cutoff_delay(2, 10).unwrap();
        // Manually: 4 paths at 10 (8 faults), 2 at 9 (12 faults total).
        assert_eq!(cutoff, 9);
        assert_eq!(spectrum.cutoff_delay(2, 8), Some(10));
        assert_eq!(spectrum.cutoff_delay(2, 100_000), None);
    }

    #[test]
    fn paths_through_lines() {
        let c = s27();
        // Line 21 (id 20) is on 18 of the 28 paths: all paths through the
        // NOR stem G11.
        let through = PathSpectrum::paths_through(&c, pdf_netlist::LineId::new(20));
        let full = PathEnumerator::new(&c).with_cap(1_000_000).enumerate();
        let expected = full
            .store
            .iter()
            .filter(|e| e.path.lines().contains(&pdf_netlist::LineId::new(20)))
            .count() as u64;
        assert_eq!(through, expected);
    }

    #[test]
    fn deep_circuit_does_not_enumerate() {
        // A circuit with far too many paths to enumerate still gets an
        // exact spectrum instantly.
        let c = SynthProfile::new("deep", 1)
            .with_inputs(12)
            .with_gates(600)
            .with_levels(40)
            .with_adjacent_bias(0.9)
            .with_pi_bias(0.1)
            .generate()
            .to_circuit()
            .unwrap();
        let spectrum = PathSpectrum::of(&c);
        assert_eq!(spectrum.total(), c.path_count());
        assert!(spectrum.total() > 100_000);
    }
}
