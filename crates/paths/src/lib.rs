//! Path enumeration with capped fault stores for path delay fault test
//! generation.
//!
//! Circuits of practical size have far too many paths to target every path
//! delay fault, so test generation restricts itself to the faults on the
//! *longest* paths. This crate implements the enumeration machinery of
//! Pomeranz & Reddy (DATE 2002, Sec. 3.1):
//!
//! * [`Path`] — a physical path as a sequence of lines (fanout branches
//!   included), with delays and the `len(p)` extension bound;
//! * [`PathEnumerator`] — capped enumeration of the longest paths, in both
//!   the moderate work-list variant and the distance-guided best-first
//!   variant;
//! * [`PathStore`] / [`LengthHistogram`] — the retained path population
//!   and its per-length fault counts (`n_p(L_i)`, `N_p(L_i)`), the basis
//!   for selecting the target sets `P_0` and `P_1`.
//!
//! # Example
//!
//! ```
//! use pdf_netlist::iscas::s27;
//! use pdf_paths::PathEnumerator;
//!
//! let circuit = s27();
//! let result = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
//! // s27 is small: every complete path is retained.
//! assert_eq!(result.store.len() as u64, circuit.path_count());
//! let histogram = result.store.histogram(2); // two faults per path
//! assert_eq!(histogram.classes()[0].length, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enumerate;
mod path;
mod select;
mod spectrum;
mod store;

pub use enumerate::{
    EnumEvent, Enumeration, EnumerationStats, PathEnumerator, SnapshotPath, Strategy,
};
pub use path::{Path, PathError};
pub use select::{select_line_cover, LineCoverSelection};
pub use spectrum::{Cutoff, PathSpectrum, PathTraffic, SatCount};
pub use store::{ClassCounts, LengthClass, LengthHistogram, PathClass, PathStore, StoredPath};

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use crate::select_line_cover;
    pub use crate::{LengthHistogram, Path, PathEnumerator, PathSpectrum, PathStore, Strategy};
}
