//! The enumerated path store and its length statistics.

use core::fmt;

use crate::Path;

/// Static sensitizability verdict for one stored path — the three-way
/// lattice of the analysis layer's classification pass (`False <
/// Unknown`, `Robust < Unknown` in information order; `Unknown` is the
/// sound default for every untagged path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum PathClass {
    /// Provably unsensitizable: no two-pattern test can propagate a
    /// transition along this path under the sensitization criterion it
    /// was classified for. Sound to drop from every target fault set.
    False,
    /// Provably robustly sensitizable: a robust two-pattern test exists.
    Robust,
    /// Neither proof applies (the default).
    #[default]
    Unknown,
}

impl PathClass {
    /// Stable lowercase label (report keys, cell labels).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            PathClass::False => "false",
            PathClass::Robust => "robust",
            PathClass::Unknown => "unknown",
        }
    }
}

impl fmt::Display for PathClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-class path totals of one store, as produced by
/// [`PathStore::class_counts`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Paths tagged [`PathClass::False`].
    pub false_paths: usize,
    /// Paths tagged [`PathClass::Robust`].
    pub robust: usize,
    /// Untagged paths and paths tagged [`PathClass::Unknown`].
    pub unknown: usize,
}

impl ClassCounts {
    /// Sum over all classes — always the store's length.
    #[must_use]
    pub const fn total(&self) -> usize {
        self.false_paths + self.robust + self.unknown
    }
}

/// A collection of complete paths together with their delays, as produced
/// by enumeration, plus optional per-path classification tags attached by
/// the static sensitizability analysis.
#[derive(Clone, Debug, Default)]
pub struct PathStore {
    entries: Vec<StoredPath>,
    /// Classification side-table, indexed like `entries`; shorter than
    /// `entries` when a suffix is untagged (reads as `Unknown`).
    classes: Vec<PathClass>,
}

/// One path with its cached delay.
#[derive(Clone, Debug)]
pub struct StoredPath {
    /// The physical path.
    pub path: Path,
    /// Its delay under the circuit's delay model at enumeration time.
    pub delay: u32,
}

impl PathStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> PathStore {
        PathStore::default()
    }

    /// Adds a path with its delay.
    pub fn push(&mut self, path: Path, delay: u32) {
        self.entries.push(StoredPath { path, delay });
    }

    /// Number of stored paths.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the store holds no paths.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entries, in storage order.
    #[inline]
    #[must_use]
    pub fn entries(&self) -> &[StoredPath] {
        &self.entries
    }

    /// Iterates over the stored paths.
    pub fn iter(&self) -> impl Iterator<Item = &StoredPath> {
        self.entries.iter()
    }

    /// The largest stored delay, or `None` when empty.
    #[must_use]
    pub fn max_delay(&self) -> Option<u32> {
        self.entries.iter().map(|e| e.delay).max()
    }

    /// The smallest stored delay, or `None` when empty.
    #[must_use]
    pub fn min_delay(&self) -> Option<u32> {
        self.entries.iter().map(|e| e.delay).min()
    }

    /// Sorts entries by descending delay; ties keep storage order
    /// (stable sort), which keeps downstream fault ordering deterministic.
    /// Classification tags move with their paths.
    pub fn sort_by_delay_desc(&mut self) {
        if self.classes.is_empty() {
            self.entries.sort_by_key(|e| std::cmp::Reverse(e.delay));
            return;
        }
        self.classes.resize(self.entries.len(), PathClass::Unknown);
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.entries[i].delay));
        self.entries = order.iter().map(|&i| self.entries[i].clone()).collect();
        self.classes = order.iter().map(|&i| self.classes[i]).collect();
    }

    /// Tags the path at `index` with its classification verdict.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds — a tag must always name a
    /// stored path.
    pub fn set_class(&mut self, index: usize, class: PathClass) {
        assert!(index < self.entries.len(), "class tag out of bounds");
        if self.classes.len() <= index {
            self.classes.resize(index + 1, PathClass::Unknown);
        }
        self.classes[index] = class;
    }

    /// The classification tag of the path at `index` (`Unknown` when the
    /// path was never tagged).
    #[must_use]
    pub fn class(&self, index: usize) -> PathClass {
        self.classes.get(index).copied().unwrap_or_default()
    }

    /// Per-class totals over the whole store. The counts always sum to
    /// [`PathStore::len`] — the reconciliation `pdfatpg analyze` reports.
    #[must_use]
    pub fn class_counts(&self) -> ClassCounts {
        let mut counts = ClassCounts::default();
        for i in 0..self.entries.len() {
            match self.class(i) {
                PathClass::False => counts.false_paths += 1,
                PathClass::Robust => counts.robust += 1,
                PathClass::Unknown => counts.unknown += 1,
            }
        }
        counts
    }

    /// Builds the length histogram of the store, counting `units` faults
    /// per path (two — one slow-to-rise, one slow-to-fall — in the standard
    /// model).
    #[must_use]
    pub fn histogram(&self, units: u32) -> LengthHistogram {
        LengthHistogram::from_lengths(
            self.entries
                .iter()
                .flat_map(|e| std::iter::repeat_n(e.delay, units as usize)),
        )
    }
}

impl FromIterator<StoredPath> for PathStore {
    fn from_iter<T: IntoIterator<Item = StoredPath>>(iter: T) -> PathStore {
        PathStore {
            entries: iter.into_iter().collect(),
            classes: Vec::new(),
        }
    }
}

impl Extend<StoredPath> for PathStore {
    fn extend<T: IntoIterator<Item = StoredPath>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

/// One row of a [`LengthHistogram`]: a distinct length `L_i` with its fault
/// counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LengthClass {
    /// The length `L_i` (lengths are indexed in decreasing order, so row 0
    /// is the critical length `L_0`).
    pub length: u32,
    /// `n_p(L_i)`: the number of faults of exactly this length.
    pub count: usize,
    /// `N_p(L_i)`: the number of faults of this length *or longer*
    /// (cumulative from row 0).
    pub cumulative: usize,
}

/// The per-length fault counts `n_p(L_i)` and cumulative counts
/// `N_p(L_i)`, lengths in decreasing order — the shape of the paper's
/// Table 2.
///
/// # Example
///
/// ```
/// use pdf_paths::LengthHistogram;
///
/// let h = LengthHistogram::from_lengths([96, 96, 95, 95, 95, 94]);
/// assert_eq!(h.classes()[0].length, 96);
/// assert_eq!(h.classes()[0].cumulative, 2);
/// assert_eq!(h.classes()[1].cumulative, 5);
/// // First index whose cumulative count reaches 5:
/// assert_eq!(h.cutoff(5), Some(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LengthHistogram {
    classes: Vec<LengthClass>,
}

impl LengthHistogram {
    /// Builds the histogram from one length value per fault.
    #[must_use]
    pub fn from_lengths<I>(lengths: I) -> LengthHistogram
    where
        I: IntoIterator<Item = u32>,
    {
        let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for l in lengths {
            *counts.entry(l).or_insert(0) += 1;
        }
        let mut classes = Vec::with_capacity(counts.len());
        let mut cumulative = 0usize;
        for (&length, &count) in counts.iter().rev() {
            cumulative += count;
            classes.push(LengthClass {
                length,
                count,
                cumulative,
            });
        }
        LengthHistogram { classes }
    }

    /// The length classes, critical length first.
    #[inline]
    #[must_use]
    pub fn classes(&self) -> &[LengthClass] {
        &self.classes
    }

    /// Number of distinct lengths.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if there are no classes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total number of faults.
    #[must_use]
    pub fn total(&self) -> usize {
        self.classes.last().map_or(0, |c| c.cumulative)
    }

    /// The smallest index `i0` such that `N_p(L_{i0}) >= threshold` — the
    /// paper's rule for sizing the first target set `P_0` (with
    /// `threshold = N_P0 = 1000`). Returns `None` when even the full
    /// population is smaller than `threshold`.
    #[must_use]
    pub fn cutoff(&self, threshold: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.cumulative >= threshold)
    }

    /// The length `L_i` at index `i`, if present.
    #[must_use]
    pub fn length_at(&self, i: usize) -> Option<u32> {
        self.classes.get(i).map(|c| c.length)
    }
}

impl fmt::Display for LengthHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>4} {:>8} {:>10}", "i", "L_i", "N_p(L_i)")?;
        for (i, c) in self.classes.iter().enumerate() {
            writeln!(f, "{:>4} {:>8} {:>10}", i, c.length, c.cumulative)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::LineId;

    fn p(ids: &[usize]) -> Path {
        ids.iter().map(|&k| LineId::new(k)).collect()
    }

    #[test]
    fn store_basics() {
        let mut s = PathStore::new();
        assert!(s.is_empty());
        s.push(p(&[0, 1]), 2);
        s.push(p(&[0, 1, 2]), 3);
        s.push(p(&[3, 4]), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_delay(), Some(3));
        assert_eq!(s.min_delay(), Some(2));
        s.sort_by_delay_desc();
        assert_eq!(s.entries()[0].delay, 3);
        // Stable: the two delay-2 paths keep their relative order.
        assert_eq!(s.entries()[1].path, p(&[0, 1]));
    }

    #[test]
    fn histogram_counts_units_per_path() {
        let mut s = PathStore::new();
        s.push(p(&[0, 1]), 5);
        s.push(p(&[0, 2]), 5);
        s.push(p(&[0, 3]), 4);
        let h = s.histogram(2);
        assert_eq!(h.total(), 6);
        assert_eq!(
            h.classes()[0],
            LengthClass {
                length: 5,
                count: 4,
                cumulative: 4
            }
        );
        assert_eq!(
            h.classes()[1],
            LengthClass {
                length: 4,
                count: 2,
                cumulative: 6
            }
        );
    }

    #[test]
    fn cutoff_matches_paper_rule() {
        // Mimic the paper's Table 2 head: N_p = 4, 12, 22, 36, ...
        let mut lengths = Vec::new();
        for (l, n) in [(96u32, 4usize), (95, 8), (94, 10), (93, 14)] {
            lengths.extend(std::iter::repeat_n(l, n));
        }
        let h = LengthHistogram::from_lengths(lengths);
        assert_eq!(h.cutoff(1), Some(0));
        assert_eq!(h.cutoff(4), Some(0));
        assert_eq!(h.cutoff(5), Some(1));
        assert_eq!(h.cutoff(12), Some(1));
        assert_eq!(h.cutoff(13), Some(2));
        assert_eq!(h.cutoff(37), None);
        assert_eq!(h.length_at(2), Some(94));
    }

    #[test]
    fn class_tags_follow_paths_through_sort() {
        let mut s = PathStore::new();
        s.push(p(&[0, 1]), 2);
        s.push(p(&[0, 1, 2]), 3);
        s.push(p(&[3, 4]), 5);
        // Untagged paths read as Unknown.
        assert_eq!(s.class(1), PathClass::Unknown);
        s.set_class(0, PathClass::False);
        s.set_class(2, PathClass::Robust);
        let counts = s.class_counts();
        assert_eq!(
            counts,
            ClassCounts {
                false_paths: 1,
                robust: 1,
                unknown: 1
            }
        );
        assert_eq!(counts.total(), s.len());
        s.sort_by_delay_desc();
        // Descending delay: 5 (robust), 3 (untagged), 2 (false).
        assert_eq!(s.class(0), PathClass::Robust);
        assert_eq!(s.class(1), PathClass::Unknown);
        assert_eq!(s.class(2), PathClass::False);
        assert_eq!(s.class_counts(), counts);
    }

    #[test]
    #[should_panic(expected = "class tag out of bounds")]
    fn class_tag_out_of_bounds_panics() {
        let mut s = PathStore::new();
        s.set_class(0, PathClass::False);
    }

    #[test]
    fn empty_histogram() {
        let h = LengthHistogram::from_lengths(std::iter::empty());
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.cutoff(1), None);
    }

    #[test]
    fn display_has_table2_shape() {
        let h = LengthHistogram::from_lengths([10, 10, 9]);
        let text = h.to_string();
        assert!(text.contains("L_i"));
        assert!(text.contains("N_p(L_i)"));
        assert_eq!(text.lines().count(), 3);
    }
}
