//! Line-coverage path selection (the paper's alternative `P_0` criterion).
//!
//! Besides taking the globally longest paths, the paper notes that the
//! first target set may hold "faults selected based on the criterion of
//! \[3\]" — W.-N. Li, S. M. Reddy and S. K. Sahni, *On Path Selection in
//! Combinational Logic Circuits* (IEEE TCAD, 1989): select paths such that
//! **every line of the circuit lies on at least one selected path, and
//! that path is one of the longest paths through the line**.
//!
//! The selection runs in `O(lines)` after two dynamic-programming passes:
//! the longest-prefix delay into every line and the longest-suffix delay
//! out of it. For each line, one maximal path through it is reconstructed
//! greedily (deterministic tie-breaking by line id); duplicates collapse.

use pdf_netlist::{Circuit, LineId};

use crate::{Path, PathStore};

/// The result of line-coverage path selection.
#[derive(Clone, Debug)]
pub struct LineCoverSelection {
    /// The selected paths (each is a longest path through at least one
    /// line it covers), with delays.
    pub store: PathStore,
    /// For each line, the index into `store` of the selected path
    /// covering it.
    pub cover: Vec<usize>,
}

/// Selects one longest path through every line (Li–Reddy–Sahni style).
///
/// Every circuit line is covered; the number of selected paths is at most
/// the number of lines and usually far smaller.
///
/// # Example
///
/// ```
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::select_line_cover;
///
/// let circuit = s27();
/// let selection = select_line_cover(&circuit);
/// // s27's 26 lines are covered by a handful of paths.
/// assert!(selection.store.len() <= 26);
/// assert_eq!(selection.cover.len(), 26);
/// ```
#[must_use]
pub fn select_line_cover(circuit: &Circuit) -> LineCoverSelection {
    let n = circuit.line_count();
    // prefix[l]: the maximum delay of a path from an input up to and
    // including l; best_pred[l]: the fanin achieving it.
    let mut prefix = vec![0u32; n];
    let mut best_pred: Vec<Option<LineId>> = vec![None; n];
    for &id in circuit.topo_order() {
        let line = circuit.line(id);
        let mut best = 0u32;
        let mut pred = None;
        for &f in line.fanin() {
            let candidate = prefix[f.index()];
            if candidate > best || (candidate == best && pred.is_none()) {
                best = candidate;
                pred = Some(f);
            }
        }
        prefix[id.index()] = best + line.delay();
        best_pred[id.index()] = pred;
    }
    // suffix[l]: maximum delay strictly after l (the circuit's distance);
    // best_succ[l]: the fanout achieving it.
    let mut best_succ: Vec<Option<LineId>> = vec![None; n];
    for &id in circuit.topo_order().iter().rev() {
        let line = circuit.line(id);
        let mut best = None::<(u32, LineId)>;
        for &f in line.fanout() {
            let candidate = circuit.line(f).delay() + circuit.distance_to_output(f);
            if best.is_none_or(|(b, _)| candidate > b) {
                best = Some((candidate, f));
            }
        }
        best_succ[id.index()] = best.map(|(_, f)| f);
        debug_assert_eq!(circuit.distance_to_output(id), best.map_or(0, |(b, _)| b),);
    }

    // Reconstruct, for every line, one maximal path *through that line*
    // (longest prefix into it + longest suffix out of it); dedup shared
    // reconstructions. A path maximal through one line is generally not
    // maximal through the other lines it crosses, so each line keeps the
    // path built from its own walk.
    let mut store = PathStore::new();
    let mut index_of: std::collections::HashMap<Vec<LineId>, usize> =
        std::collections::HashMap::new();
    let mut cover = vec![usize::MAX; n];
    for (idx, _) in circuit.iter() {
        // Walk back to an input...
        let mut lines = Vec::new();
        let mut cursor = idx;
        loop {
            lines.push(cursor);
            match best_pred[cursor.index()] {
                Some(p) => cursor = p,
                None => break,
            }
        }
        lines.reverse();
        // ...and forward to an output.
        let mut cursor = idx;
        while let Some(sux) = best_succ[cursor.index()] {
            lines.push(sux);
            cursor = sux;
        }
        let slot = *index_of.entry(lines.clone()).or_insert_with(|| {
            let path = Path::new(lines.clone());
            let delay = path.delay(circuit);
            store.push(path, delay);
            store.len() - 1
        });
        cover[idx.index()] = slot;
    }
    debug_assert!(cover.iter().all(|&c| c != usize::MAX));
    LineCoverSelection { store, cover }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::{c17, s27};
    use pdf_netlist::SynthProfile;

    fn check(circuit: &Circuit) {
        let selection = select_line_cover(circuit);
        // Every line covered by a valid complete path that contains it.
        for (id, _) in circuit.iter() {
            let slot = selection.cover[id.index()];
            let entry = &selection.store.entries()[slot];
            entry.path.validate(circuit).unwrap();
            assert!(entry.path.is_complete(circuit));
            assert!(
                entry.path.lines().contains(&id),
                "line {id} not on its path"
            );
        }
        // Each selected path is a longest path through each line it covers
        // in the "through" sense: delay = prefix + suffix at that line.
        for (id, _) in circuit.iter() {
            let slot = selection.cover[id.index()];
            let entry = &selection.store.entries()[slot];
            let through_max = longest_through(circuit, id);
            assert_eq!(
                entry.delay, through_max,
                "line {id}: path {} is not maximal",
                entry.path
            );
        }
    }

    /// Brute-force longest complete path delay through `line`.
    fn longest_through(circuit: &Circuit, line: LineId) -> u32 {
        let full = crate::PathEnumerator::new(circuit)
            .with_cap(10_000_000)
            .enumerate();
        full.store
            .iter()
            .filter(|e| e.path.lines().contains(&line))
            .map(|e| e.delay)
            .max()
            .expect("every line lies on some path")
    }

    #[test]
    fn covers_s27() {
        check(&s27());
    }

    #[test]
    fn covers_c17() {
        check(&c17());
    }

    #[test]
    fn covers_random_circuits() {
        for seed in 0..5u64 {
            let c = SynthProfile::new("cov", seed)
                .with_inputs(6)
                .with_gates(30)
                .with_levels(5)
                .generate()
                .to_circuit()
                .unwrap();
            check(&c);
        }
    }

    #[test]
    fn selection_is_much_smaller_than_enumeration() {
        let c = s27();
        let selection = select_line_cover(&c);
        assert!(selection.store.len() < c.line_count());
        // The critical path is always selected (it is the longest path
        // through each of its lines).
        assert_eq!(selection.store.max_delay(), Some(c.critical_delay()));
    }
}
