//! A deterministic work-stealing worker pool.
//!
//! The generation session shards each round of speculative per-fault
//! builds across a persistent pool of workers. Work lives on per-worker
//! deques (each worker is dealt a contiguous chunk of the round), idle
//! workers steal from the back of a victim's deque, and finished results
//! flow back through a **sequence-number reorder buffer**: the caller
//! receives them strictly in submission order, one at a time, on its own
//! thread. Because every job is a pure function of its input and the
//! merge order is the submission order, the merged outcome is
//! byte-identical for any thread count and any steal schedule — the
//! schedule can only change *when* a result is computed, never *where*
//! it lands.
//!
//! The pool is deliberately minimal: plain `std` threads, one mutex, two
//! condvars, no unsafe, no lock-free cleverness. Rounds are small (a
//! generation batch), so the coordination cost is irrelevant next to the
//! justification work each job performs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use pdf_telemetry::counters;

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct PoolOptions {
    /// Worker threads. `0` and `1` both mean inline execution on the
    /// caller's thread (no pool threads are spawned at all).
    pub threads: usize,
    /// Forces the pathological steal schedule: every worker prefers
    /// stealing from other deques over draining its own. The merged
    /// result must not change — this is the lever the differential tests
    /// use to prove schedule-independence.
    pub force_steal: bool,
}

impl PoolOptions {
    /// A pool of `threads` workers with the natural steal schedule.
    #[must_use]
    pub fn new(threads: usize) -> PoolOptions {
        PoolOptions {
            threads,
            force_steal: false,
        }
    }

    /// Enables forced stealing (see [`PoolOptions::force_steal`]).
    #[must_use]
    pub fn with_force_steal(mut self, force: bool) -> PoolOptions {
        self.force_steal = force;
        self
    }
}

/// What the caller's in-order result callback tells the round driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep delivering results.
    Continue,
    /// Abandon the round: unstarted jobs are dropped, in-flight jobs are
    /// drained and their results discarded, no further callback runs.
    Stop,
}

/// Runs `driver` with a round runner backed by a persistent worker pool
/// executing `worker` (or inline on the caller's thread for
/// `options.threads <= 1`). Workers live for the whole `driver` call and
/// serve every round it submits.
///
/// A panic inside `worker` is rethrown on the caller's thread from the
/// corresponding [`RoundRunner::run_round`] call, at the panicked job's
/// position in the sequence order.
pub fn with_pool<T, R, W, F, O>(options: &PoolOptions, worker: W, driver: F) -> O
where
    T: Send,
    R: Send,
    W: Fn(T) -> R + Sync,
    F: FnOnce(&mut RoundRunner<'_, T, R>) -> O,
{
    if options.threads <= 1 {
        let mut runner = RoundRunner {
            inner: Inner::Inline(&worker),
        };
        return driver(&mut runner);
    }
    let shared = Shared::new(options.threads, options.force_steal);
    std::thread::scope(|scope| {
        let shared = &shared;
        let worker = &worker;
        for me in 0..options.threads {
            scope.spawn(move || shared.worker_loop(me, worker));
        }
        // The workers only exit on shutdown; raise it however the driver
        // leaves (return or panic), or the scope would join forever.
        struct ShutdownOnDrop<'s, T, R>(&'s Shared<T, R>);
        impl<T, R> Drop for ShutdownOnDrop<'_, T, R> {
            fn drop(&mut self) {
                self.0.shutdown();
            }
        }
        let _shutdown = ShutdownOnDrop(shared);
        let mut runner = RoundRunner {
            inner: Inner::Pooled(shared),
        };
        driver(&mut runner)
    })
}

/// Submits rounds of jobs and receives results in submission order.
pub struct RoundRunner<'a, T, R> {
    inner: Inner<'a, T, R>,
}

enum Inner<'a, T, R> {
    Inline(&'a (dyn Fn(T) -> R + Sync)),
    Pooled(&'a Shared<T, R>),
}

impl<T: Send, R: Send> RoundRunner<'_, T, R> {
    /// Runs one round: every job in `items` executes (in any schedule),
    /// and `on_result(seq, result)` is called on this thread strictly in
    /// item order — result 0 first, then 1, and so on. Returns whether
    /// the round was stopped early: after a [`Control::Stop`], remaining
    /// jobs are dropped or drained unobserved and the callback is not
    /// called again.
    ///
    /// The inline and pooled paths are observationally identical for
    /// pure jobs: the same prefix of results reaches the callback in the
    /// same order.
    pub fn run_round(
        &mut self,
        items: Vec<T>,
        mut on_result: impl FnMut(usize, R) -> Control,
    ) -> bool {
        match &self.inner {
            Inner::Inline(worker) => {
                for (seq, item) in items.into_iter().enumerate() {
                    if matches!(on_result(seq, worker(item)), Control::Stop) {
                        return true;
                    }
                }
                false
            }
            Inner::Pooled(shared) => shared.run_round(items, &mut on_result),
        }
    }
}

/// One job's result as stored in the reorder buffer: the worker catches
/// panics so a poisoned job cannot deadlock the commit thread.
type JobResult<R> = std::thread::Result<R>;

struct RoundState<T, R> {
    shutdown: bool,
    /// Per-worker job queues; a job is `(sequence number, payload)`.
    deques: Vec<VecDeque<(usize, T)>>,
    /// Jobs claimed but not yet delivered.
    in_flight: usize,
    /// The reorder buffer, indexed by sequence number.
    results: Vec<Option<JobResult<R>>>,
}

struct Shared<T, R> {
    state: Mutex<RoundState<T, R>>,
    /// Signalled when work is distributed or shutdown is raised.
    work_cv: Condvar,
    /// Signalled when a result lands in the reorder buffer.
    done_cv: Condvar,
    force_steal: bool,
}

impl<T, R> Shared<T, R> {
    fn new(threads: usize, force_steal: bool) -> Shared<T, R> {
        Shared {
            state: Mutex::new(RoundState {
                shutdown: false,
                deques: (0..threads).map(|_| VecDeque::new()).collect(),
                in_flight: 0,
                results: Vec::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            force_steal,
        }
    }

    fn lock(&self) -> MutexGuard<'_, RoundState<T, R>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work_cv.notify_all();
    }
}

impl<T: Send, R: Send> Shared<T, R> {
    /// Claims one job for worker `me`: own deque front first, then the
    /// back of the other workers' deques (the classic stealing end — the
    /// victim keeps its cache-warm front). Under forced stealing the
    /// preference inverts, producing the most order-scrambled schedule
    /// the pool can express.
    fn claim(&self, st: &mut RoundState<T, R>, me: usize) -> Option<(usize, T)> {
        let n = st.deques.len();
        if !self.force_steal {
            if let Some(job) = st.deques[me].pop_front() {
                st.in_flight += 1;
                return Some(job);
            }
        }
        for k in 1..n {
            let victim = (me + k) % n;
            if let Some(job) = st.deques[victim].pop_back() {
                st.in_flight += 1;
                pdf_telemetry::count(counters::POOL_STEALS, 1);
                return Some(job);
            }
        }
        if self.force_steal {
            if let Some(job) = st.deques[me].pop_front() {
                st.in_flight += 1;
                return Some(job);
            }
        }
        None
    }

    fn worker_loop<W: Fn(T) -> R + Sync>(&self, me: usize, worker: &W) {
        loop {
            let (seq, item) = {
                let mut st = self.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(job) = self.claim(&mut st, me) {
                        break job;
                    }
                    st = self
                        .work_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let result = catch_unwind(AssertUnwindSafe(|| worker(item)));
            let mut st = self.lock();
            st.results[seq] = Some(result);
            st.in_flight -= 1;
            drop(st);
            self.done_cv.notify_all();
        }
    }

    fn run_round(&self, items: Vec<T>, on_result: &mut dyn FnMut(usize, R) -> Control) -> bool {
        let n = items.len();
        if n == 0 {
            return false;
        }
        {
            let mut st = self.lock();
            debug_assert_eq!(st.in_flight, 0, "previous round must be drained");
            st.results = (0..n).map(|_| None).collect();
            // Deal contiguous chunks: worker w owns jobs [w*chunk, ...).
            let threads = st.deques.len();
            let chunk = n.div_ceil(threads);
            let mut items = items.into_iter().enumerate();
            for w in 0..threads {
                st.deques[w].extend(items.by_ref().take(chunk));
            }
        }
        self.work_cv.notify_all();

        let mut stopped = false;
        for seq in 0..n {
            let result = {
                let mut st = self.lock();
                loop {
                    if let Some(result) = st.results[seq].take() {
                        break result;
                    }
                    st = self
                        .done_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            match result {
                Err(payload) => {
                    self.abandon_and_drain();
                    resume_unwind(payload);
                }
                Ok(result) => {
                    if matches!(on_result(seq, result), Control::Stop) {
                        stopped = true;
                        break;
                    }
                }
            }
        }
        if stopped {
            self.abandon_and_drain();
        }
        stopped
    }

    /// Drops every unstarted job and waits until no job is in flight,
    /// discarding any late results. Leaves the pool ready for the next
    /// round.
    fn abandon_and_drain(&self) {
        let mut st = self.lock();
        for deque in &mut st.deques {
            deque.clear();
        }
        while st.in_flight > 0 {
            st = self
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.results.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_round(options: &PoolOptions, items: Vec<u64>) -> Vec<(usize, u64)> {
        with_pool(
            options,
            |x: u64| x * 10,
            |pool| {
                let mut seen = Vec::new();
                let stopped = pool.run_round(items, |seq, r| {
                    seen.push((seq, r));
                    Control::Continue
                });
                assert!(!stopped);
                seen
            },
        )
    }

    #[test]
    fn results_arrive_in_sequence_order_for_every_schedule() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<(usize, u64)> = items.iter().map(|&x| (x as usize, x * 10)).collect();
        for threads in [1, 2, 4, 8] {
            for force_steal in [false, true] {
                let options = PoolOptions::new(threads).with_force_steal(force_steal);
                assert_eq!(
                    collect_round(&options, items.clone()),
                    expected,
                    "threads={threads} force_steal={force_steal}"
                );
            }
        }
    }

    #[test]
    fn the_pool_is_persistent_across_rounds() {
        for threads in [1, 4] {
            let sums = with_pool(
                &PoolOptions::new(threads),
                |x: u64| x + 1,
                |pool| {
                    let mut sums = Vec::new();
                    for round in 0..5u64 {
                        let items: Vec<u64> = (round * 10..round * 10 + 7).collect();
                        let mut sum = 0;
                        pool.run_round(items, |_, r| {
                            sum += r;
                            Control::Continue
                        });
                        sums.push(sum);
                    }
                    sums
                },
            );
            let expected: Vec<u64> = (0..5u64)
                .map(|round| (round * 10..round * 10 + 7).map(|x| x + 1).sum())
                .collect();
            assert_eq!(sums, expected, "threads={threads}");
        }
    }

    #[test]
    fn stop_abandons_the_rest_of_the_round() {
        for threads in [1, 4] {
            for force_steal in [false, true] {
                let options = PoolOptions::new(threads).with_force_steal(force_steal);
                let seen = with_pool(
                    &options,
                    |x: u64| x,
                    |pool| {
                        let mut seen = Vec::new();
                        let stopped = pool.run_round((0..100).collect(), |seq, r| {
                            seen.push((seq, r));
                            if seq == 2 {
                                Control::Stop
                            } else {
                                Control::Continue
                            }
                        });
                        assert!(stopped);
                        // The pool must still be usable after a stop.
                        let resumed = pool.run_round(vec![7u64], |_, r| {
                            seen.push((99, r));
                            Control::Continue
                        });
                        assert!(!resumed);
                        seen
                    },
                );
                assert_eq!(
                    seen,
                    vec![(0, 0), (1, 1), (2, 2), (99, 7)],
                    "threads={threads} force_steal={force_steal}"
                );
            }
        }
    }

    #[test]
    fn empty_rounds_are_a_no_op() {
        for threads in [1, 4] {
            let stopped = with_pool(
                &PoolOptions::new(threads),
                |x: u64| x,
                |pool| pool.run_round(Vec::new(), |_, _| Control::Stop),
            );
            assert!(!stopped);
        }
    }

    #[test]
    fn a_worker_panic_resurfaces_on_the_caller_thread() {
        for threads in [1, 4] {
            let caught = std::panic::catch_unwind(|| {
                with_pool(
                    &PoolOptions::new(threads),
                    |x: u64| {
                        assert!(x != 3, "poisoned job");
                        x
                    },
                    |pool| {
                        pool.run_round((0..8).collect(), |_, _| Control::Continue);
                    },
                )
            });
            assert!(caught.is_err(), "threads={threads}");
        }
    }
}
