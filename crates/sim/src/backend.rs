//! Selection between the scalar reference engine and the packed kernel,
//! plus the full option block (backend × tile width × event propagation)
//! the drivers thread through the simulation entry points.

use core::fmt;
use core::str::FromStr;

use crate::word::SimWidth;

/// Which simulation engine the high-level drivers use.
///
/// The two backends are exactly equivalent: the packed kernel implements
/// the same conservative hazard algebra, bit-for-bit (the differential
/// property tests in this crate enforce it). [`SimBackend::Scalar`] is kept
/// as the slow oracle for differential testing and debugging.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// One test at a time through [`pdf_netlist::simulate_triples`].
    Scalar,
    /// 64 tests per pass through the bit-plane kernel, fanned out over
    /// worker threads.
    #[default]
    Packed,
}

impl SimBackend {
    /// Both backends, scalar first.
    pub const ALL: [SimBackend; 2] = [SimBackend::Scalar, SimBackend::Packed];

    /// Reads the backend from the `PDF_SIM_BACKEND` environment variable
    /// (`scalar` or `packed`, case-insensitive). Unset means the default
    /// packed engine; a present-but-unrecognized value is an error —
    /// `PDF_SIM_BACKEND=scaler` must not masquerade as a packed run.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBackendError`] (naming the bad value and the
    /// accepted ones) when the variable is set to anything other than a
    /// backend label. Drivers are expected to fail fast on it at startup.
    pub fn from_env() -> Result<SimBackend, ParseBackendError> {
        match std::env::var("PDF_SIM_BACKEND") {
            Ok(v) => v.parse(),
            Err(std::env::VarError::NotPresent) => Ok(SimBackend::default()),
            Err(std::env::VarError::NotUnicode(v)) => Err(ParseBackendError {
                found: v.to_string_lossy().into_owned(),
            }),
        }
    }

    /// A short lowercase label (`"scalar"` / `"packed"`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SimBackend::Scalar => "scalar",
            SimBackend::Packed => "packed",
        }
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`SimBackend`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError {
    found: String,
}

impl ParseBackendError {
    /// The unrecognized backend name.
    #[must_use]
    pub fn found(&self) -> &str {
        &self.found
    }
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown simulation backend `{}` (accepted values: `scalar`, `packed`)",
            self.found
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for SimBackend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<SimBackend, ParseBackendError> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(SimBackend::Scalar),
            "packed" => Ok(SimBackend::Packed),
            _ => Err(ParseBackendError {
                found: s.to_owned(),
            }),
        }
    }
}

/// The complete simulation configuration the high-level drivers accept:
/// which engine, how wide its tiles are, and whether propagation is
/// event-driven.
///
/// All three knobs are throughput-only — results (coverage flags,
/// detection maps, justification witnesses) are identical across every
/// combination, which the differential tests enforce. Because of that,
/// most call sites take `impl Into<SimOptions>` and existing code passing
/// a bare [`SimBackend`] keeps working: the backend converts into options
/// with the auto-detected width and events on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimOptions {
    /// Scalar oracle or the packed bit-plane kernel.
    pub backend: SimBackend,
    /// Tile width of the packed kernel (ignored by the scalar engine).
    pub width: SimWidth,
    /// Event-driven propagation: skip lines whose fanins did not change.
    pub events: bool,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            backend: SimBackend::default(),
            width: SimWidth::auto(),
            events: true,
        }
    }
}

impl From<SimBackend> for SimOptions {
    fn from(backend: SimBackend) -> SimOptions {
        SimOptions {
            backend,
            ..SimOptions::default()
        }
    }
}

impl SimOptions {
    /// Replaces the backend.
    #[must_use]
    pub fn with_backend(mut self, backend: SimBackend) -> SimOptions {
        self.backend = backend;
        self
    }

    /// Replaces the tile width.
    #[must_use]
    pub fn with_width(mut self, width: SimWidth) -> SimOptions {
        self.width = width;
        self
    }

    /// Enables or disables event-driven propagation.
    #[must_use]
    pub fn with_events(mut self, events: bool) -> SimOptions {
        self.events = events;
        self
    }

    /// A compact human-readable label (`"packed/w512/events"`,
    /// `"scalar/auto/no-events"`) for report keys and log lines.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/w{}/{}",
            self.backend.label(),
            self.width.label(),
            if self.events { "events" } else { "no-events" }
        )
    }

    /// Reads the whole option block from the environment:
    /// `PDF_SIM_BACKEND`, `PDF_SIM_WIDTH` and `PDF_SIM_EVENTS`, each
    /// falling back to its default (`packed`, `auto`, on) when unset.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending variable and value when any
    /// of the three is set to something unrecognized. Drivers are
    /// expected to fail fast on it at startup.
    pub fn from_env() -> Result<SimOptions, String> {
        Ok(SimOptions {
            backend: SimBackend::from_env().map_err(|e| format!("PDF_SIM_BACKEND: {e}"))?,
            width: SimWidth::from_env().map_err(|e| format!("PDF_SIM_WIDTH: {e}"))?,
            events: events_from_env().map_err(|e| format!("PDF_SIM_EVENTS: {e}"))?,
        })
    }
}

/// Reads the event-propagation switch from `PDF_SIM_EVENTS` (`on`/`off`,
/// `1`/`0` or `true`/`false`, case-insensitive). Unset means on; a
/// present-but-unrecognized value is an error, per the strict `PDF_*`
/// parsing contract.
///
/// # Errors
///
/// Returns [`ParseEventsError`] naming the bad value.
pub fn events_from_env() -> Result<bool, ParseEventsError> {
    match std::env::var("PDF_SIM_EVENTS") {
        Ok(v) => parse_events(&v),
        Err(std::env::VarError::NotPresent) => Ok(true),
        Err(std::env::VarError::NotUnicode(v)) => Err(ParseEventsError {
            found: v.to_string_lossy().into_owned(),
        }),
    }
}

fn parse_events(s: &str) -> Result<bool, ParseEventsError> {
    match s.to_ascii_lowercase().as_str() {
        "1" | "on" | "true" => Ok(true),
        "0" | "off" | "false" => Ok(false),
        _ => Err(ParseEventsError {
            found: s.to_owned(),
        }),
    }
}

/// Error returned when `PDF_SIM_EVENTS` holds an unrecognized value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseEventsError {
    found: String,
}

impl ParseEventsError {
    /// The unrecognized switch value.
    #[must_use]
    pub fn found(&self) -> &str {
        &self.found
    }
}

impl fmt::Display for ParseEventsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown event-propagation switch `{}` (accepted values: `on`, `off`, `1`, `0`, `true`, `false`)",
            self.found
        )
    }
}

impl std::error::Error for ParseEventsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for b in SimBackend::ALL {
            assert_eq!(b.label().parse::<SimBackend>().unwrap(), b);
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!("PACKED".parse::<SimBackend>().unwrap(), SimBackend::Packed);
        assert_eq!("nope".parse::<SimBackend>().unwrap_err().found(), "nope");
    }

    #[test]
    fn default_is_packed() {
        assert_eq!(SimBackend::default(), SimBackend::Packed);
    }

    #[test]
    fn options_default_and_conversion() {
        let opts = SimOptions::default();
        assert_eq!(opts.backend, SimBackend::Packed);
        assert_eq!(opts.width, SimWidth::auto());
        assert!(opts.events);

        let from_backend: SimOptions = SimBackend::Scalar.into();
        assert_eq!(from_backend.backend, SimBackend::Scalar);
        assert_eq!(from_backend.width, SimWidth::auto());
        assert!(from_backend.events);

        let tuned = SimOptions::default()
            .with_backend(SimBackend::Scalar)
            .with_width(SimWidth::W512)
            .with_events(false);
        assert_eq!(tuned.backend, SimBackend::Scalar);
        assert_eq!(tuned.width, SimWidth::W512);
        assert!(!tuned.events);
    }

    #[test]
    fn options_label_is_compact_and_distinct() {
        let a = SimOptions::default()
            .with_backend(SimBackend::Packed)
            .with_width(SimWidth::W512)
            .with_events(true);
        assert_eq!(a.label(), "packed/w512/events");
        let b = a.with_events(false);
        assert_eq!(b.label(), "packed/w512/no-events");
        let c = b.with_backend(SimBackend::Scalar).with_width(SimWidth::W64);
        assert_eq!(c.label(), "scalar/w64/no-events");
    }

    #[test]
    fn events_switch_parses_strictly() {
        for on in ["1", "on", "true", "ON", "True"] {
            assert_eq!(parse_events(on), Ok(true), "{on}");
        }
        for off in ["0", "off", "false", "OFF"] {
            assert_eq!(parse_events(off), Ok(false), "{off}");
        }
        let err = parse_events("yes").unwrap_err();
        assert_eq!(err.found(), "yes");
        assert!(err.to_string().contains("`yes`"));
    }
}
