//! Selection between the scalar reference engine and the packed kernel.

use core::fmt;
use core::str::FromStr;

/// Which simulation engine the high-level drivers use.
///
/// The two backends are exactly equivalent: the packed kernel implements
/// the same conservative hazard algebra, bit-for-bit (the differential
/// property tests in this crate enforce it). [`SimBackend::Scalar`] is kept
/// as the slow oracle for differential testing and debugging.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// One test at a time through [`pdf_netlist::simulate_triples`].
    Scalar,
    /// 64 tests per pass through the bit-plane kernel, fanned out over
    /// worker threads.
    #[default]
    Packed,
}

impl SimBackend {
    /// Both backends, scalar first.
    pub const ALL: [SimBackend; 2] = [SimBackend::Scalar, SimBackend::Packed];

    /// Reads the backend from the `PDF_SIM_BACKEND` environment variable
    /// (`scalar` or `packed`, case-insensitive). Unset means the default
    /// packed engine; a present-but-unrecognized value is an error —
    /// `PDF_SIM_BACKEND=scaler` must not masquerade as a packed run.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBackendError`] (naming the bad value and the
    /// accepted ones) when the variable is set to anything other than a
    /// backend label. Drivers are expected to fail fast on it at startup.
    pub fn from_env() -> Result<SimBackend, ParseBackendError> {
        match std::env::var("PDF_SIM_BACKEND") {
            Ok(v) => v.parse(),
            Err(std::env::VarError::NotPresent) => Ok(SimBackend::default()),
            Err(std::env::VarError::NotUnicode(v)) => Err(ParseBackendError {
                found: v.to_string_lossy().into_owned(),
            }),
        }
    }

    /// A short lowercase label (`"scalar"` / `"packed"`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SimBackend::Scalar => "scalar",
            SimBackend::Packed => "packed",
        }
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`SimBackend`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError {
    found: String,
}

impl ParseBackendError {
    /// The unrecognized backend name.
    #[must_use]
    pub fn found(&self) -> &str {
        &self.found
    }
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown simulation backend `{}` (accepted values: `scalar`, `packed`)",
            self.found
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for SimBackend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<SimBackend, ParseBackendError> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(SimBackend::Scalar),
            "packed" => Ok(SimBackend::Packed),
            _ => Err(ParseBackendError {
                found: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for b in SimBackend::ALL {
            assert_eq!(b.label().parse::<SimBackend>().unwrap(), b);
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!("PACKED".parse::<SimBackend>().unwrap(), SimBackend::Packed);
        assert_eq!("nope".parse::<SimBackend>().unwrap_err().found(), "nope");
    }

    #[test]
    fn default_is_packed() {
        assert_eq!(SimBackend::default(), SimBackend::Packed);
    }
}
