//! Width-generic simulation words: the lane-parallel tiles the bit-plane
//! kernel is written against.
//!
//! A [`SimWord`] is a fixed-size tile of test lanes — one bit per lane —
//! on which the kernel's rail algebra (`AND`/`OR`/`NOT` over six planes
//! per line) operates. Three widths are provided:
//!
//! * `u64` — the original 64-lane kernel word,
//! * `[u64; 4]` — a 256-lane tile (one AVX2 register per plane word),
//! * `[u64; 8]` — a 512-lane tile (one AVX-512 register per plane word).
//!
//! The array implementations use plain unrolled word loops: on a
//! `-C target-cpu=native` build LLVM lowers them to single vector
//! instructions, and on scalar-only targets they still win through
//! instruction-level parallelism and fewer propagation passes. No
//! unstable `std::simd` is involved.
//!
//! [`SimWidth`] is the runtime selector (`PDF_SIM_WIDTH` / `--sim-width`):
//! `64`, `256`, `512`, or `auto`, which probes the CPU once and picks the
//! fastest tile — on AVX-512 parts via a one-block micro-calibration,
//! because the widest native tile is not always the fastest one.

use core::fmt;
use core::str::FromStr;

/// A fixed-width tile of simulation lanes, one bit per lane.
///
/// Implementations must behave as a plain bitset of [`SimWord::LANES`]
/// bits split into [`SimWord::WORDS`] little-endian `u64` words: lane `j`
/// is bit `j % 64` of word `j / 64`. All kernel algebra reduces to the
/// bitwise ops below, so a wider tile changes throughput, never results.
pub trait SimWord: Copy + PartialEq + Eq + Send + Sync + fmt::Debug + 'static {
    /// Number of 64-bit words in the tile.
    const WORDS: usize;
    /// Number of test lanes: `WORDS * 64`.
    const LANES: usize = Self::WORDS * 64;
    /// The all-zero tile.
    const ZERO: Self;
    /// The all-ones tile.
    const ONES: Self;

    /// Lane-wise AND.
    #[must_use]
    fn and(self, other: Self) -> Self;
    /// Lane-wise OR.
    #[must_use]
    fn or(self, other: Self) -> Self;
    /// Lane-wise NOT.
    #[must_use]
    fn not(self) -> Self;
    /// `true` if no lane is set.
    #[must_use]
    fn is_zero(self) -> bool;
    /// The mask with the low `n` lanes set (`n <= LANES`).
    #[must_use]
    fn low_lanes(n: usize) -> Self;
    /// Whether lane `lane` is set.
    #[must_use]
    fn lane(self, lane: usize) -> bool;
    /// Sets lane `lane`.
    fn set_lane(&mut self, lane: usize);
    /// The lowest set lane, if any.
    #[must_use]
    fn first_lane(self) -> Option<usize>;
    /// The `k`-th 64-bit word of the tile.
    #[must_use]
    fn word(self, k: usize) -> u64;
    /// Overwrites the `k`-th 64-bit word of the tile.
    fn set_word(&mut self, k: usize, value: u64);
}

impl SimWord for u64 {
    const WORDS: usize = 1;
    const ZERO: u64 = 0;
    const ONES: u64 = u64::MAX;

    #[inline(always)]
    fn and(self, other: u64) -> u64 {
        self & other
    }

    #[inline(always)]
    fn or(self, other: u64) -> u64 {
        self | other
    }

    #[inline(always)]
    fn not(self) -> u64 {
        !self
    }

    #[inline(always)]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline]
    fn low_lanes(n: usize) -> u64 {
        match n {
            64 => u64::MAX,
            _ => (1u64 << n) - 1,
        }
    }

    #[inline(always)]
    fn lane(self, lane: usize) -> bool {
        self >> lane & 1 == 1
    }

    #[inline(always)]
    fn set_lane(&mut self, lane: usize) {
        *self |= 1u64 << lane;
    }

    #[inline]
    fn first_lane(self) -> Option<usize> {
        (self != 0).then(|| self.trailing_zeros() as usize)
    }

    #[inline(always)]
    fn word(self, k: usize) -> u64 {
        debug_assert_eq!(k, 0);
        self
    }

    #[inline(always)]
    fn set_word(&mut self, k: usize, value: u64) {
        debug_assert_eq!(k, 0);
        *self = value;
    }
}

/// Implements [`SimWord`] for `[u64; N]` with explicit unrolled loops —
/// the shape LLVM auto-vectorizes into one AVX2/AVX-512 op per plane word.
macro_rules! impl_simword_array {
    ($n:literal) => {
        impl SimWord for [u64; $n] {
            const WORDS: usize = $n;
            const ZERO: [u64; $n] = [0u64; $n];
            const ONES: [u64; $n] = [u64::MAX; $n];

            #[inline(always)]
            fn and(self, other: [u64; $n]) -> [u64; $n] {
                let mut out = [0u64; $n];
                for i in 0..$n {
                    out[i] = self[i] & other[i];
                }
                out
            }

            #[inline(always)]
            fn or(self, other: [u64; $n]) -> [u64; $n] {
                let mut out = [0u64; $n];
                for i in 0..$n {
                    out[i] = self[i] | other[i];
                }
                out
            }

            #[inline(always)]
            fn not(self) -> [u64; $n] {
                let mut out = [0u64; $n];
                for i in 0..$n {
                    out[i] = !self[i];
                }
                out
            }

            #[inline(always)]
            fn is_zero(self) -> bool {
                let mut any = 0u64;
                for i in 0..$n {
                    any |= self[i];
                }
                any == 0
            }

            #[inline]
            fn low_lanes(n: usize) -> [u64; $n] {
                debug_assert!(n <= $n * 64);
                let mut out = [0u64; $n];
                for (i, w) in out.iter_mut().enumerate() {
                    let lo = i * 64;
                    *w = match n.saturating_sub(lo) {
                        0 => 0,
                        part if part >= 64 => u64::MAX,
                        part => (1u64 << part) - 1,
                    };
                }
                out
            }

            #[inline(always)]
            fn lane(self, lane: usize) -> bool {
                self[lane / 64] >> (lane % 64) & 1 == 1
            }

            #[inline(always)]
            fn set_lane(&mut self, lane: usize) {
                self[lane / 64] |= 1u64 << (lane % 64);
            }

            #[inline]
            fn first_lane(self) -> Option<usize> {
                self.iter()
                    .position(|&w| w != 0)
                    .map(|k| k * 64 + self[k].trailing_zeros() as usize)
            }

            #[inline(always)]
            fn word(self, k: usize) -> u64 {
                self[k]
            }

            #[inline(always)]
            fn set_word(&mut self, k: usize, value: u64) {
                self[k] = value;
            }
        }
    };
}

impl_simword_array!(4);
impl_simword_array!(8);

/// The runtime tile-width selector for the packed kernels.
///
/// Results are width-independent — the differential property tests pin
/// scalar, 64-, 256- and 512-lane runs to byte-identical waveforms,
/// coverage and justification witnesses — so the width is purely a
/// throughput knob and safe to vary per machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimWidth {
    /// 64 lanes: one `u64` per plane word.
    W64,
    /// 256 lanes: a `[u64; 4]` tile per plane word.
    W256,
    /// 512 lanes: a `[u64; 8]` tile per plane word.
    W512,
}

impl SimWidth {
    /// All concrete widths, narrowest first.
    pub const ALL: [SimWidth; 3] = [SimWidth::W64, SimWidth::W256, SimWidth::W512];

    /// The fastest tile for this CPU: 256 lanes with AVX2, 64 without
    /// (or 256 on aarch64, where two NEON ops per word still pay for the
    /// halved pass count). With AVX-512F a one-block micro-calibration
    /// decides between 256 and 512 — merely *supporting* 512-bit vectors
    /// does not make them the fastest choice (license-based frequency
    /// reduction loses to AVX2 on several parts), so the probe times the
    /// actual plane arithmetic once per process and 256 wins ties.
    #[must_use]
    pub fn auto() -> SimWidth {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                static PICK: std::sync::OnceLock<SimWidth> = std::sync::OnceLock::new();
                return *PICK.get_or_init(calibrate_wide);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimWidth::W256;
            }
            SimWidth::W64
        }
        #[cfg(target_arch = "aarch64")]
        {
            SimWidth::W256
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            SimWidth::W64
        }
    }

    /// Reads the width from `PDF_SIM_WIDTH` (`64`, `256`, `512` or
    /// `auto`, case-insensitive). Unset means `auto`; a
    /// present-but-unrecognized value is an error — `PDF_SIM_WIDTH=128`
    /// must not masquerade as an auto-selected run.
    ///
    /// # Errors
    ///
    /// Returns [`ParseWidthError`] (naming the bad value and the accepted
    /// ones) when the variable is set to anything else. Drivers are
    /// expected to fail fast on it at startup.
    pub fn from_env() -> Result<SimWidth, ParseWidthError> {
        match std::env::var("PDF_SIM_WIDTH") {
            Ok(v) => v.parse(),
            Err(std::env::VarError::NotPresent) => Ok(SimWidth::auto()),
            Err(std::env::VarError::NotUnicode(v)) => Err(ParseWidthError {
                found: v.to_string_lossy().into_owned(),
            }),
        }
    }

    /// The number of test lanes per packed tile.
    #[must_use]
    pub const fn lanes(self) -> usize {
        match self {
            SimWidth::W64 => 64,
            SimWidth::W256 => 256,
            SimWidth::W512 => 512,
        }
    }

    /// A short label (`"64"` / `"256"` / `"512"`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SimWidth::W64 => "64",
            SimWidth::W256 => "256",
            SimWidth::W512 => "512",
        }
    }
}

impl fmt::Display for SimWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Times one block of the kernel's plane arithmetic at 256 and 512 lanes
/// and returns the faster width, preferring 256 on a tie. The block is a
/// few hundred kilolanes of dependent AND/OR/NOT passes — microseconds of
/// work, run once per process — so a part whose AVX-512 license clock
/// makes the 8-word tile *slower* than AVX2 is caught instead of assumed
/// fastest. Width never changes results, only throughput, so a noisy
/// pick is a performance wobble, never a correctness hazard.
#[cfg(target_arch = "x86_64")]
fn calibrate_wide() -> SimWidth {
    fn block<W: SimWord>() -> std::time::Duration {
        // The same total lane count at every width: narrower tiles loop
        // more. Two planes of 2^18 lanes stay comfortably in cache.
        const TOTAL_LANES: usize = 1 << 18;
        let n = TOTAL_LANES / W::LANES;
        let mut p0 = vec![W::ONES; n];
        let mut p1 = vec![W::low_lanes(W::LANES / 2 + 1); n];
        let start = std::time::Instant::now();
        for _pass in 0..16 {
            for i in 0..n {
                let a = p0[i];
                let b = p1[i];
                let g = a.and(b).or(a.not().and(b.not()));
                p0[i] = g.or(b.not());
                p1[i] = g.and(a).not();
            }
        }
        std::hint::black_box((&p0, &p1));
        start.elapsed()
    }
    // Warm both paths (page-in, vector-unit frequency ramp), then time.
    let _ = (block::<[u64; 4]>(), block::<[u64; 8]>());
    let (t256, t512) = (block::<[u64; 4]>(), block::<[u64; 8]>());
    if t512 < t256 {
        SimWidth::W512
    } else {
        SimWidth::W256
    }
}

/// Error returned when parsing a [`SimWidth`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseWidthError {
    found: String,
}

impl ParseWidthError {
    /// The unrecognized width name.
    #[must_use]
    pub fn found(&self) -> &str {
        &self.found
    }
}

impl fmt::Display for ParseWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown simulation width `{}` (accepted values: `64`, `256`, `512`, `auto`)",
            self.found
        )
    }
}

impl std::error::Error for ParseWidthError {}

impl FromStr for SimWidth {
    type Err = ParseWidthError;

    fn from_str(s: &str) -> Result<SimWidth, ParseWidthError> {
        match s.to_ascii_lowercase().as_str() {
            "64" => Ok(SimWidth::W64),
            "256" => Ok(SimWidth::W256),
            "512" => Ok(SimWidth::W512),
            "auto" => Ok(SimWidth::auto()),
            _ => Err(ParseWidthError {
                found: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bitset_contract<W: SimWord>() {
        assert_eq!(W::LANES, W::WORDS * 64);
        assert!(W::ZERO.is_zero());
        assert!(!W::ONES.is_zero());
        assert_eq!(W::ZERO.not(), W::ONES);
        assert_eq!(W::low_lanes(W::LANES), W::ONES);
        assert!(W::low_lanes(0).is_zero());
        assert_eq!(W::ZERO.first_lane(), None);
        assert_eq!(W::ONES.first_lane(), Some(0));

        // Per-lane set/query round trip, plus first_lane ordering.
        for lane in [0, 1, 63, W::LANES / 2, W::LANES - 1] {
            let mut w = W::ZERO;
            w.set_lane(lane);
            assert!(w.lane(lane), "lane {lane}");
            assert_eq!(w.first_lane(), Some(lane));
            assert!(w.and(W::ONES) == w);
            assert!(w.or(W::ZERO) == w);
            assert!(w.and(w.not()).is_zero());
            // low_lanes(k) contains lane iff lane < k.
            assert!(!W::low_lanes(lane).lane(lane));
            assert!(W::low_lanes(lane + 1).lane(lane));
        }

        // Word-level access agrees with lane-level access.
        let mut w = W::ZERO;
        w.set_word(W::WORDS - 1, 0b1010);
        assert_eq!(w.word(W::WORDS - 1), 0b1010);
        assert_eq!(w.first_lane(), Some((W::WORDS - 1) * 64 + 1));
    }

    #[test]
    fn all_widths_satisfy_the_bitset_contract() {
        check_bitset_contract::<u64>();
        check_bitset_contract::<[u64; 4]>();
        check_bitset_contract::<[u64; 8]>();
    }

    #[test]
    fn width_parse_round_trip() {
        for w in SimWidth::ALL {
            assert_eq!(w.label().parse::<SimWidth>().unwrap(), w);
            assert_eq!(w.to_string(), w.label());
        }
        assert_eq!("512".parse::<SimWidth>().unwrap(), SimWidth::W512);
        assert_eq!("128".parse::<SimWidth>().unwrap_err().found(), "128");
        // `auto` parses to whatever this CPU supports — a concrete width.
        let auto = "AUTO".parse::<SimWidth>().unwrap();
        assert!(SimWidth::ALL.contains(&auto));
        assert_eq!(auto, SimWidth::auto());
    }

    #[test]
    fn lanes_match_words() {
        assert_eq!(SimWidth::W64.lanes(), 64);
        assert_eq!(SimWidth::W256.lanes(), <[u64; 4] as SimWord>::LANES);
        assert_eq!(SimWidth::W512.lanes(), <[u64; 8] as SimWord>::LANES);
    }
}
