//! Bit-parallel packed two-pattern fault simulation.
//!
//! Robust path-delay-fault simulation reduces to one hazard-conservative
//! waveform simulation per two-pattern test plus a requirement check per
//! fault (paper Sec. 2.1). Both halves are embarrassingly data-parallel,
//! and this crate exploits that twice over:
//!
//! * **bit-level** — [`PackedBlock`] packs [`LANES`] (=64) tests into
//!   `u64` bit-planes (a zero and a one rail per triple component) and
//!   evaluates every gate for all 64 tests with a handful of word
//!   operations; requirement checks collapse to one `AND` per specified
//!   component across all 64 lanes at once;
//! * **thread-level** — [`par_chunk_map`] fans test blocks (for
//!   coverage-style sweeps) and fault chunks (for the per-test drop loop
//!   of the generator) out over `std::thread::scope` workers, merging
//!   results in deterministic chunk order.
//!
//! The scalar engine ([`pdf_netlist::simulate_triples`]) remains available
//! behind [`SimBackend::Scalar`] as a differential-testing oracle; the
//! packed kernel is bit-for-bit equivalent (the triple algebra is
//! component-wise Kleene logic, which the two-rail encoding implements
//! exactly) and this crate's property tests verify that equivalence on
//! random circuits.
//!
//! # Example
//!
//! ```
//! use pdf_netlist::iscas::s27;
//! use pdf_paths::PathEnumerator;
//! use pdf_faults::FaultList;
//! use pdf_logic::Value;
//! use pdf_netlist::TwoPattern;
//! use pdf_sim::SimBackend;
//!
//! let circuit = s27();
//! let paths = PathEnumerator::new(&circuit).enumerate();
//! let (faults, _) = FaultList::build(&circuit, &paths.store);
//! let n = circuit.inputs().len();
//! let tests = vec![TwoPattern::new(vec![Value::Zero; n], vec![Value::One; n])];
//!
//! let packed = pdf_sim::coverage_flags(SimBackend::Packed, &circuit, &tests, faults.entries());
//! let scalar = pdf_sim::coverage_flags(SimBackend::Scalar, &circuit, &tests, faults.entries());
//! assert_eq!(packed, scalar);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod packed;
mod parallel;
mod word;

pub use backend::{events_from_env, ParseBackendError, ParseEventsError, SimBackend, SimOptions};
pub use packed::{KernelStats, PackedBlock, LANES};
pub use parallel::{max_threads, panic_message, par_chunk_map};
pub use word::{ParseWidthError, SimWidth, SimWord};

use pdf_faults::{Assignments, FaultEntry};
use pdf_logic::Triple;
use pdf_netlist::{simulate_triples_into, Circuit, TwoPattern};

/// Fault chunks smaller than this are checked inline rather than fanned
/// out to worker threads (a `satisfied_by` call is a few nanoseconds).
const MIN_FAULT_CHUNK: usize = 512;

/// Anything that carries a necessary-assignment set. Lets the drivers run
/// over [`FaultList`](pdf_faults::FaultList) entries, borrowed entries, or
/// plain [`Assignments`] without copying fault lists around.
pub trait HasAssignments: Sync {
    /// The fault's necessary assignment set `A(p)`.
    fn assignments(&self) -> &Assignments;
}

impl HasAssignments for Assignments {
    fn assignments(&self) -> &Assignments {
        self
    }
}

impl HasAssignments for FaultEntry {
    fn assignments(&self) -> &Assignments {
        &self.assignments
    }
}

impl<T: HasAssignments + ?Sized> HasAssignments for &T {
    fn assignments(&self) -> &Assignments {
        (**self).assignments()
    }
}

/// Flushes a packed worker's drained kernel stats into the global
/// telemetry counters (one locked update per sweep, not per line).
fn flush_kernel_stats(parts: impl IntoIterator<Item = KernelStats>) {
    let mut total = KernelStats::default();
    for s in parts {
        total.events_propagated += s.events_propagated;
        total.lines_skipped += s.lines_skipped;
    }
    pdf_telemetry::count(
        pdf_telemetry::counters::EVENTS_PROPAGATED,
        total.events_propagated,
    );
    pdf_telemetry::count(pdf_telemetry::counters::LINES_SKIPPED, total.lines_skipped);
}

/// Width-generic packed coverage sweep: `W::LANES` tests per block,
/// blocks fanned out over worker threads.
fn packed_coverage<W: SimWord, T: HasAssignments>(
    circuit: &Circuit,
    tests: &[TwoPattern],
    faults: &[T],
    events: bool,
) -> Vec<bool> {
    let blocks: Vec<&[TwoPattern]> = tests.chunks(W::LANES).collect();
    pdf_telemetry::count(pdf_telemetry::counters::PACKED_BLOCKS, blocks.len() as u64);
    pdf_telemetry::record_max(pdf_telemetry::counters::SIM_WIDTH, W::LANES as u64);
    let partials = par_chunk_map(&blocks, 1, |_, part| {
        let mut block = PackedBlock::<W>::new().with_events(events);
        let mut local = vec![false; faults.len()];
        for tests_block in part {
            block.load(circuit, tests_block);
            for (i, fault) in faults.iter().enumerate() {
                if !local[i] && !block.satisfied_lanes(fault.assignments()).is_zero() {
                    local[i] = true;
                }
            }
        }
        (local, block.take_kernel_stats())
    });
    let mut detected = vec![false; faults.len()];
    let mut stats = Vec::with_capacity(partials.len());
    for (local, s) in partials {
        stats.push(s);
        for (d, l) in detected.iter_mut().zip(local) {
            *d |= l;
        }
    }
    flush_kernel_stats(stats);
    detected
}

/// Simulates `tests` against `faults` and returns the per-fault detection
/// flags — the kernel behind `TestSet::coverage`.
///
/// Accepts a bare [`SimBackend`] or a full [`SimOptions`]; every
/// backend × width × events combination returns identical flags. The
/// packed engine simulates `width` tests per pass and fans blocks out
/// over worker threads.
#[must_use]
pub fn coverage_flags<T: HasAssignments>(
    opts: impl Into<SimOptions>,
    circuit: &Circuit,
    tests: &[TwoPattern],
    faults: &[T],
) -> Vec<bool> {
    let opts: SimOptions = opts.into();
    let _phase = pdf_telemetry::Span::enter("simulate");
    pdf_telemetry::count(pdf_telemetry::counters::SIM_PASSES, 1);
    match opts.backend {
        SimBackend::Scalar => {
            let mut detected = vec![false; faults.len()];
            let mut triples = Vec::new();
            let mut waves = Vec::new();
            for test in tests {
                test.to_triples_into(&mut triples);
                simulate_triples_into(circuit, &triples, &mut waves);
                for (i, fault) in faults.iter().enumerate() {
                    if !detected[i] && fault.assignments().satisfied_by(&waves) {
                        detected[i] = true;
                    }
                }
            }
            detected
        }
        SimBackend::Packed => match opts.width {
            SimWidth::W64 => packed_coverage::<u64, T>(circuit, tests, faults, opts.events),
            SimWidth::W256 => packed_coverage::<[u64; 4], T>(circuit, tests, faults, opts.events),
            SimWidth::W512 => packed_coverage::<[u64; 8], T>(circuit, tests, faults, opts.events),
        },
    }
}

/// Width-generic packed per-test detection sweep.
fn packed_per_test<W: SimWord, T: HasAssignments>(
    circuit: &Circuit,
    tests: &[TwoPattern],
    faults: &[T],
    events: bool,
) -> Vec<Vec<usize>> {
    let blocks: Vec<&[TwoPattern]> = tests.chunks(W::LANES).collect();
    pdf_telemetry::count(pdf_telemetry::counters::PACKED_BLOCKS, blocks.len() as u64);
    pdf_telemetry::record_max(pdf_telemetry::counters::SIM_WIDTH, W::LANES as u64);
    let parts = par_chunk_map(&blocks, 1, |_, part| {
        let mut block = PackedBlock::<W>::new().with_events(events);
        let mut out: Vec<Vec<usize>> = Vec::new();
        for tests_block in part {
            block.load(circuit, tests_block);
            let base = out.len();
            out.extend(tests_block.iter().map(|_| Vec::new()));
            for (i, fault) in faults.iter().enumerate() {
                let lanes = block.satisfied_lanes(fault.assignments());
                for k in 0..W::WORDS {
                    let mut w = lanes.word(k);
                    while w != 0 {
                        let lane = k * 64 + w.trailing_zeros() as usize;
                        w &= w - 1;
                        out[base + lane].push(i);
                    }
                }
            }
        }
        (out, block.take_kernel_stats())
    });
    let mut result = Vec::with_capacity(tests.len());
    let mut stats = Vec::with_capacity(parts.len());
    for (out, s) in parts {
        stats.push(s);
        result.extend(out);
    }
    flush_kernel_stats(stats);
    result
}

/// For every test, the indices of the faults it detects (in increasing
/// fault order) — the kernel behind static test-set compaction.
#[must_use]
pub fn per_test_detections<T: HasAssignments>(
    opts: impl Into<SimOptions>,
    circuit: &Circuit,
    tests: &[TwoPattern],
    faults: &[T],
) -> Vec<Vec<usize>> {
    let opts: SimOptions = opts.into();
    let _phase = pdf_telemetry::Span::enter("simulate");
    pdf_telemetry::count(pdf_telemetry::counters::SIM_PASSES, 1);
    match opts.backend {
        SimBackend::Scalar => {
            let mut triples = Vec::new();
            let mut waves = Vec::new();
            tests
                .iter()
                .map(|test| {
                    test.to_triples_into(&mut triples);
                    simulate_triples_into(circuit, &triples, &mut waves);
                    faults
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| f.assignments().satisfied_by(&waves))
                        .map(|(i, _)| i)
                        .collect()
                })
                .collect()
        }
        SimBackend::Packed => match opts.width {
            SimWidth::W64 => packed_per_test::<u64, T>(circuit, tests, faults, opts.events),
            SimWidth::W256 => packed_per_test::<[u64; 4], T>(circuit, tests, faults, opts.events),
            SimWidth::W512 => packed_per_test::<[u64; 8], T>(circuit, tests, faults, opts.events),
        },
    }
}

/// The indices of the faults whose requirements `waves` satisfies and
/// that are not already marked in `already` — the per-test drop loop of
/// the generator, fanned out over fault chunks.
///
/// Results are in increasing index order, identical to a serial scan.
///
/// # Panics
///
/// Panics if `already.len() != faults.len()`.
#[must_use]
pub fn newly_satisfied<T: HasAssignments>(
    waves: &[Triple],
    faults: &[T],
    already: &[bool],
) -> Vec<usize> {
    assert_eq!(
        faults.len(),
        already.len(),
        "one detection flag per fault required"
    );
    let _phase = pdf_telemetry::Span::enter("simulate");
    pdf_telemetry::count(pdf_telemetry::counters::SIM_PASSES, 1);
    let parts = par_chunk_map(faults, MIN_FAULT_CHUNK, |offset, chunk| {
        chunk
            .iter()
            .enumerate()
            .filter(|(k, f)| !already[offset + k] && f.assignments().satisfied_by(waves))
            .map(|(k, _)| offset + k)
            .collect::<Vec<usize>>()
    });
    parts.concat()
}

/// Outcome of a panic-guarded sweep ([`newly_satisfied_guarded`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GuardedSweep {
    /// Indices newly satisfied, in increasing order.
    pub satisfied: Vec<usize>,
    /// Indices whose requirement check panicked, in increasing order —
    /// candidates for quarantine.
    pub panicked: Vec<usize>,
}

/// [`newly_satisfied`] with per-fault panic containment: a fault whose
/// requirement check panics (a corrupted assignment set, an out-of-range
/// line id) is reported in [`GuardedSweep::panicked`] instead of killing
/// the sweep, and every healthy fault is still classified.
///
/// The guard costs nothing on the happy path — each chunk is scanned
/// unguarded first, and only a chunk that actually panics is re-run item
/// by item to attribute the failure.
///
/// # Panics
///
/// Panics if `skip.len() != faults.len()`.
#[must_use]
pub fn newly_satisfied_guarded<T: HasAssignments>(
    waves: &[Triple],
    faults: &[T],
    skip: &[bool],
) -> GuardedSweep {
    assert_eq!(faults.len(), skip.len(), "one skip flag per fault required");
    let _phase = pdf_telemetry::Span::enter("simulate");
    pdf_telemetry::count(pdf_telemetry::counters::SIM_PASSES, 1);
    let parts = par_chunk_map(faults, MIN_FAULT_CHUNK, |offset, chunk| {
        let scan = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chunk
                .iter()
                .enumerate()
                .filter(|(k, f)| !skip[offset + k] && f.assignments().satisfied_by(waves))
                .map(|(k, _)| offset + k)
                .collect::<Vec<usize>>()
        }));
        match scan {
            Ok(satisfied) => (satisfied, Vec::new()),
            Err(_) => {
                let mut satisfied = Vec::new();
                let mut panicked = Vec::new();
                for (k, f) in chunk.iter().enumerate() {
                    if skip[offset + k] {
                        continue;
                    }
                    let one = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        f.assignments().satisfied_by(waves)
                    }));
                    match one {
                        Ok(true) => satisfied.push(offset + k),
                        Ok(false) => {}
                        Err(_) => panicked.push(offset + k),
                    }
                }
                (satisfied, panicked)
            }
        }
    });
    let mut out = GuardedSweep::default();
    for (satisfied, panicked) in parts {
        out.satisfied.extend(satisfied);
        out.panicked.extend(panicked);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_faults::FaultList;
    use pdf_logic::Value;
    use pdf_netlist::iscas::s27;
    use pdf_netlist::simulate_triples;
    use pdf_paths::PathEnumerator;

    fn setup() -> (Circuit, FaultList, Vec<TwoPattern>) {
        let c = s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        let n = c.inputs().len();
        // A deterministic spread of 150 tests (more than two blocks).
        let tests: Vec<TwoPattern> = (0..150u32)
            .map(|k| {
                let v1 = (0..n).map(|i| Value::from(k >> i & 1 == 1)).collect();
                let v2 = (0..n).map(|i| Value::from(k >> (i + 3) & 1 == 0)).collect();
                TwoPattern::new(v1, v2)
            })
            .collect();
        (c, faults, tests)
    }

    #[test]
    fn backends_agree_on_coverage() {
        let (c, faults, tests) = setup();
        let scalar = coverage_flags(SimBackend::Scalar, &c, &tests, faults.entries());
        let packed = coverage_flags(SimBackend::Packed, &c, &tests, faults.entries());
        assert_eq!(scalar, packed);
        assert!(scalar.iter().any(|&d| d), "spread must detect something");
    }

    #[test]
    fn backends_agree_on_per_test_detections() {
        let (c, faults, tests) = setup();
        let scalar = per_test_detections(SimBackend::Scalar, &c, &tests, faults.entries());
        let packed = per_test_detections(SimBackend::Packed, &c, &tests, faults.entries());
        assert_eq!(scalar.len(), tests.len());
        assert_eq!(scalar, packed);
    }

    #[test]
    fn all_widths_and_event_modes_agree_with_scalar() {
        let (c, faults, tests) = setup();
        let scalar = coverage_flags(SimBackend::Scalar, &c, &tests, faults.entries());
        let scalar_per = per_test_detections(SimBackend::Scalar, &c, &tests, faults.entries());
        for width in SimWidth::ALL {
            for events in [true, false] {
                let opts = SimOptions::default().with_width(width).with_events(events);
                assert_eq!(
                    coverage_flags(opts, &c, &tests, faults.entries()),
                    scalar,
                    "width {width} events {events}"
                );
                assert_eq!(
                    per_test_detections(opts, &c, &tests, faults.entries()),
                    scalar_per,
                    "width {width} events {events}"
                );
            }
        }
    }

    #[test]
    fn newly_satisfied_matches_serial_scan() {
        let (c, faults, tests) = setup();
        let waves = simulate_triples(&c, &tests[7].to_triples());
        let mut already = vec![false; faults.len()];
        for i in (0..faults.len()).step_by(3) {
            already[i] = true;
        }
        let got = newly_satisfied(&waves, faults.entries(), &already);
        let want: Vec<usize> = faults
            .iter()
            .enumerate()
            .filter(|(i, e)| !already[*i] && e.assignments.satisfied_by(&waves))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn guarded_sweep_matches_unguarded_on_healthy_faults() {
        let (c, faults, tests) = setup();
        let waves = simulate_triples(&c, &tests[7].to_triples());
        let mut skip = vec![false; faults.len()];
        for i in (0..faults.len()).step_by(3) {
            skip[i] = true;
        }
        let guarded = newly_satisfied_guarded(&waves, faults.entries(), &skip);
        assert_eq!(
            guarded.satisfied,
            newly_satisfied(&waves, faults.entries(), &skip)
        );
        assert!(guarded.panicked.is_empty());
    }

    #[test]
    fn guarded_sweep_quarantines_a_poisoned_fault() {
        let (c, faults, tests) = setup();
        let waves = simulate_triples(&c, &tests[3].to_triples());
        // A requirement on a line id far past the circuit makes
        // `satisfied_by` index out of bounds — the poison this guard
        // exists to contain.
        let mut poisoned = Assignments::new();
        poisoned
            .require(pdf_netlist::LineId::new(9_999), Triple::RISING)
            .unwrap();
        let mut sets: Vec<Assignments> = faults.iter().map(|e| e.assignments.clone()).collect();
        let bad = sets.len() / 2;
        sets[bad] = poisoned;
        let skip = vec![false; sets.len()];
        let guarded = newly_satisfied_guarded(&waves, &sets, &skip);
        assert_eq!(guarded.panicked, vec![bad]);
        let want: Vec<usize> = sets
            .iter()
            .enumerate()
            .filter(|(i, a)| *i != bad && a.satisfied_by(&waves))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(guarded.satisfied, want);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let (c, faults, _) = setup();
        for backend in SimBackend::ALL {
            let flags = coverage_flags(backend, &c, &[], faults.entries());
            assert!(flags.iter().all(|&d| !d));
            let per: Vec<Vec<usize>> = per_test_detections(backend, &c, &[], faults.entries());
            assert!(per.is_empty());
        }
        let no_faults: &[Assignments] = &[];
        let waves = vec![Triple::UNKNOWN; c.line_count()];
        assert!(newly_satisfied(&waves, no_faults, &[]).is_empty());
    }
}
