//! The bit-plane packed two-pattern simulation kernel.
//!
//! A [`PackedBlock`] simulates up to [`LANES`] two-pattern tests through a
//! circuit in one topological pass. Every line carries six `u64` planes —
//! a *zero rail* and a *one rail* for each of the three triple components
//! `α1 α2 α3` — with bit `j` of a plane describing test lane `j`:
//!
//! * zero-rail bit set → the component is a proven `0` for that test,
//! * one-rail bit set → a proven `1`,
//! * neither set → `x` (the rails are mutually exclusive by construction).
//!
//! Kleene's strong three-valued logic then becomes plain word arithmetic,
//! applied independently per component:
//!
//! ```text
//! AND:  one = a.one & b.one          OR:   one = a.one | b.one
//!       zero = a.zero | b.zero             zero = a.zero & b.zero
//! XOR:  one  = a.zero & b.one  |  a.one & b.zero
//!       zero = a.zero & b.zero |  a.one & b.one
//! NOT:  swap the rails
//! ```
//!
//! Because the scalar triple algebra is exactly component-wise Kleene logic
//! (see `pdf_logic::GateKind::eval_triples`), a packed pass produces
//! bit-identical waveforms to 64 scalar [`pdf_netlist::simulate_triples`]
//! calls — the differential property tests of this crate enforce this.
//!
//! The plane arena is reused across [`PackedBlock::load`] calls, so a
//! driver streaming many 64-test blocks through one `PackedBlock` performs
//! no per-test heap allocation at all.

use pdf_faults::Assignments;
use pdf_logic::{GateKind, Triple, Value};
use pdf_netlist::{Circuit, LineId, LineKind, TwoPattern};

/// Number of tests simulated per packed pass: the width of one `u64` plane.
pub const LANES: usize = 64;

/// Six bit-planes of one line: `[α1⁰, α1¹, α2⁰, α2¹, α3⁰, α3¹]` — a zero
/// and a one rail per triple component.
type Planes = [u64; 6];

#[inline]
fn and6(a: Planes, b: Planes) -> Planes {
    [
        a[0] | b[0],
        a[1] & b[1],
        a[2] | b[2],
        a[3] & b[3],
        a[4] | b[4],
        a[5] & b[5],
    ]
}

#[inline]
fn or6(a: Planes, b: Planes) -> Planes {
    [
        a[0] & b[0],
        a[1] | b[1],
        a[2] & b[2],
        a[3] | b[3],
        a[4] & b[4],
        a[5] | b[5],
    ]
}

#[inline]
fn xor6(a: Planes, b: Planes) -> Planes {
    [
        (a[0] & b[0]) | (a[1] & b[1]),
        (a[0] & b[1]) | (a[1] & b[0]),
        (a[2] & b[2]) | (a[3] & b[3]),
        (a[2] & b[3]) | (a[3] & b[2]),
        (a[4] & b[4]) | (a[5] & b[5]),
        (a[4] & b[5]) | (a[5] & b[4]),
    ]
}

#[inline]
fn not6(a: Planes) -> Planes {
    [a[1], a[0], a[3], a[2], a[5], a[4]]
}

/// A reusable arena simulating up to [`LANES`] two-pattern tests at once.
///
/// # Example
///
/// ```
/// use pdf_logic::{Triple, Value};
/// use pdf_netlist::{iscas, TwoPattern};
/// use pdf_sim::PackedBlock;
///
/// let circuit = iscas::c17();
/// let n = circuit.inputs().len();
/// let tests = vec![
///     TwoPattern::new(vec![Value::Zero; n], vec![Value::One; n]),
///     TwoPattern::new(vec![Value::One; n], vec![Value::One; n]),
/// ];
/// let mut block = PackedBlock::new();
/// block.load(&circuit, &tests);
///
/// // Lane 1 applied stable inputs, so every line is stable.
/// let scalar = pdf_netlist::simulate_triples(&circuit, &tests[1].to_triples());
/// for (id, _) in circuit.iter() {
///     assert_eq!(block.triple(id, 1), scalar[id.index()]);
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct PackedBlock {
    planes: Vec<Planes>,
    loaded: u64,
    count: usize,
}

impl PackedBlock {
    /// Creates an empty arena; the first [`PackedBlock::load`] sizes it.
    #[must_use]
    pub fn new() -> PackedBlock {
        PackedBlock::default()
    }

    /// Number of tests loaded by the last [`PackedBlock::load`].
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if no tests are loaded.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The mask of valid lanes: bit `j` set iff test `j` is loaded.
    #[inline]
    #[must_use]
    pub fn lanes(&self) -> u64 {
        self.loaded
    }

    /// Loads a block of tests and simulates them through the circuit in
    /// one topological pass. Previously loaded state is replaced; the
    /// plane arena is reused.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] tests are given, or if a test's width
    /// differs from the circuit's input count.
    pub fn load(&mut self, circuit: &Circuit, tests: &[TwoPattern]) {
        assert!(
            tests.len() <= LANES,
            "a packed block holds at most {LANES} tests, got {}",
            tests.len()
        );
        self.planes.clear();
        self.planes.resize(circuit.line_count(), [0u64; 6]);
        self.count = tests.len();
        self.loaded = match tests.len() {
            LANES => u64::MAX,
            n => (1u64 << n) - 1,
        };

        for (lane, test) in tests.iter().enumerate() {
            assert_eq!(
                test.len(),
                circuit.inputs().len(),
                "one value per primary input required"
            );
            let bit = 1u64 << lane;
            for (pos, &id) in circuit.inputs().iter().enumerate() {
                let tri = Triple::from_patterns(test.first()[pos], test.second()[pos]);
                let p = &mut self.planes[id.index()];
                for (c, v) in tri.components().into_iter().enumerate() {
                    match v {
                        Value::Zero => p[2 * c] |= bit,
                        Value::One => p[2 * c + 1] |= bit,
                        Value::X => {}
                    }
                }
            }
        }
        self.propagate(circuit);
    }

    /// Prepares the arena for a full-width block (all [`LANES`] lanes
    /// valid) whose inputs will be supplied as raw rail words via
    /// [`PackedBlock::set_input_rails`] — the entry point of the packed
    /// justifier, which synthesizes 64 candidate tests per block instead
    /// of loading materialized [`TwoPattern`]s.
    ///
    /// Unlike [`PackedBlock::load`] this does **not** clear the planes:
    /// only lines written afterwards (inputs via `set_input_rails`, gates
    /// via [`PackedBlock::propagate_over`]) are defined, everything else
    /// may hold stale values from a previous block. A fanin-closed cone
    /// order covers every line it can observe, so the justifier's
    /// block-per-cone loop stays O(cone), not O(circuit).
    pub fn begin_block(&mut self, circuit: &Circuit) {
        if self.planes.len() != circuit.line_count() {
            self.planes.clear();
            self.planes.resize(circuit.line_count(), [0u64; 6]);
        }
        self.count = LANES;
        self.loaded = u64::MAX;
    }

    /// Sets the two pattern values of input `line` for all 64 lanes at
    /// once. `first` and `last` are `(zero_rail, one_rail)` words: bit `j`
    /// of a rail proves that value for lane `j`, neither bit set means
    /// `x`. The intermediate triple component is derived exactly as
    /// [`Triple::from_patterns`] does — specified only where both pattern
    /// values agree.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a rail pair overlaps — a lane cannot
    /// prove both `0` and `1`.
    pub fn set_input_rails(&mut self, line: LineId, first: (u64, u64), last: (u64, u64)) {
        debug_assert_eq!(first.0 & first.1, 0, "overlapping first-pattern rails");
        debug_assert_eq!(last.0 & last.1, 0, "overlapping last-pattern rails");
        let p = &mut self.planes[line.index()];
        p[0] = first.0;
        p[1] = first.1;
        p[2] = first.0 & last.0;
        p[3] = first.1 & last.1;
        p[4] = last.0;
        p[5] = last.1;
    }

    /// Evaluates gates along `order` — any topologically sorted slice of
    /// the circuit, typically a fanin cone — leaving lines outside `order`
    /// untouched (`x` after [`PackedBlock::begin_block`]). Input lines in
    /// `order` are skipped: their planes come from
    /// [`PackedBlock::set_input_rails`].
    pub fn propagate_over(&mut self, circuit: &Circuit, order: &[LineId]) {
        for &id in order {
            let line = circuit.line(id);
            let out = match line.kind() {
                LineKind::Input => continue,
                LineKind::Branch { stem } => self.planes[stem.index()],
                LineKind::Gate(kind) => {
                    let fanin = line.fanin();
                    let first = self.planes[fanin[0].index()];
                    let folded = match kind {
                        GateKind::And | GateKind::Nand => fanin[1..]
                            .iter()
                            .fold(first, |acc, f| and6(acc, self.planes[f.index()])),
                        GateKind::Or | GateKind::Nor => fanin[1..]
                            .iter()
                            .fold(first, |acc, f| or6(acc, self.planes[f.index()])),
                        GateKind::Xor | GateKind::Xnor => fanin[1..]
                            .iter()
                            .fold(first, |acc, f| xor6(acc, self.planes[f.index()])),
                        GateKind::Not | GateKind::Buf => first,
                    };
                    if kind.inverts() {
                        not6(folded)
                    } else {
                        folded
                    }
                }
            };
            self.planes[id.index()] = out;
        }
    }

    fn propagate(&mut self, circuit: &Circuit) {
        self.propagate_over(circuit, circuit.topo_order());
    }

    /// The simulated waveform of `line` in test lane `lane` — the packed
    /// equivalent of `simulate_triples(..)[line.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a loaded lane or `line` is out of range.
    #[must_use]
    pub fn triple(&self, line: LineId, lane: usize) -> Triple {
        assert!(
            lane < self.count,
            "lane {lane} not loaded ({} tests in block)",
            self.count
        );
        let p = &self.planes[line.index()];
        let bit = 1u64 << lane;
        let comp = |c: usize| {
            if p[2 * c] & bit != 0 {
                Value::Zero
            } else if p[2 * c + 1] & bit != 0 {
                Value::One
            } else {
                Value::X
            }
        };
        Triple::new(comp(0), comp(1), comp(2))
    }

    /// The lanes whose simulated waveforms satisfy every requirement of
    /// `req` — the packed equivalent of 64 `Assignments::satisfied_by`
    /// calls, one word operation per specified requirement component.
    #[must_use]
    pub fn satisfied_lanes(&self, req: &Assignments) -> u64 {
        let mut lanes = self.loaded;
        for (line, tri) in req.iter() {
            let p = &self.planes[line.index()];
            for (c, v) in tri.components().into_iter().enumerate() {
                match v {
                    Value::Zero => lanes &= p[2 * c],
                    Value::One => lanes &= p[2 * c + 1],
                    Value::X => {}
                }
            }
            if lanes == 0 {
                return 0;
            }
        }
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::{iscas, simulate_triples};

    fn exhaustive_two_patterns(n: usize, limit: usize) -> Vec<TwoPattern> {
        // All fully-specified two-pattern tests over n inputs, capped.
        let total = 1usize << (2 * n);
        (0..total.min(limit))
            .map(|bits| {
                let v1 = (0..n).map(|i| Value::from(bits >> i & 1 == 1)).collect();
                let v2 = (0..n)
                    .map(|i| Value::from(bits >> (n + i) & 1 == 1))
                    .collect();
                TwoPattern::new(v1, v2)
            })
            .collect()
    }

    #[test]
    fn matches_scalar_simulation_exhaustively_on_s27() {
        let c = iscas::s27();
        let mut block = PackedBlock::new();
        for chunk in exhaustive_two_patterns(c.inputs().len(), 256).chunks(LANES) {
            block.load(&c, chunk);
            assert_eq!(block.len(), chunk.len());
            for (lane, t) in chunk.iter().enumerate() {
                let waves = simulate_triples(&c, &t.to_triples());
                for (id, _) in c.iter() {
                    assert_eq!(
                        block.triple(id, lane),
                        waves[id.index()],
                        "line {id} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn partial_tests_with_x_inputs_match_scalar() {
        let c = iscas::c17();
        let n = c.inputs().len();
        // A mix of x, 0, 1 across both patterns.
        let vals = [Value::X, Value::Zero, Value::One];
        let tests: Vec<TwoPattern> = (0..3usize.pow(n as u32))
            .map(|mut k| {
                let mut v1 = Vec::new();
                let mut v2 = Vec::new();
                for _ in 0..n {
                    v1.push(vals[k % 3]);
                    v2.push(vals[(k / 3) % 3]);
                    k /= 2; // deliberately irregular mixing
                }
                TwoPattern::new(v1, v2)
            })
            .collect();
        let mut block = PackedBlock::new();
        for chunk in tests.chunks(LANES) {
            block.load(&c, chunk);
            for (lane, t) in chunk.iter().enumerate() {
                let waves = simulate_triples(&c, &t.to_triples());
                for (id, _) in c.iter() {
                    assert_eq!(block.triple(id, lane), waves[id.index()]);
                }
            }
        }
    }

    #[test]
    fn satisfied_lanes_matches_scalar_satisfied_by() {
        use pdf_paths::PathEnumerator;

        let c = iscas::s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = pdf_faults::FaultList::build(&c, &paths.store);
        let tests = exhaustive_two_patterns(c.inputs().len(), 128);
        let mut block = PackedBlock::new();
        for (b, chunk) in tests.chunks(LANES).enumerate() {
            block.load(&c, chunk);
            for entry in faults.iter() {
                let lanes = block.satisfied_lanes(&entry.assignments);
                for (lane, t) in chunk.iter().enumerate() {
                    let waves = simulate_triples(&c, &t.to_triples());
                    assert_eq!(
                        lanes >> lane & 1 == 1,
                        entry.assignments.satisfied_by(&waves),
                        "block {b} lane {lane} fault {}",
                        entry.assignments
                    );
                }
            }
        }
    }

    #[test]
    fn unloaded_lanes_never_satisfy() {
        let c = iscas::c17();
        let n = c.inputs().len();
        let tests = vec![TwoPattern::new(vec![Value::One; n], vec![Value::One; n]); 3];
        let mut block = PackedBlock::new();
        block.load(&c, &tests);
        assert_eq!(block.lanes(), 0b111);
        // The empty requirement is satisfied by exactly the loaded lanes.
        assert_eq!(block.satisfied_lanes(&Assignments::new()), 0b111);
    }

    #[test]
    fn arena_reuse_across_circuits_resizes() {
        let big = iscas::s27();
        let small = iscas::c17();
        let mut block = PackedBlock::new();
        let t27 = exhaustive_two_patterns(big.inputs().len(), 4);
        let t17 = exhaustive_two_patterns(small.inputs().len(), 4);
        block.load(&big, &t27);
        block.load(&small, &t17);
        let waves = simulate_triples(&small, &t17[2].to_triples());
        for (id, _) in small.iter() {
            assert_eq!(block.triple(id, 2), waves[id.index()]);
        }
    }

    #[test]
    fn rail_blocks_match_loaded_two_patterns() {
        // A block assembled from raw rail words (the justifier's path)
        // must equal the same tests loaded as materialized TwoPatterns.
        let c = iscas::s27();
        let n = c.inputs().len();
        let tests = exhaustive_two_patterns(n, LANES);
        let mut loaded = PackedBlock::new();
        loaded.load(&c, &tests);

        let mut railed = PackedBlock::new();
        railed.begin_block(&c);
        for (pos, &id) in c.inputs().iter().enumerate() {
            let mut first = (0u64, 0u64);
            let mut last = (0u64, 0u64);
            for (lane, t) in tests.iter().enumerate() {
                let bit = 1u64 << lane;
                match t.first()[pos] {
                    Value::Zero => first.0 |= bit,
                    Value::One => first.1 |= bit,
                    Value::X => {}
                }
                match t.second()[pos] {
                    Value::Zero => last.0 |= bit,
                    Value::One => last.1 |= bit,
                    Value::X => {}
                }
            }
            railed.set_input_rails(id, first, last);
        }
        railed.propagate_over(&c, c.topo_order());
        assert_eq!(railed.lanes(), u64::MAX);
        for (id, _) in c.iter() {
            for lane in 0..tests.len() {
                assert_eq!(railed.triple(id, lane), loaded.triple(id, lane));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 tests")]
    fn oversized_block_panics() {
        let c = iscas::c17();
        let n = c.inputs().len();
        let tests = vec![TwoPattern::unspecified(n); LANES + 1];
        PackedBlock::new().load(&c, &tests);
    }

    #[test]
    #[should_panic(expected = "one value per primary input")]
    fn wrong_width_panics() {
        let c = iscas::c17();
        PackedBlock::new().load(&c, &[TwoPattern::unspecified(1)]);
    }
}
