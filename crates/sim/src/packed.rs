//! The bit-plane packed two-pattern simulation kernel.
//!
//! A [`PackedBlock`] simulates up to `W::LANES` two-pattern tests through
//! a circuit in one topological pass. Every line carries six planes of the
//! tile type `W` ([`SimWord`]: `u64`, `[u64; 4]` or `[u64; 8]`) — a *zero
//! rail* and a *one rail* for each of the three triple components
//! `α1 α2 α3` — with lane `j` of a plane describing test lane `j`:
//!
//! * zero-rail bit set → the component is a proven `0` for that test,
//! * one-rail bit set → a proven `1`,
//! * neither set → `x` (the rails are mutually exclusive by construction).
//!
//! Kleene's strong three-valued logic then becomes plain word arithmetic,
//! applied independently per component:
//!
//! ```text
//! AND:  one = a.one & b.one          OR:   one = a.one | b.one
//!       zero = a.zero | b.zero             zero = a.zero & b.zero
//! XOR:  one  = a.zero & b.one  |  a.one & b.zero
//!       zero = a.zero & b.zero |  a.one & b.one
//! NOT:  swap the rails
//! ```
//!
//! Because the scalar triple algebra is exactly component-wise Kleene logic
//! (see `pdf_logic::GateKind::eval_triples`), a packed pass produces
//! bit-identical waveforms to `W::LANES` scalar
//! [`pdf_netlist::simulate_triples`] calls, at any width — the
//! differential property tests of this crate enforce this.
//!
//! # Event-driven propagation
//!
//! By default the block is *event-driven*: every line remembers the
//! stamp of the propagation pass that last changed its planes
//! (`changed`) and the pass that last evaluated it (`checked`), and a
//! pass re-evaluates a line only when some fanin changed more recently
//! than the line was last checked. The two-rail encoding is what makes
//! this cheap — "did this line change for any of the `W::LANES` tests"
//! is a single 6-word plane compare, with no per-lane bookkeeping.
//!
//! The stamps survive across blocks, so a justifier hammering the same
//! fanin cone with mostly-frozen pin rails only pays for the lines its
//! open inputs actually reach, and consecutive cones re-use each other's
//! settled regions. Stamp validity is tied to [`Circuit::epoch`]: an
//! arena handed a structurally different circuit resets itself, so reuse
//! across circuits stays safe even when allocators hand out the same
//! addresses.
//!
//! The plane arena is reused across [`PackedBlock::load`] calls: in
//! steady state a load writes only the input planes (a branchless
//! test-major transpose into raw `u64` rail words) and whatever the dirty
//! sweep re-evaluates — no arena-wide memset at all. Input planes only ever carry bits for
//! loaded lanes, and every rail operation maps all-zero fanin lanes to
//! all-zero output lanes, so partial-lane blocks are masked once at load
//! time by construction rather than per query.

use pdf_faults::Assignments;
use pdf_logic::{GateKind, Triple, Value};
use pdf_netlist::{Circuit, LineId, LineKind, TwoPattern};

use crate::word::SimWord;

/// Number of tests simulated per packed pass at the default `u64` width.
/// Width-generic code should use `W::LANES` instead.
pub const LANES: usize = 64;

/// Six bit-planes of one line: `[α1⁰, α1¹, α2⁰, α2¹, α3⁰, α3¹]` — a zero
/// and a one rail per triple component.
type Planes<W> = [W; 6];

#[inline]
fn and6<W: SimWord>(a: Planes<W>, b: Planes<W>) -> Planes<W> {
    [
        a[0].or(b[0]),
        a[1].and(b[1]),
        a[2].or(b[2]),
        a[3].and(b[3]),
        a[4].or(b[4]),
        a[5].and(b[5]),
    ]
}

#[inline]
fn or6<W: SimWord>(a: Planes<W>, b: Planes<W>) -> Planes<W> {
    [
        a[0].and(b[0]),
        a[1].or(b[1]),
        a[2].and(b[2]),
        a[3].or(b[3]),
        a[4].and(b[4]),
        a[5].or(b[5]),
    ]
}

#[inline]
fn xor6<W: SimWord>(a: Planes<W>, b: Planes<W>) -> Planes<W> {
    [
        (a[0].and(b[0])).or(a[1].and(b[1])),
        (a[0].and(b[1])).or(a[1].and(b[0])),
        (a[2].and(b[2])).or(a[3].and(b[3])),
        (a[2].and(b[3])).or(a[3].and(b[2])),
        (a[4].and(b[4])).or(a[5].and(b[5])),
        (a[4].and(b[5])).or(a[5].and(b[4])),
    ]
}

#[inline]
fn not6<W: SimWord>(a: Planes<W>) -> Planes<W> {
    [a[1], a[0], a[3], a[2], a[5], a[4]]
}

/// One line of the compiled evaluation plan ([`PackedBlock::bind`]
/// flattens the [`Circuit`] into these): what to do when the line's turn
/// comes in a propagation sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    /// Primary input — planes come from the loader, sweeps skip it.
    Input,
    /// Fanout branch — copy the stem's planes (its single flat fanin).
    Copy,
    /// Logic gate — fold the flat fanin planes with the rail algebra.
    Gate(GateKind),
}

/// Evaluates one gate over the plane arena: the fanin planes are folded
/// with the gate's rail algebra, two-input gates (the overwhelmingly
/// common case) on a branch-free straight-line path.
#[inline]
fn eval_gate<W: SimWord>(planes: &[Planes<W>], kind: GateKind, fanin: &[u32]) -> Planes<W> {
    let first = planes[fanin[0] as usize];
    let folded = match kind {
        GateKind::And | GateKind::Nand => fanin[1..]
            .iter()
            .fold(first, |acc, &f| and6(acc, planes[f as usize])),
        GateKind::Or | GateKind::Nor => fanin[1..]
            .iter()
            .fold(first, |acc, &f| or6(acc, planes[f as usize])),
        GateKind::Xor | GateKind::Xnor => fanin[1..]
            .iter()
            .fold(first, |acc, &f| xor6(acc, planes[f as usize])),
        GateKind::Not | GateKind::Buf => first,
    };
    if kind.inverts() {
        not6(folded)
    } else {
        folded
    }
}

/// Event counters drained by [`PackedBlock::take_kernel_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Lines actually (re-)evaluated by propagation passes.
    pub events_propagated: u64,
    /// Lines a pass visited but skipped because no fanin had changed.
    pub lines_skipped: u64,
}

/// A reusable arena simulating up to `W::LANES` two-pattern tests at once.
///
/// # Example
///
/// ```
/// use pdf_logic::{Triple, Value};
/// use pdf_netlist::{iscas, TwoPattern};
/// use pdf_sim::PackedBlock;
///
/// let circuit = iscas::c17();
/// let n = circuit.inputs().len();
/// let tests = vec![
///     TwoPattern::new(vec![Value::Zero; n], vec![Value::One; n]),
///     TwoPattern::new(vec![Value::One; n], vec![Value::One; n]),
/// ];
/// // The default width is `u64` (64 lanes); `PackedBlock<[u64; 8]>`
/// // simulates 512 tests per pass with the same results.
/// let mut block: PackedBlock = PackedBlock::new();
/// block.load(&circuit, &tests);
///
/// // Lane 1 applied stable inputs, so every line is stable.
/// let scalar = pdf_netlist::simulate_triples(&circuit, &tests[1].to_triples());
/// for (id, _) in circuit.iter() {
///     assert_eq!(block.triple(id, 1), scalar[id.index()]);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct PackedBlock<W: SimWord = u64> {
    planes: Vec<Planes<W>>,
    /// Compiled evaluation plan, one op per line: the hot sweep reads
    /// these three flat arrays instead of chasing [`Circuit`]'s per-line
    /// heap structures (fanin `Vec`s, names) through the cache.
    kinds: Vec<OpKind>,
    /// `fanin_flat[starts[i] as usize..starts[i + 1] as usize]` are the
    /// flat fanin indices of line `i` (the stem for a branch).
    starts: Vec<u32>,
    /// Concatenated fanin line indices, in line order.
    fanin_flat: Vec<u32>,
    /// Stamp of the pass that last changed each line's planes.
    changed: Vec<u64>,
    /// Stamp of the pass that last evaluated each line.
    checked: Vec<u64>,
    /// Monotone propagation-pass counter; input writes stamp `pass + 1`.
    pass: u64,
    /// [`Circuit::epoch`] the arena state belongs to; 0 = unbound.
    epoch: u64,
    event_driven: bool,
    events: u64,
    skipped: u64,
    loaded: W,
    count: usize,
}

impl<W: SimWord> Default for PackedBlock<W> {
    fn default() -> PackedBlock<W> {
        PackedBlock {
            planes: Vec::new(),
            kinds: Vec::new(),
            starts: Vec::new(),
            fanin_flat: Vec::new(),
            changed: Vec::new(),
            checked: Vec::new(),
            pass: 0,
            epoch: 0,
            event_driven: true,
            events: 0,
            skipped: 0,
            loaded: W::ZERO,
            count: 0,
        }
    }
}

impl<W: SimWord> PackedBlock<W> {
    /// Creates an empty event-driven arena; the first
    /// [`PackedBlock::load`] (or [`PackedBlock::begin_block`]) sizes it.
    #[must_use]
    pub fn new() -> PackedBlock<W> {
        PackedBlock::default()
    }

    /// Enables or disables event-driven propagation (enabled by default).
    /// With events off every pass evaluates every line of its order — the
    /// reference behavior the differential tests compare against.
    #[must_use]
    pub fn with_events(mut self, enabled: bool) -> PackedBlock<W> {
        self.event_driven = enabled;
        self
    }

    /// Whether this arena skips lines whose fanins did not change.
    #[inline]
    #[must_use]
    pub fn event_driven(&self) -> bool {
        self.event_driven
    }

    /// Number of tests loaded by the last [`PackedBlock::load`].
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if no tests are loaded.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The mask of valid lanes: bit `j` set iff test `j` is loaded.
    #[inline]
    #[must_use]
    pub fn lanes(&self) -> W {
        self.loaded
    }

    /// Drains the event counters accumulated since the last call.
    pub fn take_kernel_stats(&mut self) -> KernelStats {
        let stats = KernelStats {
            events_propagated: self.events,
            lines_skipped: self.skipped,
        };
        self.events = 0;
        self.skipped = 0;
        stats
    }

    /// Binds the arena to `circuit`, resetting planes and stamps only when
    /// the circuit actually differs from the one the arena last simulated
    /// (by [`Circuit::epoch`], so reuse across distinct same-sized
    /// circuits is detected). In steady state this is a two-field compare
    /// and no memory traffic.
    fn bind(&mut self, circuit: &Circuit) {
        if self.epoch == circuit.epoch() && self.planes.len() == circuit.line_count() {
            return;
        }
        self.planes.clear();
        self.planes.resize(circuit.line_count(), [W::ZERO; 6]);
        self.changed.clear();
        self.changed.resize(circuit.line_count(), 0);
        self.checked.clear();
        self.checked.resize(circuit.line_count(), 0);
        self.pass = 0;
        self.epoch = circuit.epoch();

        // Compile the evaluation plan: per line an op kind plus a span of
        // flat fanin indices. Propagation sweeps then run entirely over
        // these contiguous arrays — no heap pointer per gate.
        self.kinds.clear();
        self.starts.clear();
        self.fanin_flat.clear();
        self.starts.push(0);
        for line in circuit.lines() {
            match line.kind() {
                LineKind::Input => self.kinds.push(OpKind::Input),
                LineKind::Branch { stem } => {
                    self.kinds.push(OpKind::Copy);
                    self.fanin_flat.push(stem.index() as u32);
                }
                LineKind::Gate(kind) => {
                    self.kinds.push(OpKind::Gate(*kind));
                    self.fanin_flat
                        .extend(line.fanin().iter().map(|f| f.index() as u32));
                }
            }
            self.starts.push(self.fanin_flat.len() as u32);
        }
    }

    /// Overwrites one line's planes, stamping it changed for the upcoming
    /// pass iff the value actually differs.
    #[inline]
    fn write_line(&mut self, line: LineId, p: Planes<W>) {
        let idx = line.index();
        if self.event_driven {
            if self.planes[idx] != p {
                self.planes[idx] = p;
                self.changed[idx] = self.pass + 1;
            }
        } else {
            self.planes[idx] = p;
        }
    }

    /// Loads a block of tests and simulates them through the circuit in
    /// one topological pass. Previously loaded state is replaced; the
    /// plane arena is reused.
    ///
    /// # Panics
    ///
    /// Panics if more than `W::LANES` tests are given, or if a test's
    /// width differs from the circuit's input count.
    pub fn load(&mut self, circuit: &Circuit, tests: &[TwoPattern]) {
        assert!(
            tests.len() <= W::LANES,
            "a packed block holds at most {} tests, got {}",
            W::LANES,
            tests.len()
        );
        for test in tests {
            assert_eq!(
                test.len(),
                circuit.inputs().len(),
                "one value per primary input required"
            );
        }
        self.bind(circuit);
        self.count = tests.len();
        self.loaded = W::low_lanes(tests.len());

        // Input planes are rebuilt from zero per load, so they never carry
        // bits outside the loaded lanes — this is what masks partial
        // blocks (all-zero fanin lanes stay all-zero through every rail
        // op).
        //
        // The rebuild is a transpose: per-test `Value` vectors in, per-
        // input lane bitsets out. It walks tests in the outer loop so each
        // test's two pattern vectors are read once, sequentially, while
        // the per-input accumulator (four raw `u64` rails per input, the
        // current 64-lane group) stays L1-resident; the wide tile is only
        // touched once per finished group, via `set_word`. The
        // intermediate component needs no per-lane work at all — its
        // rails are exactly `first & last` ([`Triple::from_patterns`]
        // specifies it only where both pattern values agree).
        let n_inputs = circuit.inputs().len();
        let mut input_planes: Vec<Planes<W>> = vec![[W::ZERO; 6]; n_inputs];
        let mut rails: Vec<[u64; 4]> = vec![[0u64; 4]; n_inputs];
        for (group, chunk) in tests.chunks(64).enumerate() {
            for r in rails.iter_mut() {
                *r = [0u64; 4];
            }
            for (bit, test) in chunk.iter().enumerate() {
                let first = test.first();
                let last = test.second();
                // Branchless on purpose: justified patterns are a random
                // mix of 0/1/x, so a per-value `match` would mispredict
                // constantly; bool-to-mask compiles to straight-line
                // compare/shift/or.
                for ((fv, lv), r) in first.iter().zip(last).zip(rails.iter_mut()) {
                    r[0] |= u64::from(*fv == Value::Zero) << bit;
                    r[1] |= u64::from(*fv == Value::One) << bit;
                    r[2] |= u64::from(*lv == Value::Zero) << bit;
                    r[3] |= u64::from(*lv == Value::One) << bit;
                }
            }
            for (p, r) in input_planes.iter_mut().zip(&rails) {
                p[0].set_word(group, r[0]);
                p[1].set_word(group, r[1]);
                p[2].set_word(group, r[0] & r[2]);
                p[3].set_word(group, r[1] & r[3]);
                p[4].set_word(group, r[2]);
                p[5].set_word(group, r[3]);
            }
        }
        for (&id, &p) in circuit.inputs().iter().zip(&input_planes) {
            self.write_line(id, p);
        }
        self.propagate(circuit);
    }

    /// Prepares the arena for a full-width block (all `W::LANES` lanes
    /// valid) whose inputs will be supplied as raw rail words via
    /// [`PackedBlock::set_input_rails`] — the entry point of the packed
    /// justifier, which synthesizes `W::LANES` candidate tests per block
    /// instead of loading materialized [`TwoPattern`]s.
    ///
    /// Unlike [`PackedBlock::load`] this does **not** clear the planes:
    /// only lines written afterwards (inputs via `set_input_rails`, gates
    /// via [`PackedBlock::propagate_over`]) are defined, everything else
    /// may hold stale values from a previous block. A fanin-closed cone
    /// order covers every line it can observe, so the justifier's
    /// block-per-cone loop stays O(cone), not O(circuit) — and with
    /// events on, O(lines whose rails actually changed).
    pub fn begin_block(&mut self, circuit: &Circuit) {
        self.bind(circuit);
        self.count = W::LANES;
        self.loaded = W::ONES;
    }

    /// Sets the two pattern values of input `line` for all `W::LANES`
    /// lanes at once. `first` and `last` are `(zero_rail, one_rail)` word
    /// pairs: bit `j` of a rail proves that value for lane `j`, neither
    /// bit set means `x`. The intermediate triple component is derived
    /// exactly as [`Triple::from_patterns`] does — specified only where
    /// both pattern values agree.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a rail pair overlaps — a lane cannot
    /// prove both `0` and `1`.
    pub fn set_input_rails(&mut self, line: LineId, first: (W, W), last: (W, W)) {
        debug_assert!(
            first.0.and(first.1).is_zero(),
            "overlapping first-pattern rails"
        );
        debug_assert!(
            last.0.and(last.1).is_zero(),
            "overlapping last-pattern rails"
        );
        self.write_line(
            line,
            [
                first.0,
                first.1,
                first.0.and(last.0),
                first.1.and(last.1),
                last.0,
                last.1,
            ],
        );
    }

    /// Evaluates gates along `order` — any topologically sorted,
    /// fanin-closed slice of the circuit, typically a fanin cone — leaving
    /// lines outside `order` untouched (`x` after a fresh
    /// [`PackedBlock::begin_block`]). Input lines in `order` are skipped:
    /// their planes come from [`PackedBlock::set_input_rails`].
    ///
    /// With events on, a line is re-evaluated only when some fanin's
    /// planes changed after the line was last checked; untouched regions
    /// of the cone cost one stamp compare per line.
    pub fn propagate_over(&mut self, circuit: &Circuit, order: &[LineId]) {
        debug_assert!(
            self.epoch == circuit.epoch() && self.planes.len() == circuit.line_count(),
            "propagate_over requires a bound arena (load or begin_block first)"
        );
        let _ = circuit;
        // Destructured so the sweep gets disjoint borrows of the plan and
        // the mutable arenas; two specialized loops so the hot path
        // carries no per-line mode branch and the plain sweep pays for no
        // stamp bookkeeping at all.
        let PackedBlock {
            planes,
            kinds,
            starts,
            fanin_flat,
            changed,
            checked,
            pass,
            events,
            skipped,
            event_driven,
            ..
        } = self;
        if *event_driven {
            *pass += 1;
            let pass = *pass;
            for &id in order {
                let idx = id.index();
                let fanin = &fanin_flat[starts[idx] as usize..starts[idx + 1] as usize];
                let kind = match kinds[idx] {
                    OpKind::Input => continue,
                    OpKind::Copy => None,
                    OpKind::Gate(kind) => Some(kind),
                };
                let line_checked = checked[idx];
                if !fanin.iter().any(|&f| changed[f as usize] > line_checked) {
                    *skipped += 1;
                    continue;
                }
                *events += 1;
                let out = match kind {
                    None => planes[fanin[0] as usize],
                    Some(kind) => eval_gate(planes, kind, fanin),
                };
                checked[idx] = pass;
                if planes[idx] != out {
                    planes[idx] = out;
                    changed[idx] = pass;
                }
            }
        } else {
            for &id in order {
                let idx = id.index();
                let out = match kinds[idx] {
                    OpKind::Input => continue,
                    OpKind::Copy => planes[fanin_flat[starts[idx] as usize] as usize],
                    OpKind::Gate(kind) => {
                        let fanin = &fanin_flat[starts[idx] as usize..starts[idx + 1] as usize];
                        eval_gate(planes, kind, fanin)
                    }
                };
                *events += 1;
                planes[idx] = out;
            }
        }
    }

    fn propagate(&mut self, circuit: &Circuit) {
        self.propagate_over(circuit, circuit.topo_order());
    }

    /// The simulated waveform of `line` in test lane `lane` — the packed
    /// equivalent of `simulate_triples(..)[line.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a loaded lane or `line` is out of range.
    #[must_use]
    pub fn triple(&self, line: LineId, lane: usize) -> Triple {
        assert!(
            lane < self.count,
            "lane {lane} not loaded ({} tests in block)",
            self.count
        );
        let p = &self.planes[line.index()];
        let comp = |c: usize| {
            if p[2 * c].lane(lane) {
                Value::Zero
            } else if p[2 * c + 1].lane(lane) {
                Value::One
            } else {
                Value::X
            }
        };
        Triple::new(comp(0), comp(1), comp(2))
    }

    /// The lanes whose simulated waveforms satisfy every requirement of
    /// `req` — the packed equivalent of `W::LANES`
    /// `Assignments::satisfied_by` calls, one word operation per specified
    /// requirement component. Plane lanes outside the loaded mask are
    /// all-zero by the load-time masking invariant; the initial `loaded`
    /// term only decides the degenerate empty-requirement case.
    #[must_use]
    pub fn satisfied_lanes(&self, req: &Assignments) -> W {
        let mut lanes = self.loaded;
        for (line, tri) in req.iter() {
            let p = &self.planes[line.index()];
            for (c, v) in tri.components().into_iter().enumerate() {
                match v {
                    Value::Zero => lanes = lanes.and(p[2 * c]),
                    Value::One => lanes = lanes.and(p[2 * c + 1]),
                    Value::X => {}
                }
            }
            if lanes.is_zero() {
                return W::ZERO;
            }
        }
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::{iscas, simulate_triples};

    fn exhaustive_two_patterns(n: usize, limit: usize) -> Vec<TwoPattern> {
        // All fully-specified two-pattern tests over n inputs, capped.
        let total = 1usize << (2 * n);
        (0..total.min(limit))
            .map(|bits| {
                let v1 = (0..n).map(|i| Value::from(bits >> i & 1 == 1)).collect();
                let v2 = (0..n)
                    .map(|i| Value::from(bits >> (n + i) & 1 == 1))
                    .collect();
                TwoPattern::new(v1, v2)
            })
            .collect()
    }

    fn check_matches_scalar_on_s27<W: SimWord>(events: bool) {
        let c = iscas::s27();
        let mut block = PackedBlock::<W>::new().with_events(events);
        for chunk in exhaustive_two_patterns(c.inputs().len(), 4 * LANES).chunks(W::LANES) {
            block.load(&c, chunk);
            assert_eq!(block.len(), chunk.len());
            for (lane, t) in chunk.iter().enumerate() {
                let waves = simulate_triples(&c, &t.to_triples());
                for (id, _) in c.iter() {
                    assert_eq!(
                        block.triple(id, lane),
                        waves[id.index()],
                        "line {id} lane {lane} width {} events {events}",
                        W::LANES
                    );
                }
            }
        }
    }

    #[test]
    fn matches_scalar_simulation_exhaustively_on_s27() {
        for events in [true, false] {
            check_matches_scalar_on_s27::<u64>(events);
            check_matches_scalar_on_s27::<[u64; 4]>(events);
            check_matches_scalar_on_s27::<[u64; 8]>(events);
        }
    }

    #[test]
    fn partial_tests_with_x_inputs_match_scalar() {
        let c = iscas::c17();
        let n = c.inputs().len();
        // A mix of x, 0, 1 across both patterns.
        let vals = [Value::X, Value::Zero, Value::One];
        let tests: Vec<TwoPattern> = (0..3usize.pow(n as u32))
            .map(|mut k| {
                let mut v1 = Vec::new();
                let mut v2 = Vec::new();
                for _ in 0..n {
                    v1.push(vals[k % 3]);
                    v2.push(vals[(k / 3) % 3]);
                    k /= 2; // deliberately irregular mixing
                }
                TwoPattern::new(v1, v2)
            })
            .collect();
        let mut block: PackedBlock = PackedBlock::new();
        for chunk in tests.chunks(LANES) {
            block.load(&c, chunk);
            for (lane, t) in chunk.iter().enumerate() {
                let waves = simulate_triples(&c, &t.to_triples());
                for (id, _) in c.iter() {
                    assert_eq!(block.triple(id, lane), waves[id.index()]);
                }
            }
        }
    }

    #[test]
    fn satisfied_lanes_matches_scalar_satisfied_by() {
        use pdf_paths::PathEnumerator;

        let c = iscas::s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = pdf_faults::FaultList::build(&c, &paths.store);
        let tests = exhaustive_two_patterns(c.inputs().len(), 128);
        let mut block: PackedBlock = PackedBlock::new();
        for (b, chunk) in tests.chunks(LANES).enumerate() {
            block.load(&c, chunk);
            for entry in faults.iter() {
                let lanes = block.satisfied_lanes(&entry.assignments);
                for (lane, t) in chunk.iter().enumerate() {
                    let waves = simulate_triples(&c, &t.to_triples());
                    assert_eq!(
                        lanes >> lane & 1 == 1,
                        entry.assignments.satisfied_by(&waves),
                        "block {b} lane {lane} fault {}",
                        entry.assignments
                    );
                }
            }
        }
    }

    #[test]
    fn unloaded_lanes_never_satisfy() {
        let c = iscas::c17();
        let n = c.inputs().len();
        let tests = vec![TwoPattern::new(vec![Value::One; n], vec![Value::One; n]); 3];
        let mut block: PackedBlock = PackedBlock::new();
        block.load(&c, &tests);
        assert_eq!(block.lanes(), 0b111);
        // The empty requirement is satisfied by exactly the loaded lanes.
        assert_eq!(block.satisfied_lanes(&Assignments::new()), 0b111);
    }

    #[test]
    fn stale_wide_block_does_not_leak_into_partial_reload() {
        // A full 64-test block followed by a 2-test block on the same
        // arena: the partial reload must mask every plane down to its two
        // lanes, even though nothing memsets the arena in between.
        let c = iscas::s27();
        let full = exhaustive_two_patterns(c.inputs().len(), LANES);
        let mut block: PackedBlock = PackedBlock::new();
        block.load(&c, &full);
        let partial = &full[..2];
        block.load(&c, partial);
        assert_eq!(block.lanes(), 0b11);
        for (id, _) in c.iter() {
            for (lane, t) in partial.iter().enumerate() {
                let waves = simulate_triples(&c, &t.to_triples());
                assert_eq!(block.triple(id, lane), waves[id.index()]);
            }
        }
        // Requirements satisfiable by every lane of the wide block must
        // now report at most the two loaded lanes.
        use pdf_paths::PathEnumerator;
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = pdf_faults::FaultList::build(&c, &paths.store);
        for entry in faults.iter() {
            assert_eq!(
                block.satisfied_lanes(&entry.assignments) & !0b11,
                0,
                "stale lanes leaked for {}",
                entry.assignments
            );
        }
    }

    #[test]
    fn identical_reload_skips_the_whole_circuit() {
        let c = iscas::s27();
        let tests = exhaustive_two_patterns(c.inputs().len(), LANES);
        let mut block: PackedBlock = PackedBlock::new();
        block.load(&c, &tests);
        let first = block.take_kernel_stats();
        assert!(first.events_propagated > 0);

        block.load(&c, &tests);
        let second = block.take_kernel_stats();
        assert_eq!(
            second.events_propagated, 0,
            "an identical reload must propagate nothing"
        );
        assert!(second.lines_skipped > 0);
        // Waveforms are still queryable and correct after the no-op pass.
        let waves = simulate_triples(&c, &tests[5].to_triples());
        for (id, _) in c.iter() {
            assert_eq!(block.triple(id, 5), waves[id.index()]);
        }
    }

    #[test]
    fn events_disabled_evaluates_every_line_every_pass() {
        let c = iscas::s27();
        let tests = exhaustive_two_patterns(c.inputs().len(), LANES);
        let mut block: PackedBlock = PackedBlock::<u64>::new().with_events(false);
        assert!(!block.event_driven());
        let non_input = c.line_count() - c.inputs().len();
        for _ in 0..2 {
            block.load(&c, &tests);
            let stats = block.take_kernel_stats();
            assert_eq!(stats.events_propagated, non_input as u64);
            assert_eq!(stats.lines_skipped, 0);
        }
    }

    #[test]
    fn arena_reuse_across_circuits_resizes() {
        let big = iscas::s27();
        let small = iscas::c17();
        let mut block: PackedBlock = PackedBlock::new();
        let t27 = exhaustive_two_patterns(big.inputs().len(), 4);
        let t17 = exhaustive_two_patterns(small.inputs().len(), 4);
        block.load(&big, &t27);
        block.load(&small, &t17);
        let waves = simulate_triples(&small, &t17[2].to_triples());
        for (id, _) in small.iter() {
            assert_eq!(block.triple(id, 2), waves[id.index()]);
        }
    }

    #[test]
    fn arena_reuse_across_same_sized_circuits_is_detected() {
        // Two structurally different circuits of identical line count:
        // stale planes and stamps from the first must not poison the
        // second (the epoch check forces a reset).
        use pdf_netlist::SynthProfile;
        let a = SynthProfile::new("same-size-a", 11)
            .with_inputs(4)
            .with_gates(12)
            .generate()
            .to_circuit()
            .unwrap();
        let mut b = None;
        for seed in 12..4096 {
            let cand = SynthProfile::new("same-size-b", seed)
                .with_inputs(4)
                .with_gates(12)
                .generate()
                .to_circuit()
                .unwrap();
            if cand.line_count() == a.line_count() {
                b = Some(cand);
                break;
            }
        }
        let b = b.expect("some seed yields an equal line count");
        let tests = exhaustive_two_patterns(4, 16);
        let mut block: PackedBlock = PackedBlock::new();
        block.load(&a, &tests);
        block.load(&b, &tests);
        for (lane, t) in tests.iter().enumerate() {
            let waves = simulate_triples(&b, &t.to_triples());
            for (id, _) in b.iter() {
                assert_eq!(block.triple(id, lane), waves[id.index()]);
            }
        }
    }

    #[test]
    fn rail_blocks_match_loaded_two_patterns() {
        // A block assembled from raw rail words (the justifier's path)
        // must equal the same tests loaded as materialized TwoPatterns.
        let c = iscas::s27();
        let n = c.inputs().len();
        let tests = exhaustive_two_patterns(n, LANES);
        let mut loaded: PackedBlock = PackedBlock::new();
        loaded.load(&c, &tests);

        let mut railed: PackedBlock = PackedBlock::new();
        railed.begin_block(&c);
        for (pos, &id) in c.inputs().iter().enumerate() {
            let mut first = (0u64, 0u64);
            let mut last = (0u64, 0u64);
            for (lane, t) in tests.iter().enumerate() {
                let bit = 1u64 << lane;
                match t.first()[pos] {
                    Value::Zero => first.0 |= bit,
                    Value::One => first.1 |= bit,
                    Value::X => {}
                }
                match t.second()[pos] {
                    Value::Zero => last.0 |= bit,
                    Value::One => last.1 |= bit,
                    Value::X => {}
                }
            }
            railed.set_input_rails(id, first, last);
        }
        railed.propagate_over(&c, c.topo_order());
        assert_eq!(railed.lanes(), u64::MAX);
        for (id, _) in c.iter() {
            for lane in 0..tests.len() {
                assert_eq!(railed.triple(id, lane), loaded.triple(id, lane));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 tests")]
    fn oversized_block_panics() {
        let c = iscas::c17();
        let n = c.inputs().len();
        let tests = vec![TwoPattern::unspecified(n); LANES + 1];
        PackedBlock::<u64>::new().load(&c, &tests);
    }

    #[test]
    #[should_panic(expected = "one value per primary input")]
    fn wrong_width_panics() {
        let c = iscas::c17();
        PackedBlock::<u64>::new().load(&c, &[TwoPattern::unspecified(1)]);
    }
}
