//! Scoped-thread fan-out over slices.
//!
//! The build environment has no crates.io access, so instead of `rayon`
//! this module provides the one primitive the simulation drivers need: map
//! a function over contiguous chunks of a slice on `std::thread::scope`
//! workers and collect the per-chunk results in order. Results are merged
//! in chunk order, so every caller is deterministic regardless of thread
//! scheduling.

use std::num::NonZeroUsize;
use std::thread;

/// The number of worker threads fan-outs use: the `PDF_SIM_THREADS`
/// override when set, otherwise the machine's available parallelism (or 1
/// when that cannot be determined).
///
/// The variable is re-read on every call, so thread-scaling benchmarks
/// can vary it between measurements within one process.
///
/// # Panics
///
/// Panics when `PDF_SIM_THREADS` is set to anything but a positive
/// integer — the strict `PDF_*` parsing contract (a typo must not
/// silently fall back to full parallelism).
#[must_use]
pub fn max_threads() -> usize {
    match std::env::var("PDF_SIM_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("PDF_SIM_THREADS: `{v}` is not a positive integer"),
        },
        Err(std::env::VarError::NotPresent) => thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        Err(std::env::VarError::NotUnicode(v)) => panic!(
            "PDF_SIM_THREADS: `{}` is not a positive integer",
            v.to_string_lossy()
        ),
    }
}

/// Maps `f` over contiguous chunks of `items` in parallel, returning one
/// result per chunk in slice order.
///
/// `f` receives the offset of the chunk's first element within `items` and
/// the chunk itself. Chunks are sized to give each worker thread one chunk,
/// but never smaller than `min_chunk` elements — workloads too small to
/// amortize a thread spawn run inline on the caller's thread.
///
/// # Panics
///
/// Propagates panics from `f`. Inline runs keep the original payload
/// intact; a panic on a worker thread is re-raised with a message naming
/// the chunk index and item range it came from (plus the original
/// message), so cross-thread failures stay attributable to their slice
/// of the workload.
pub fn par_chunk_map<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(max_threads()).max(min_chunk.max(1));
    if chunk >= items.len() {
        pdf_telemetry::count(pdf_telemetry::counters::FANOUT_INLINE, 1);
        return vec![f(0, items)];
    }
    thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, part)| scope.spawn(move || f(i * chunk, part)))
            .collect();
        pdf_telemetry::count(pdf_telemetry::counters::FANOUT_CHUNKS, handles.len() as u64);
        // Join every worker before resuming any panic: unwinding out of
        // the scope while siblings are still running would make the scope
        // itself panic on the unjoined handles and abort the process.
        let results: Vec<thread::Result<R>> = handles.into_iter().map(|h| h.join()).collect();
        let total = items.len();
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|payload| {
                    let lo = i * chunk;
                    let hi = (lo + chunk).min(total);
                    panic!(
                        "worker panic in chunk {i} (items {lo}..{hi}): {}",
                        panic_message(payload.as_ref())
                    )
                })
            })
            .collect()
    })
}

/// Best-effort text of a panic payload: the carried message for the
/// common `&str` / `String` payloads, a placeholder otherwise.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_no_chunks() {
        let out: Vec<usize> = par_chunk_map(&[] as &[u32], 1, |_, c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn small_input_runs_inline_as_one_chunk() {
        let items = [1u32, 2, 3];
        let out = par_chunk_map(&items, 100, |off, c| (off, c.to_vec()));
        assert_eq!(out, vec![(0, vec![1, 2, 3])]);
    }

    #[test]
    fn offsets_and_order_are_preserved() {
        let items: Vec<u64> = (0..10_000).collect();
        let sums = par_chunk_map(&items, 1, |off, c| {
            assert_eq!(c[0], off as u64);
            c.iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
        // Chunk results concatenate back to the original order.
        let cat: Vec<u64> = par_chunk_map(&items, 1, |_, c| c.to_vec())
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(cat, items);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        if max_threads() < 2 {
            return; // single-core: the panic happens inline, trivially intact
        }
        let items: Vec<u64> = (0..10_000).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_chunk_map(&items, 1, |off, c| {
                assert!(off > 0, "chunk offset {off} rejected by the worker");
                c.len()
            })
        }))
        .expect_err("the offset-0 worker must panic");
        let message = caught
            .downcast_ref::<String>()
            .expect("repropagated worker panics carry a formatted message");
        assert!(
            message.starts_with("worker panic in chunk 0 (items 0.."),
            "chunk index and item range must lead: {message}"
        );
        assert!(
            message.ends_with("chunk offset 0 rejected by the worker"),
            "the original payload must be preserved: {message}"
        );
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static text");
        assert_eq!(panic_message(s.as_ref()), "static text");
        let s: Box<dyn std::any::Any + Send> = Box::new("owned text".to_owned());
        assert_eq!(panic_message(s.as_ref()), "owned text");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(s.as_ref()), "non-string panic payload");
    }

    #[test]
    fn inline_panic_payload_is_intact_too() {
        let caught = std::panic::catch_unwind(|| {
            par_chunk_map(&[1u32], 100, |_, _| -> usize { panic!("inline boom") })
        })
        .expect_err("the inline chunk must panic");
        assert_eq!(*caught.downcast_ref::<&str>().unwrap(), "inline boom");
    }
}
