//! Differential oracle: the packed bit-plane kernel must be bit-for-bit
//! equivalent to the scalar triple simulator on random circuits — same
//! waveforms, same satisfied requirements, same coverage flags — at every
//! tile width (64/256/512 lanes) and with event-driven propagation on or
//! off.

use proptest::prelude::*;

use pdf_faults::FaultList;
use pdf_logic::Value;
use pdf_netlist::{simulate_triples, Circuit, SynthProfile, TwoPattern};
use pdf_paths::PathEnumerator;
use pdf_sim::{PackedBlock, SimBackend, SimOptions, SimWidth, SimWord, LANES};

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    // `redundant` injects the `+r` stand-in redundancy gadgets: untestable
    // stuck-structures that real benchmarks contain and that exercise the
    // kernel's never-satisfied requirement paths.
    (3usize..8, 10usize..60, 3usize..8, 0usize..3, any::<u64>()).prop_map(
        |(inputs, gates, levels, redundant, seed)| {
            SynthProfile::new("diff", seed)
                .with_inputs(inputs)
                .with_gates(gates)
                .with_levels(levels)
                .with_redundant_gadgets(redundant)
                .generate()
                .to_circuit()
                .expect("generated netlists are valid")
        },
    )
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::Zero), Just(Value::One), Just(Value::X)]
}

fn arb_tests(inputs: usize) -> impl Strategy<Value = Vec<TwoPattern>> {
    proptest::collection::vec(
        proptest::collection::vec((arb_value(), arb_value()), inputs),
        1..(LANES + 10),
    )
    .prop_map(|tests| {
        tests
            .into_iter()
            .map(|pairs| {
                TwoPattern::new(
                    pairs.iter().map(|p| p.0).collect(),
                    pairs.iter().map(|p| p.1).collect(),
                )
            })
            .collect()
    })
}

/// Loads `tests` into a `W`-tile block (chunked) and checks every lane's
/// waveforms against the scalar simulator.
fn check_waveforms<W: SimWord>(
    c: &Circuit,
    tests: &[TwoPattern],
    events: bool,
) -> Result<(), TestCaseError> {
    let mut block: PackedBlock<W> = PackedBlock::new().with_events(events);
    for chunk in tests.chunks(W::LANES) {
        block.load(c, chunk);
        for (lane, t) in chunk.iter().enumerate() {
            let waves = simulate_triples(c, &t.to_triples());
            for (id, _) in c.iter() {
                prop_assert_eq!(
                    block.triple(id, lane),
                    waves[id.index()],
                    "line {} lane {} events {} width {}",
                    id,
                    lane,
                    events,
                    W::LANES
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_waveforms_equal_scalar_waveforms(
        (c, tests) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            (Just(c), arb_tests(n))
        })
    ) {
        for events in [true, false] {
            check_waveforms::<u64>(&c, &tests, events)?;
            check_waveforms::<[u64; 4]>(&c, &tests, events)?;
            check_waveforms::<[u64; 8]>(&c, &tests, events)?;
        }
    }

    #[test]
    fn packed_coverage_equals_scalar_coverage(
        (c, tests) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            (Just(c), arb_tests(n))
        })
    ) {
        // Real robust fault populations of the random circuit.
        let paths = PathEnumerator::new(&c).with_cap(200).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        prop_assume!(!faults.is_empty());

        let scalar = pdf_sim::coverage_flags(
            SimBackend::Scalar, &c, &tests, faults.entries());
        let scalar_per = pdf_sim::per_test_detections(
            SimBackend::Scalar, &c, &tests, faults.entries());

        // Every tile width × event mode must reproduce the oracle exactly.
        for width in SimWidth::ALL {
            for events in [true, false] {
                let opts = SimOptions::default()
                    .with_width(width)
                    .with_events(events);
                let packed = pdf_sim::coverage_flags(
                    opts, &c, &tests, faults.entries());
                prop_assert_eq!(
                    &scalar, &packed, "coverage, width {} events {}", width, events);
                let packed_per = pdf_sim::per_test_detections(
                    opts, &c, &tests, faults.entries());
                prop_assert_eq!(
                    &scalar_per, &packed_per,
                    "per-test, width {} events {}", width, events);
            }
        }
    }

    #[test]
    fn satisfied_lanes_agrees_with_scalar_requirement_check(
        (c, tests) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            (Just(c), arb_tests(n))
        })
    ) {
        let paths = PathEnumerator::new(&c).with_cap(64).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        prop_assume!(!faults.is_empty());

        let mut block: PackedBlock = PackedBlock::new();
        let chunk = &tests[..tests.len().min(LANES)];
        block.load(&c, chunk);
        for entry in faults.iter() {
            let lanes = block.satisfied_lanes(&entry.assignments);
            for (lane, t) in chunk.iter().enumerate() {
                let waves = simulate_triples(&c, &t.to_triples());
                prop_assert_eq!(
                    lanes >> lane & 1 == 1,
                    entry.assignments.satisfied_by(&waves)
                );
            }
        }
    }

    #[test]
    fn wide_satisfied_lanes_agree_with_scalar_requirement_check(
        (c, tests) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            (Just(c), arb_tests(n))
        })
    ) {
        let paths = PathEnumerator::new(&c).with_cap(64).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        prop_assume!(!faults.is_empty());

        let mut block: PackedBlock<[u64; 8]> = PackedBlock::new();
        block.load(&c, &tests);
        for entry in faults.iter() {
            let lanes = block.satisfied_lanes(&entry.assignments);
            for (lane, t) in tests.iter().enumerate() {
                let waves = simulate_triples(&c, &t.to_triples());
                prop_assert_eq!(
                    lanes.lane(lane),
                    entry.assignments.satisfied_by(&waves),
                    "lane {}", lane
                );
            }
        }
    }
}
