//! Fail-fast behaviour of the `PDF_*` environment knobs.
//!
//! These tests mutate process-global environment variables, so they live
//! in their own integration-test binary (one process, no library tests
//! racing on the same variables) and serialize on a mutex besides.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

use pdf_experiments::{env_parse, filter_circuits, sim_backend, sim_options, Workload};

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `body` with `vars` set, restoring the previous state afterwards
/// even when `body` panics.
fn with_env<R>(vars: &[(&str, Option<&str>)], body: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let saved: Vec<(String, Option<String>)> = vars
        .iter()
        .map(|&(k, _)| (k.to_owned(), std::env::var(k).ok()))
        .collect();
    for &(k, v) in vars {
        match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        }
    }
    let result = catch_unwind(AssertUnwindSafe(body));
    for (k, v) in saved {
        match v {
            Some(v) => std::env::set_var(&k, v),
            None => std::env::remove_var(&k),
        }
    }
    result.unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// The panic message of `body`, which must panic.
fn panic_message(body: impl FnOnce()) -> String {
    let payload = catch_unwind(AssertUnwindSafe(body)).expect_err("expected a panic");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .expect("panic payload must be a string")
}

#[test]
fn env_parse_returns_none_when_unset_and_value_when_parsable() {
    with_env(&[("PDF_TEST_KNOB", None)], || {
        assert_eq!(env_parse::<usize>("PDF_TEST_KNOB"), None);
    });
    with_env(&[("PDF_TEST_KNOB", Some("42"))], || {
        assert_eq!(env_parse::<usize>("PDF_TEST_KNOB"), Some(42));
    });
}

#[test]
fn env_parse_panics_on_garbage_naming_variable_and_value() {
    with_env(&[("PDF_TEST_KNOB", Some("10k"))], || {
        let msg = panic_message(|| {
            let _ = env_parse::<usize>("PDF_TEST_KNOB");
        });
        assert!(msg.contains("PDF_TEST_KNOB"), "{msg}");
        assert!(msg.contains("10k"), "{msg}");
    });
}

#[test]
fn workload_from_env_reads_overrides_and_rejects_garbage() {
    with_env(
        &[
            ("PDF_NP", Some("500")),
            ("PDF_NP0", Some("100")),
            ("PDF_SEED", Some("7")),
            ("PDF_ATTEMPTS", Some("3")),
            ("PDF_CONE_CACHE", Some("16")),
        ],
        || {
            let w = Workload::from_env();
            assert_eq!(
                (w.n_p, w.n_p0, w.seed, w.attempts, w.cone_cache),
                (500, 100, 7, 3, 16)
            );
        },
    );
    with_env(
        &[
            ("PDF_NP", None),
            ("PDF_NP0", None),
            ("PDF_SEED", None),
            ("PDF_ATTEMPTS", None),
            ("PDF_CONE_CACHE", None),
        ],
        || {
            let w = Workload::from_env();
            assert_eq!(w.n_p, Workload::default().n_p);
            assert_eq!(w.cone_cache, pdf_atpg::DEFAULT_CONE_CACHE);
        },
    );
    for (var, bad) in [
        ("PDF_NP", "10k"),
        ("PDF_NP0", "1e3"),
        ("PDF_SEED", "twenty"),
        ("PDF_ATTEMPTS", "-1"),
        ("PDF_CONE_CACHE", "lots"),
    ] {
        with_env(
            &[
                ("PDF_NP", None),
                ("PDF_NP0", None),
                ("PDF_SEED", None),
                ("PDF_ATTEMPTS", None),
                ("PDF_CONE_CACHE", None),
                (var, Some(bad)),
            ],
            || {
                let msg = panic_message(|| {
                    let _ = Workload::from_env();
                });
                assert!(msg.contains(var), "{var}: {msg}");
                assert!(msg.contains(bad), "{var}: {msg}");
            },
        );
    }
}

#[test]
fn sim_backend_rejects_unknown_names() {
    with_env(&[("PDF_SIM_BACKEND", Some("scalar"))], || {
        assert_eq!(sim_backend(), pdf_sim::SimBackend::Scalar);
    });
    with_env(&[("PDF_SIM_BACKEND", None)], || {
        assert_eq!(sim_backend(), pdf_sim::SimBackend::Packed);
    });
    with_env(&[("PDF_SIM_BACKEND", Some("scaler"))], || {
        let msg = panic_message(|| {
            let _ = sim_backend();
        });
        assert!(msg.contains("scaler"), "{msg}");
        assert!(msg.contains("scalar"), "must name accepted values: {msg}");
        assert!(msg.contains("packed"), "must name accepted values: {msg}");
    });
}

#[test]
fn sim_options_read_width_and_events_and_reject_garbage() {
    with_env(
        &[
            ("PDF_SIM_BACKEND", None),
            ("PDF_SIM_WIDTH", Some("512")),
            ("PDF_SIM_EVENTS", Some("off")),
        ],
        || {
            let opts = sim_options();
            assert_eq!(opts.backend, pdf_sim::SimBackend::Packed);
            assert_eq!(opts.width, pdf_sim::SimWidth::W512);
            assert!(!opts.events);
        },
    );
    with_env(
        &[
            ("PDF_SIM_BACKEND", None),
            ("PDF_SIM_WIDTH", None),
            ("PDF_SIM_EVENTS", None),
        ],
        || {
            let opts = sim_options();
            assert_eq!(opts.width, pdf_sim::SimWidth::auto());
            assert!(opts.events);
        },
    );
    with_env(
        &[
            ("PDF_SIM_BACKEND", None),
            ("PDF_SIM_WIDTH", Some("128")),
            ("PDF_SIM_EVENTS", None),
        ],
        || {
            let msg = panic_message(|| {
                let _ = sim_options();
            });
            assert!(msg.contains("PDF_SIM_WIDTH"), "{msg}");
            assert!(msg.contains("128"), "{msg}");
            assert!(msg.contains("`64`"), "must name accepted values: {msg}");
        },
    );
    with_env(
        &[
            ("PDF_SIM_BACKEND", None),
            ("PDF_SIM_WIDTH", None),
            ("PDF_SIM_EVENTS", Some("yes")),
        ],
        || {
            let msg = panic_message(|| {
                let _ = sim_options();
            });
            assert!(msg.contains("PDF_SIM_EVENTS"), "{msg}");
            assert!(msg.contains("yes"), "{msg}");
        },
    );
}

#[test]
fn sim_threads_override_is_strict() {
    with_env(&[("PDF_SIM_THREADS", Some("3"))], || {
        assert_eq!(pdf_sim::max_threads(), 3);
    });
    with_env(&[("PDF_SIM_THREADS", None)], || {
        assert!(pdf_sim::max_threads() >= 1);
    });
    for bad in ["0", "many", "-2"] {
        with_env(&[("PDF_SIM_THREADS", Some(bad))], || {
            let msg = panic_message(|| {
                let _ = pdf_sim::max_threads();
            });
            assert!(msg.contains("PDF_SIM_THREADS"), "{bad}: {msg}");
            assert!(msg.contains(bad), "{bad}: {msg}");
        });
    }
}

#[test]
fn filter_circuits_passes_matches_and_errors_on_empty_selection() {
    const NAMES: [&str; 3] = ["s27", "b03", "b09"];
    with_env(&[("PDF_CIRCUITS", None)], || {
        assert_eq!(filter_circuits(&NAMES), NAMES.to_vec());
    });
    with_env(&[("PDF_CIRCUITS", Some("b09, s27"))], || {
        assert_eq!(filter_circuits(&NAMES), vec!["s27", "b09"]);
    });
    // A typo alongside a real name warns but keeps the real one.
    with_env(&[("PDF_CIRCUITS", Some("b09,s1196"))], || {
        assert_eq!(filter_circuits(&NAMES), vec!["b09"]);
    });
    // A selection matching nothing is an error, not an empty experiment.
    with_env(&[("PDF_CIRCUITS", Some("c6288,sqrt32"))], || {
        let msg = panic_message(|| {
            let _ = filter_circuits(&NAMES);
        });
        assert!(msg.contains("c6288"), "{msg}");
        assert!(msg.contains("selects none"), "{msg}");
    });
}
