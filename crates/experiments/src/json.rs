//! A dependency-free JSON value and pretty-printer.
//!
//! The build environment has no crates.io access (see `vendor/README.md`),
//! so the archival dumps written by [`crate::report::save_json`] and the
//! perf trajectory in `BENCH_sim.json` use this tiny writer instead of
//! `serde_json`. Output is standard JSON, two-space indented, with object
//! keys in insertion order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder starting empty.
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders the value as pretty-printed JSON.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers print without a trailing ".0".
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .field("name", "b09")
            .field("count", 3usize)
            .field("ratio", 1.5f64)
            .field("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let text = j.to_pretty();
        assert!(text.contains("\"name\": \"b09\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 1.5"));
        assert!(text.starts_with('{'));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_hides_nan() {
        let j = Json::object()
            .field("s", "a\"b\\c\nd")
            .field("nan", f64::NAN);
        let text = j.to_pretty();
        assert!(text.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(text.contains("\"nan\": null"));
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::from(42usize).to_pretty(), "42\n");
        assert_eq!(Json::from(2.25f64).to_pretty(), "2.25\n");
    }
}
