//! Rendering measured results side by side with the paper's tables.
//!
//! Every renderer prints measured values first and the paper's value in
//! parentheses — `123 (130)` reads "we measured 123 where the paper
//! reports 130". Absolute values are not expected to match (the benchmark
//! circuits are synthetic stand-ins, see `DESIGN.md`); the *shape* — which
//! heuristic wins, where enrichment gains, roughly what ratio — is the
//! reproduction target.

use std::fmt::Write as _;

use crate::paper;
use crate::{BasicCircuitResult, EnrichCircuitResult};

fn fmt_pair(measured: usize, paper: Option<usize>) -> String {
    match paper {
        Some(p) => format!("{measured} ({p})"),
        None => format!("{measured} (—)"),
    }
}

/// Renders Table 3: `P_0` faults detected per compaction heuristic.
#[must_use]
pub fn render_table3(rows: &[BasicCircuitResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 3: basic test generation using P0 (detected faults)"
    );
    let _ = writeln!(s, "measured (paper)");
    let _ = writeln!(
        s,
        "{:<8} {:>8} {:>12} {:>14} {:>14} {:>14} {:>14}",
        "circuit", "i0", "P0 flts", "uncomp", "arbit", "length", "values"
    );
    for r in rows {
        let p = paper::basic_row(&r.circuit);
        let _ = writeln!(
            s,
            "{:<8} {:>8} {:>12} {:>14} {:>14} {:>14} {:>14}",
            r.circuit,
            fmt_pair(r.i0, p.map(|p| p.i0)),
            fmt_pair(r.p0_total, p.map(|p| p.p0_faults)),
            fmt_pair(r.heuristics[0].p0_detected, p.map(|p| p.p0_detected[0])),
            fmt_pair(r.heuristics[1].p0_detected, p.map(|p| p.p0_detected[1])),
            fmt_pair(r.heuristics[2].p0_detected, p.map(|p| p.p0_detected[2])),
            fmt_pair(r.heuristics[3].p0_detected, p.map(|p| p.p0_detected[3])),
        );
    }
    s
}

/// Renders Table 4: numbers of tests per compaction heuristic.
#[must_use]
pub fn render_table4(rows: &[BasicCircuitResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 4: basic test generation using P0 (numbers of tests)"
    );
    let _ = writeln!(s, "measured (paper)");
    let _ = writeln!(
        s,
        "{:<8} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "circuit", "i0", "uncomp", "arbit", "length", "values"
    );
    for r in rows {
        let p = paper::basic_row(&r.circuit);
        let _ = writeln!(
            s,
            "{:<8} {:>8} {:>14} {:>14} {:>14} {:>14}",
            r.circuit,
            fmt_pair(r.i0, p.map(|p| p.i0)),
            fmt_pair(r.heuristics[0].tests, p.map(|p| p.tests[0])),
            fmt_pair(r.heuristics[1].tests, p.map(|p| p.tests[1])),
            fmt_pair(r.heuristics[2].tests, p.map(|p| p.tests[2])),
            fmt_pair(r.heuristics[3].tests, p.map(|p| p.tests[3])),
        );
    }
    s
}

/// Renders Table 5: accidental `P_0 ∪ P_1` detection by the basic test
/// sets.
#[must_use]
pub fn render_table5(rows: &[BasicCircuitResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 5: simulation of P0 ∪ P1 under the basic test sets"
    );
    let _ = writeln!(s, "measured (paper)");
    let _ = writeln!(
        s,
        "{:<8} {:>8} {:>13} {:>14} {:>14} {:>14} {:>14}",
        "circuit", "i0", "P0,P1 flts", "uncomp", "arbit", "length", "values"
    );
    for r in rows {
        let p = paper::basic_row(&r.circuit);
        let _ = writeln!(
            s,
            "{:<8} {:>8} {:>13} {:>14} {:>14} {:>14} {:>14}",
            r.circuit,
            fmt_pair(r.i0, p.map(|p| p.i0)),
            fmt_pair(r.p01_total, p.map(|p| p.p01_faults)),
            fmt_pair(r.heuristics[0].p01_detected, p.map(|p| p.p01_detected[0])),
            fmt_pair(r.heuristics[1].p01_detected, p.map(|p| p.p01_detected[1])),
            fmt_pair(r.heuristics[2].p01_detected, p.map(|p| p.p01_detected[2])),
            fmt_pair(r.heuristics[3].p01_detected, p.map(|p| p.p01_detected[3])),
        );
    }
    s
}

/// Renders Table 6: the enrichment procedure.
#[must_use]
pub fn render_table6(rows: &[EnrichCircuitResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 6: results of test enrichment using P0 and P1");
    let _ = writeln!(s, "measured (paper)");
    let _ = writeln!(
        s,
        "{:<8} {:>8} {:>13} {:>13} {:>13} {:>14} {:>12}",
        "circuit", "i0", "P0 total", "P0 detect", "P0,P1 total", "P0,P1 det", "tests"
    );
    for r in rows {
        let p = paper::enrich_row(&r.circuit);
        let _ = writeln!(
            s,
            "{:<8} {:>8} {:>13} {:>13} {:>13} {:>14} {:>12}",
            r.circuit,
            fmt_pair(r.i0, p.map(|p| p.i0)),
            fmt_pair(r.p0_total, p.map(|p| p.p0_total)),
            fmt_pair(r.p0_detected, p.map(|p| p.p0_detected)),
            fmt_pair(r.p01_total, p.map(|p| p.p01_total)),
            fmt_pair(r.p01_detected, p.map(|p| p.p01_detected)),
            fmt_pair(r.tests, p.map(|p| p.tests)),
        );
    }
    s
}

/// Renders Table 7: run-time ratio `RT_enrich / RT_basic`.
#[must_use]
pub fn render_table7(rows: &[EnrichCircuitResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 7: run time ratios (RT_enrich / RT_basic, value-based)"
    );
    let _ = writeln!(s, "measured (paper)");
    let _ = writeln!(s, "{:<8} {:>8} {:>16}", "circuit", "i0", "ratio");
    for r in rows {
        let paper_ratio = paper::RUNTIME_RATIOS
            .iter()
            .find(|(c, _)| *c == r.circuit)
            .map(|&(_, ratio)| ratio);
        let shown = match paper_ratio {
            Some(p) => format!("{:.2} ({p:.2})", r.runtime_ratio()),
            None => format!("{:.2} (—)", r.runtime_ratio()),
        };
        let _ = writeln!(
            s,
            "{:<8} {:>8} {:>16}",
            r.circuit,
            fmt_pair(r.i0, paper::enrich_row(&r.circuit).map(|p| p.i0)),
            shown
        );
    }
    s
}

/// Renders the full `EXPERIMENTS.md` document from a complete run.
#[must_use]
pub fn render_experiments_md(
    workload: &crate::Workload,
    basic: &[BasicCircuitResult],
    enrich: &[EnrichCircuitResult],
    table1_text: &str,
    table2_text: &str,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        s,
        "Reproduction of Pomeranz & Reddy, *Test Enrichment for Path Delay \
         Faults Using Multiple Sets of Target Faults* (DATE 2002).\n"
    );
    let _ = writeln!(
        s,
        "* Workload: `N_P = {}`, `N_P0 = {}`, seed `{}`, justification \
         attempts `{}`.",
        workload.n_p, workload.n_p0, workload.seed, workload.attempts
    );
    let _ = writeln!(
        s,
        "* Circuits are deterministic synthetic stand-ins for the ISCAS-89 / \
         ITC-99 originals (see `DESIGN.md`); `s27` is exact. Absolute \
         numbers therefore differ from the paper; the comparison targets \
         are the *shape* claims listed with each table."
    );
    let _ = writeln!(s, "* Format: every cell is `measured (paper)`.\n");
    let _ = writeln!(s, "Regenerate everything with:\n");
    let _ = writeln!(
        s,
        "```console\n$ cargo run --release -p pdf-experiments --bin all_tables\n```\n"
    );

    let _ = writeln!(s, "## Table 1 — s27 enumeration walkthrough\n");
    let _ = writeln!(
        s,
        "Claim reproduced: with `N_P = 20` (path granularity), the first \
         cap event matches the paper's Set 1 **exactly** (all 20 paths and \
         their partial/complete labels); the fourth matches Set 2 in 20 of \
         21 entries. The single difference, `(5,21,24)`, is internally \
         inconsistent in the paper itself: a complete length-3 path cannot \
         survive a removal event whose rule removes minimal-length complete \
         paths, so the paper's Set 2 could not have been produced by the \
         paper's own removal rule. Our final store keeps the paper's 18 \
         paths of lengths 7–10 plus one length-6 survivor.\n"
    );
    let _ = writeln!(s, "```\n{}```\n", table1_text);

    let _ = writeln!(s, "## Table 2 — cumulative length classes of s1423\n");
    let _ = writeln!(
        s,
        "Claim reproduced: lengths are densely packed (`L_i − L_{{i+1}}` is \
         1 line) and the cumulative count `N_p(L_i)` grows smoothly past \
         `N_P0 = 1000` after a few tens of classes, so `P_0` cuts the \
         population mid-spectrum. The stand-in's class count is compared \
         against the paper's profile below.\n"
    );
    let _ = writeln!(s, "```\n{}```\n", table2_text);

    let _ = writeln!(
        s,
        "## Tables 3 & 4 — basic generation, compaction heuristics\n"
    );
    let _ = writeln!(
        s,
        "Claims reproduced: (a) all three compaction heuristics detect \
         essentially the same `P_0` faults as the uncompacted baseline; \
         (b) every compaction heuristic needs far fewer tests than the \
         uncompacted baseline (paper: 1.5×–3.7× fewer); (c) the three \
         compaction heuristics are within a few percent of one another.\n"
    );
    let _ = writeln!(s, "```\n{}```\n", render_table3(basic));
    let _ = writeln!(s, "```\n{}```\n", render_table4(basic));

    let _ = writeln!(s, "## Table 5 — accidental P0 ∪ P1 coverage\n");
    let _ = writeln!(
        s,
        "Claim reproduced: test sets generated for `P_0` alone leave a \
         large fraction of `P_1` undetected, and the compact test sets \
         detect barely fewer `P_1` faults than the much larger uncompacted \
         sets.\n"
    );
    let _ = writeln!(s, "```\n{}```\n", render_table5(basic));

    let _ = writeln!(s, "## Table 6 — test enrichment\n");
    let _ = writeln!(
        s,
        "Claims reproduced: (a) enrichment detects substantially more of \
         `P_0 ∪ P_1` than any basic heuristic detects accidentally \
         (compare with Table 5); (b) the number of tests stays essentially \
         equal to the value-based basic procedure's (Table 4, `values` \
         column) — `P_1` detection is free; (c) `P_0` detection is not \
         sacrificed (within the paper's noted random variation).\n"
    );
    let _ = writeln!(s, "```\n{}```\n", render_table6(enrich));

    let _ = writeln!(s, "## Table 7 — run-time ratio\n");
    let _ = writeln!(
        s,
        "Claim reproduced: enrichment costs a small constant factor over \
         the basic procedure (paper: 0.94–2.51).\n"
    );
    let _ = writeln!(s, "```\n{}```\n", render_table7(enrich));

    let _ = writeln!(s, "## Known deviations\n");
    let _ = writeln!(
        s,
        "Analysed in detail in `DESIGN.md` §6; in brief:\n\n\
         * the stand-ins' `i0` indices and population sizes differ from \
         the originals' (synthetic length spectra), while `|P_0|` lands in \
         the paper's 1000–1600 band on every circuit;\n\
         * `P_0` detection rates run higher than the paper's (less deep \
         reconvergence in the stand-ins, so fewer aborts);\n\
         * Table 7 ratios exceed the paper's band on circuits whose \
         stand-in `P_1` population is much larger than the original's — \
         the ratio tracks `|P_1| / |P_0|`;\n\
         * Table 1's Set 2 differs in one entry that is internally \
         inconsistent in the paper itself.\n"
    );

    let _ = writeln!(s, "## Figures\n");
    let _ = writeln!(
        s,
        "* **Figure 1** (`s27`): reproduced exactly, line for line, \
         including the paper's numbering — `cargo run -p pdf-experiments \
         --bin figure1` prints the circuit and its DOT rendering; the \
         `A(p)` of the worked example fault `(2,9,10,15)` slow-to-rise is \
         verified in `pdf-faults` unit tests to be `{{2 ↦ 0x1, 7 ↦ 000, \
         3 ↦ xx0}}`, matching the paper's text."
    );
    let _ = writeln!(
        s,
        "* **Figure 2** (distance bound): `len(p) = delay(p) + d(g)` is \
         implemented as `Path::max_extension_delay`; `cargo run -p \
         pdf-experiments --bin figure2` demonstrates the bound and the \
         property tests in `tests/` verify it is tight on every circuit."
    );
    s
}

/// Serializes a complete run to JSON (for archival/diffing).
///
/// # Errors
///
/// Returns any I/O error from writing `path`.
pub fn save_json(
    path: &std::path::Path,
    workload: &crate::Workload,
    basic: &[BasicCircuitResult],
    enrich: &[EnrichCircuitResult],
) -> std::io::Result<()> {
    use crate::json::Json;

    let workload_json = Json::object()
        .field("n_p", workload.n_p)
        .field("n_p0", workload.n_p0)
        .field("seed", workload.seed)
        .field("attempts", workload.attempts);
    let basic_json: Vec<Json> = basic
        .iter()
        .map(|r| {
            let heuristics: Vec<Json> = r
                .heuristics
                .iter()
                .map(|h| {
                    Json::object()
                        .field("heuristic", h.heuristic.as_str())
                        .field("p0_detected", h.p0_detected)
                        .field("tests", h.tests)
                        .field("p01_detected", h.p01_detected)
                        .field("seconds", h.seconds)
                })
                .collect();
            Json::object()
                .field("circuit", r.circuit.as_str())
                .field("i0", r.i0)
                .field("p0_total", r.p0_total)
                .field("p01_total", r.p01_total)
                .field("heuristics", heuristics)
        })
        .collect();
    let enrich_json: Vec<Json> = enrich
        .iter()
        .map(|r| {
            Json::object()
                .field("circuit", r.circuit.as_str())
                .field("i0", r.i0)
                .field("p0_total", r.p0_total)
                .field("p0_detected", r.p0_detected)
                .field("p01_total", r.p01_total)
                .field("p01_detected", r.p01_detected)
                .field("tests", r.tests)
                .field("seconds", r.seconds)
                .field("basic_seconds", r.basic_seconds)
        })
        .collect();
    let dump = Json::object()
        .field("workload", workload_json)
        .field("basic", basic_json)
        .field("enrich", enrich_json);
    std::fs::write(path, dump.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeuristicResult, Workload};

    fn fake_basic() -> BasicCircuitResult {
        BasicCircuitResult {
            circuit: "b03".into(),
            i0: 17,
            p0_total: 1072,
            p01_total: 1273,
            heuristics: ["uncomp", "arbit", "length", "values"]
                .iter()
                .map(|h| HeuristicResult {
                    heuristic: (*h).to_owned(),
                    p0_detected: 1000,
                    tests: 100,
                    p01_detected: 1200,
                    seconds: 1.0,
                })
                .collect(),
        }
    }

    fn fake_enrich() -> EnrichCircuitResult {
        EnrichCircuitResult {
            circuit: "b03".into(),
            i0: 17,
            p0_total: 1072,
            p0_detected: 1060,
            p01_total: 1273,
            p01_detected: 1250,
            tests: 98,
            seconds: 2.0,
            basic_seconds: 1.0,
        }
    }

    #[test]
    fn tables_render_with_paper_references() {
        let basic = [fake_basic()];
        let enrich = [fake_enrich()];
        let t3 = render_table3(&basic);
        assert!(t3.contains("b03"));
        assert!(t3.contains("(869)"), "{t3}");
        let t4 = render_table4(&basic);
        assert!(t4.contains("(299)"), "{t4}");
        let t5 = render_table5(&basic);
        assert!(t5.contains("(1450)"), "{t5}");
        let t6 = render_table6(&enrich);
        assert!(t6.contains("(1178)"), "{t6}");
        let t7 = render_table7(&enrich);
        assert!(t7.contains("2.00 (1.13)"), "{t7}");
    }

    #[test]
    fn unknown_circuit_renders_dashes() {
        let mut b = fake_basic();
        b.circuit = "mystery".into();
        let t3 = render_table3(&[b]);
        assert!(t3.contains("(—)"));
    }

    #[test]
    fn experiments_md_contains_all_sections() {
        let md = render_experiments_md(
            &Workload::default(),
            &[fake_basic()],
            &[fake_enrich()],
            "T1\n",
            "T2\n",
        );
        for section in [
            "## Table 1",
            "## Table 2",
            "## Tables 3 & 4",
            "## Table 5",
            "## Table 6",
            "## Table 7",
            "## Figures",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
    }
}
