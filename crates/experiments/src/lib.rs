//! Reproduction harness for every table and figure of the DATE 2002
//! test-enrichment paper.
//!
//! Each binary of this crate regenerates one artifact of the paper's
//! evaluation and prints measured values side by side with the paper's:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | the `s27` enumeration walkthrough (`N_P = 20`) |
//! | `table2` | `L_i` / `N_p(L_i)` cumulative length table |
//! | `table3` | `P_0` faults detected per compaction heuristic |
//! | `table4` | number of tests per compaction heuristic |
//! | `table5` | accidental `P_0 ∪ P_1` coverage of the basic test sets |
//! | `table6` | enrichment results (11 circuits) |
//! | `table7` | run-time ratio enrichment / basic |
//! | `figure1` | the `s27` circuit of Fig. 1 (paper numbering + DOT) |
//! | `figure2` | the distance bound `len(p) = delay(p) + d(g)` of Fig. 2 |
//! | `all_tables` | everything above, plus an `EXPERIMENTS.md` report |
//!
//! The workload parameters default to the paper's (`N_P = 10000`,
//! `N_P0 = 1000`) and can be overridden through environment variables for
//! quick runs: `PDF_NP`, `PDF_NP0`, `PDF_SEED`, `PDF_ATTEMPTS`, and
//! `PDF_CIRCUITS` (comma-separated allow-list).
//!
//! Benchmark circuits are deterministic synthetic stand-ins (see
//! [`pdf_netlist::stand_in_profile`] and `DESIGN.md`); `s27` is the exact
//! circuit of the paper's Figure 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod paper;
pub mod report;

use std::sync::Arc;
use std::time::Instant;

use pdf_analyze::{lint_circuit, static_learning_from_env, LintMode};
use pdf_atpg::{
    AtpgConfig, BasicAtpg, BudgetSpec, Compaction, EnrichmentAtpg, RunBudget, SimBackend,
    SimOptions, TargetSplit,
};
use pdf_faults::{FaultList, LearnedImplications, Sensitization};
use pdf_netlist::Circuit;
use pdf_paths::PathEnumerator;

/// Workload parameters shared by all experiments.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The enumeration cap `N_P`, in faults (paper: 10000).
    pub n_p: usize,
    /// The `P_0` sizing threshold `N_P0` (paper: 1000).
    pub n_p0: usize,
    /// Master seed for all randomized decisions.
    pub seed: u64,
    /// Justification completion blocks per call (paper: 1 attempt).
    pub attempts: u32,
    /// Cone-topology LRU capacity of the justifier (0 = no caching).
    pub cone_cache: usize,
    /// Optional wall-clock budget per generation run (`PDF_TIME_BUDGET`).
    /// A budgeted run that exhausts its deadline still reports its partial
    /// results, flagged on stderr.
    pub time_budget: Option<BudgetSpec>,
    /// Run static implication learning before fault-list construction and
    /// thread the learned closure table through elimination and test
    /// generation (`PDF_STATIC_LEARNING`). Off by default: a disabled
    /// table leaves every experiment byte-identical.
    pub static_learning: bool,
    /// Classify path sensitizability before fault-list construction and
    /// pre-eliminate the provably false paths (`PDF_SENSITIZE`). Off by
    /// default: with the pass disabled every experiment is
    /// byte-identical to earlier releases.
    pub sensitize: bool,
    /// Programmatic simulation options. `None` (the default, and what
    /// [`Workload::from_env`] always produces) defers to the
    /// `PDF_SIM_BACKEND`/`PDF_SIM_WIDTH`/`PDF_SIM_EVENTS` environment at
    /// run time, exactly as before this field existed; `Some` pins the
    /// options for this workload, letting harnesses (the `pdf-matrix`
    /// cross-config sweeps) drive many configurations concurrently
    /// without touching process-global state.
    pub sim: Option<SimOptions>,
}

impl Default for Workload {
    fn default() -> Workload {
        Workload {
            n_p: 10_000,
            n_p0: 1_000,
            seed: 2002,
            attempts: 1,
            cone_cache: pdf_atpg::DEFAULT_CONE_CACHE,
            time_budget: None,
            static_learning: false,
            sensitize: false,
            sim: None,
        }
    }
}

impl Workload {
    /// The defaults, overridden by `PDF_NP`, `PDF_NP0`, `PDF_SEED`,
    /// `PDF_ATTEMPTS`, `PDF_CONE_CACHE` and `PDF_TIME_BUDGET` when set.
    ///
    /// # Panics
    ///
    /// Panics when one of those variables is set to an unparsable value —
    /// `PDF_NP=10k` must abort the run, not silently fall back to the
    /// paper's default.
    #[must_use]
    pub fn from_env() -> Workload {
        let d = Workload::default();
        Workload {
            n_p: env_parse("PDF_NP").unwrap_or(d.n_p),
            n_p0: env_parse("PDF_NP0").unwrap_or(d.n_p0),
            seed: env_parse("PDF_SEED").unwrap_or(d.seed),
            attempts: env_parse("PDF_ATTEMPTS").unwrap_or(d.attempts),
            cone_cache: env_parse("PDF_CONE_CACHE").unwrap_or(d.cone_cache),
            time_budget: BudgetSpec::from_env().unwrap_or_else(|e| panic!("{e}")),
            static_learning: static_learning_from_env(),
            sensitize: pdf_analyze::sensitize_from_env(),
            sim: None,
        }
    }

    /// The simulation options this workload runs with: the pinned
    /// [`Workload::sim`] block when set, otherwise the environment-driven
    /// [`sim_options`] (which panics on unparsable `PDF_SIM_*` values).
    #[must_use]
    pub fn sim_resolved(&self) -> SimOptions {
        self.sim.unwrap_or_else(sim_options)
    }

    /// A fresh [`RunBudget`] for one generation run: the workload's time
    /// budget (generate-phase entry or global) anchored at the call
    /// instant, or an unlimited budget when none is configured.
    #[must_use]
    pub fn run_budget(&self) -> RunBudget {
        match &self.time_budget {
            Some(spec) => {
                let now = Instant::now();
                RunBudget::with_deadline(spec.deadline_for("generate", now, now))
            }
            None => RunBudget::unlimited(),
        }
    }
}

/// Reads and parses the environment variable `name`: `None` when unset.
///
/// # Panics
///
/// Panics (naming the variable and the offending value) when the variable
/// is present but does not parse — every `PDF_*` knob fails fast instead
/// of silently running with a default.
#[must_use]
pub fn env_parse<T>(name: &str) -> Option<T>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(raw) => match raw.parse() {
            Ok(v) => Some(v),
            Err(e) => panic!("invalid {name}=`{raw}`: {e}"),
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("invalid {name}={raw:?}: not valid unicode")
        }
    }
}

/// The simulation backend every experiment driver uses: the default
/// packed engine, overridable via the `PDF_SIM_BACKEND` environment
/// variable (`scalar` re-runs a table on the reference oracle).
///
/// # Panics
///
/// Panics when `PDF_SIM_BACKEND` is set to an unrecognized backend name —
/// `scaler` must not masquerade as a packed run.
#[must_use]
pub fn sim_backend() -> SimBackend {
    SimBackend::from_env().unwrap_or_else(|e| panic!("PDF_SIM_BACKEND: {e}"))
}

/// The full simulation option block every experiment driver uses —
/// `PDF_SIM_BACKEND`, `PDF_SIM_WIDTH` and `PDF_SIM_EVENTS` over the
/// defaults (packed, auto-detected width, events on). Results are
/// identical across every combination; the knobs trade throughput only.
///
/// # Panics
///
/// Panics when any of the three variables is set to an unrecognized
/// value, naming the variable — the strict `PDF_*` parsing contract.
#[must_use]
pub fn sim_options() -> SimOptions {
    SimOptions::from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// Applies the `PDF_CIRCUITS` allow-list to a circuit name list. Each
/// allow-list entry that matches nothing in `names` draws a warning on
/// stderr (misspelling a circuit must not silently shrink a table).
///
/// # Panics
///
/// Panics when `PDF_CIRCUITS` is set but selects none of `names` — an
/// experiment over zero circuits is never what the user meant.
#[must_use]
pub fn filter_circuits(names: &[&'static str]) -> Vec<&'static str> {
    match std::env::var("PDF_CIRCUITS") {
        Ok(list) => {
            let allowed: Vec<&str> = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            for a in &allowed {
                if !names.contains(a) {
                    eprintln!(
                        "warning: PDF_CIRCUITS entry `{a}` matches none of the available \
                         circuits {names:?}"
                    );
                }
            }
            let kept: Vec<&'static str> = names
                .iter()
                .copied()
                .filter(|n| allowed.contains(n))
                .collect();
            assert!(
                !kept.is_empty(),
                "PDF_CIRCUITS=`{list}` selects none of the available circuits {names:?}"
            );
            kept
        }
        Err(std::env::VarError::NotPresent) => names.to_vec(),
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("invalid PDF_CIRCUITS={raw:?}: not valid unicode")
        }
    }
}

/// Resolves a circuit name: `s27` (exact) or a benchmark stand-in.
#[must_use]
pub fn circuit_by_name(name: &str) -> Option<Circuit> {
    if name == "s27" {
        return Some(pdf_netlist::iscas::s27());
    }
    let netlist = pdf_netlist::stand_in_profile(name)?.generate();
    Some(netlist.to_circuit().expect("stand-ins are combinational"))
}

/// A circuit prepared for test generation: enumerated, filtered, split.
#[derive(Debug)]
pub struct Prepared {
    /// Circuit name.
    pub name: String,
    /// The line-level circuit.
    pub circuit: Circuit,
    /// The detectable fault population `P`.
    pub faults: FaultList,
    /// The `P_0` / `P_1` split.
    pub split: TargetSplit,
    /// The learned implication closure table, when the workload enables
    /// static learning. Threaded into every [`AtpgConfig`] built from
    /// this preparation.
    pub learned: Option<Arc<LearnedImplications>>,
}

/// Enumerates the longest-path faults of `name`, eliminates undetectable
/// ones, and splits the survivors per the paper's `N_P0` rule. With
/// [`Workload::static_learning`] set, a learned closure table sharpens
/// the elimination and is retained for the generation configs. With
/// [`Workload::sensitize`] set, the sensitizability classifier runs first
/// and provably false paths are pre-eliminated through the filter hook.
#[must_use]
pub fn prepare(name: &str, workload: &Workload) -> Option<Prepared> {
    let circuit = circuit_by_name(name)?;
    let learned = workload
        .static_learning
        .then(|| Arc::new(pdf_analyze::learn_implications(&circuit)));
    let enumeration = PathEnumerator::new(&circuit)
        .with_cap(workload.n_p)
        .enumerate();
    let analysis = workload.sensitize.then(|| {
        pdf_analyze::classify_store(
            &circuit,
            &enumeration.store,
            Sensitization::Robust,
            learned.as_deref(),
        )
    });
    let (faults, stats) = match &analysis {
        Some(a) => FaultList::build_with_filter(
            &circuit,
            &enumeration.store,
            Sensitization::Robust,
            learned.as_deref(),
            Some(&|index, polarity| a.is_false(index, polarity)),
        ),
        None => FaultList::build_with_learned(
            &circuit,
            &enumeration.store,
            Sensitization::Robust,
            learned.as_deref(),
        ),
    };
    if let Some(table) = &learned {
        eprintln!(
            "{name}: static learning: {} implications, {} faults eliminated",
            table.len(),
            stats.statically_eliminated
        );
    }
    if let Some(a) = &analysis {
        let counts = a.class_counts();
        eprintln!(
            "{name}: sensitizability: {} paths ({} false, {} robust, {} unknown); \
             {} faults pre-eliminated",
            counts.total(),
            counts.false_paths,
            counts.robust,
            counts.unknown,
            stats.sensitize_eliminated
        );
    }
    let split = TargetSplit::by_cumulative_length(&faults, workload.n_p0);
    Some(Prepared {
        name: name.to_owned(),
        circuit,
        faults,
        split,
        learned,
    })
}

/// Lints every named circuit before an experiment spends any enumeration
/// or justification budget. Honors `PDF_LINT`: `deny` (default) prints
/// the diagnostics and exits with status 3 on any error, `warn` prints
/// and continues, `off` skips the pass entirely.
pub fn preflight_lint(names: &[&str]) {
    let mode = LintMode::from_env();
    if mode == LintMode::Off {
        return;
    }
    let mut errors = 0usize;
    for &name in names {
        let Some(circuit) = circuit_by_name(name) else {
            continue;
        };
        let report = lint_circuit(&circuit);
        for d in report.iter() {
            eprintln!("{d}");
        }
        errors += report.error_count();
    }
    if errors > 0 && mode == LintMode::Deny {
        eprintln!(
            "lint: {errors} error(s); aborting before any budget is spent \
             (set PDF_LINT=warn or PDF_LINT=off to override)"
        );
        std::process::exit(3);
    }
}

/// Flags a budget-truncated run on stderr: the tables still include its
/// partial numbers, but a reader must know they are a floor, not a
/// measurement.
fn note_budget_exhaustion(circuit: &str, label: &str, outcome: &pdf_atpg::AtpgOutcome) {
    if outcome.budget_exhausted() {
        eprintln!(
            "warning: {circuit}/{label}: time budget exhausted after {} tests — \
             reported coverage is partial",
            outcome.tests().len()
        );
    }
}

/// Measured results of the basic procedure under one heuristic.
#[derive(Clone, Debug)]
pub struct HeuristicResult {
    /// Heuristic label (`uncomp`/`arbit`/`length`/`values`).
    pub heuristic: String,
    /// Faults of `P_0` detected (Table 3).
    pub p0_detected: usize,
    /// Number of tests (Table 4).
    pub tests: usize,
    /// Faults of `P_0 ∪ P_1` detected accidentally (Table 5).
    pub p01_detected: usize,
    /// Wall-clock seconds of the generation run.
    pub seconds: f64,
}

/// Measured results of the basic procedure on one circuit (Tables 3–5).
#[derive(Clone, Debug)]
pub struct BasicCircuitResult {
    /// Circuit name.
    pub circuit: String,
    /// Measured cutoff index `i0`.
    pub i0: usize,
    /// `|P_0|`.
    pub p0_total: usize,
    /// `|P_0 ∪ P_1|`.
    pub p01_total: usize,
    /// One entry per heuristic, in `Compaction::ALL` order.
    pub heuristics: Vec<HeuristicResult>,
}

/// Runs the basic procedure on `name` under all four heuristics.
#[must_use]
pub fn run_basic(name: &str, workload: &Workload) -> Option<BasicCircuitResult> {
    let prepared = prepare(name, workload)?;
    Some(run_basic_on(&prepared, workload))
}

/// Like [`run_basic`], on an already-prepared circuit (lets callers share
/// the enumeration and fault-list construction across experiments).
#[must_use]
pub fn run_basic_on(prepared: &Prepared, workload: &Workload) -> BasicCircuitResult {
    let all_faults: FaultList = prepared
        .split
        .p0()
        .iter()
        .chain(prepared.split.p1().iter())
        .cloned()
        .collect();
    let sim = workload.sim_resolved();
    let mut heuristics = Vec::new();
    for compaction in Compaction::ALL {
        let config = AtpgConfig {
            seed: workload.seed,
            compaction,
            justify_attempts: workload.attempts,
            secondary_mode: Default::default(),
            sim,
            cone_cache: workload.cone_cache,
            budget: workload.run_budget(),
            learned: prepared.learned.clone(),
            ..AtpgConfig::default()
        };
        let start = Instant::now();
        let outcome = BasicAtpg::new(&prepared.circuit)
            .with_config(config)
            .run(prepared.split.p0());
        let seconds = start.elapsed().as_secs_f64();
        note_budget_exhaustion(&prepared.name, compaction.label(), &outcome);
        let accidental = outcome
            .tests()
            .coverage_with(sim, &prepared.circuit, &all_faults)
            .detected_count();
        heuristics.push(HeuristicResult {
            heuristic: compaction.label().to_owned(),
            p0_detected: outcome.detected_in_set(0),
            tests: outcome.tests().len(),
            p01_detected: accidental,
            seconds,
        });
    }
    BasicCircuitResult {
        circuit: prepared.name.clone(),
        i0: prepared.split.i0(),
        p0_total: prepared.split.p0().len(),
        p01_total: all_faults.len(),
        heuristics,
    }
}

/// Measured results of the enrichment procedure on one circuit (Table 6),
/// plus the run-time ratio against the value-based basic procedure
/// (Table 7).
#[derive(Clone, Debug)]
pub struct EnrichCircuitResult {
    /// Circuit name.
    pub circuit: String,
    /// Measured cutoff index `i0`.
    pub i0: usize,
    /// `|P_0|`.
    pub p0_total: usize,
    /// Faults of `P_0` detected.
    pub p0_detected: usize,
    /// `|P_0 ∪ P_1|`.
    pub p01_total: usize,
    /// Faults of `P_0 ∪ P_1` detected.
    pub p01_detected: usize,
    /// Number of tests.
    pub tests: usize,
    /// Wall-clock seconds of the enrichment run.
    pub seconds: f64,
    /// Wall-clock seconds of the value-based basic run on the same split.
    pub basic_seconds: f64,
}

impl EnrichCircuitResult {
    /// `RT_enrich / RT_basic` (Table 7).
    #[must_use]
    pub fn runtime_ratio(&self) -> f64 {
        if self.basic_seconds > 0.0 {
            self.seconds / self.basic_seconds
        } else {
            f64::NAN
        }
    }
}

/// Runs the enrichment procedure (and the value-based basic run it is
/// compared against) on `name`.
#[must_use]
pub fn run_enrich(name: &str, workload: &Workload) -> Option<EnrichCircuitResult> {
    let prepared = prepare(name, workload)?;
    Some(run_enrich_on(&prepared, workload))
}

/// Like [`run_enrich`], on an already-prepared circuit.
#[must_use]
pub fn run_enrich_on(prepared: &Prepared, workload: &Workload) -> EnrichCircuitResult {
    let config = AtpgConfig {
        seed: workload.seed,
        compaction: Compaction::ValueBased,
        justify_attempts: workload.attempts,
        secondary_mode: Default::default(),
        sim: workload.sim_resolved(),
        cone_cache: workload.cone_cache,
        budget: workload.run_budget(),
        learned: prepared.learned.clone(),
        ..AtpgConfig::default()
    };

    let start = Instant::now();
    let basic = BasicAtpg::new(&prepared.circuit)
        .with_config(config.clone())
        .run(prepared.split.p0());
    let basic_seconds = start.elapsed().as_secs_f64();
    note_budget_exhaustion(&prepared.name, "basic", &basic);
    drop(basic);

    let start = Instant::now();
    // The enrichment run gets its own deadline anchor: Table 7 compares
    // the two runs' wall clocks, so both must start with a full budget.
    let config = AtpgConfig {
        budget: workload.run_budget(),
        ..config
    };
    let outcome = EnrichmentAtpg::new(&prepared.circuit)
        .with_config(config)
        .run(&prepared.split);
    let seconds = start.elapsed().as_secs_f64();
    note_budget_exhaustion(&prepared.name, "enrich", &outcome);

    EnrichCircuitResult {
        circuit: prepared.name.clone(),
        i0: prepared.split.i0(),
        p0_total: prepared.split.p0().len(),
        p0_detected: outcome.detected_in_set(0),
        p01_total: prepared.split.total(),
        p01_detected: outcome.detected_total(),
        tests: outcome.tests().len(),
        seconds,
        basic_seconds,
    }
}

/// Renders the Table 1 reproduction: the `s27` walkthrough with
/// `N_P = 20` at path granularity, showing the snapshots corresponding to
/// the paper's Set 1 and Set 2 and the final store.
#[must_use]
pub fn table1_text() -> String {
    use std::fmt::Write as _;

    let circuit = pdf_netlist::iscas::s27();
    let mut snapshots: Vec<Vec<pdf_paths::SnapshotPath>> = Vec::new();
    let result = PathEnumerator::new(&circuit)
        .with_cap(20)
        .with_units_per_path(1)
        .with_strategy(pdf_paths::Strategy::Moderate)
        .enumerate_observed(|e| {
            let pdf_paths::EnumEvent::CapReached { snapshot } = e;
            snapshots.push(snapshot.clone());
        });

    let mut s = String::new();
    let _ = writeln!(s, "Table 1: paths of s27 (N_P = 20, path granularity)");
    for (label, idx) in [
        ("Set 1 (paper Table 1(a))", 0usize),
        ("Set 2 (paper Table 1(b))", 3),
    ] {
        let Some(snapshot) = snapshots.get(idx) else {
            continue;
        };
        let _ = writeln!(s, "-- {label}: {} paths", snapshot.len());
        for p in snapshot {
            let _ = writeln!(s, "   {}{}", p.path, if p.complete { "c" } else { "p" });
        }
    }
    let _ = writeln!(
        s,
        "-- final store: {} complete paths, lengths {}..={}",
        result.store.len(),
        result.store.min_delay().unwrap_or(0),
        result.store.max_delay().unwrap_or(0),
    );
    for e in result.store.iter() {
        let _ = writeln!(s, "   {} (length {})", e.path, e.delay);
    }
    s
}

/// Renders the Table 2 reproduction: the 20 highest length classes of the
/// (stand-in) `s1423` with their cumulative fault counts, next to the
/// paper's values.
#[must_use]
pub fn table2_text(workload: &Workload) -> String {
    use std::fmt::Write as _;

    let mut s = String::new();
    let _ = writeln!(s, "Table 2: numbers of faults in s1423 (stand-in)");
    let Some(prepared) = prepare("s1423", workload) else {
        return s;
    };
    let histogram = pdf_paths::LengthHistogram::from_lengths(prepared.faults.delays());
    let _ = writeln!(
        s,
        "{:>4} {:>10} {:>12} | {:>8} {:>12}",
        "i", "L_i", "N_p(L_i)", "paper L_i", "paper N_p"
    );
    for i in 0..20 {
        let (li, np) = histogram
            .classes()
            .get(i)
            .map_or((0, 0), |c| (c.length, c.cumulative));
        let (pi, pl, pn) = paper::S1423_LENGTHS[i];
        debug_assert_eq!(pi, i);
        let _ = writeln!(s, "{i:>4} {li:>10} {np:>12} | {pl:>8} {pn:>12}");
    }
    let cut = histogram.cutoff(workload.n_p0);
    let _ = writeln!(
        s,
        "first i0 with N_p >= {}: {} (paper: 17)",
        workload.n_p0,
        cut.map_or("—".to_owned(), |i| i.to_string()),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_env_defaults() {
        let w = Workload::default();
        assert_eq!(w.n_p, 10_000);
        assert_eq!(w.n_p0, 1_000);
    }

    #[test]
    fn circuit_resolution() {
        assert!(circuit_by_name("s27").is_some());
        assert!(circuit_by_name("b03").is_some());
        assert!(circuit_by_name("s9234*").is_some());
        assert!(circuit_by_name("c6288").is_none());
    }

    #[test]
    fn prepare_small_workload() {
        let w = Workload {
            n_p: 500,
            n_p0: 100,
            ..Workload::default()
        };
        let p = prepare("b09", &w).unwrap();
        assert!(p.faults.len() <= 500);
        assert!(p.split.p0().len() >= 100 || p.split.p1().is_empty());
    }

    #[test]
    fn basic_and_enrich_small_run() {
        let w = Workload {
            n_p: 300,
            n_p0: 60,
            seed: 7,
            ..Workload::default()
        };
        let basic = run_basic("b09", &w).unwrap();
        assert_eq!(basic.heuristics.len(), 4);
        // Compaction never produces more tests than uncompacted.
        let uncomp = basic.heuristics[0].tests;
        for h in &basic.heuristics[1..] {
            assert!(h.tests <= uncomp, "{}: {} > {uncomp}", h.heuristic, h.tests);
        }
        let enrich = run_enrich("b09", &w).unwrap();
        assert!(enrich.p01_detected >= enrich.p0_detected);
        assert!(enrich.runtime_ratio() > 0.0);
    }
}
