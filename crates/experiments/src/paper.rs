//! The numbers reported in the paper's tables, kept verbatim for
//! side-by-side comparison with measured results.
//!
//! Source: I. Pomeranz and S. M. Reddy, "Test Enrichment for Path Delay
//! Faults Using Multiple Sets of Target Faults", DATE 2002, Tables 2–7.

/// One circuit row of the paper's Tables 3–5 (basic generation).
#[derive(Clone, Copy, Debug)]
pub struct PaperBasicRow {
    /// Circuit name.
    pub circuit: &'static str,
    /// The cutoff index `i0` defining `P_0`.
    pub i0: usize,
    /// `|P_0|`.
    pub p0_faults: usize,
    /// Faults of `P_0` detected per heuristic `[uncomp, arbit, length, values]` (Table 3).
    pub p0_detected: [usize; 4],
    /// Number of tests per heuristic `[uncomp, arbit, length, values]` (Table 4).
    pub tests: [usize; 4],
    /// `|P_0 ∪ P_1|` (Table 5).
    pub p01_faults: usize,
    /// Faults of `P_0 ∪ P_1` detected accidentally per heuristic (Table 5).
    pub p01_detected: [usize; 4],
}

/// The paper's Tables 3–5, one row per circuit.
pub const BASIC_ROWS: [PaperBasicRow; 8] = [
    PaperBasicRow {
        circuit: "s641",
        i0: 57,
        p0_faults: 1057,
        p0_detected: [915, 915, 915, 915],
        tests: [471, 135, 130, 129],
        p01_faults: 2127,
        p01_detected: [1452, 1436, 1417, 1420],
    },
    PaperBasicRow {
        circuit: "s953",
        i0: 15,
        p0_faults: 1236,
        p0_detected: [1231, 1231, 1231, 1231],
        tests: [581, 308, 303, 312],
        p01_faults: 2312,
        p01_detected: [1830, 1759, 1781, 1778],
    },
    PaperBasicRow {
        circuit: "s1196",
        i0: 13,
        p0_faults: 1033,
        p0_detected: [572, 572, 572, 572],
        tests: [329, 175, 172, 175],
        p01_faults: 4527,
        p01_detected: [1414, 1338, 1312, 1341],
    },
    PaperBasicRow {
        circuit: "s1423",
        i0: 17,
        p0_faults: 1116,
        p0_detected: [929, 931, 932, 924],
        tests: [495, 332, 335, 324],
        p01_faults: 1314,
        p01_detected: [1013, 1019, 1017, 1007],
    },
    PaperBasicRow {
        circuit: "s1488",
        i0: 10,
        p0_faults: 1184,
        p0_detected: [1148, 1148, 1148, 1148],
        tests: [464, 321, 321, 317],
        p01_faults: 1918,
        p01_detected: [1697, 1641, 1651, 1654],
    },
    PaperBasicRow {
        circuit: "b03",
        i0: 8,
        p0_faults: 1006,
        p0_detected: [869, 869, 869, 869],
        tests: [299, 90, 88, 96],
        p01_faults: 1450,
        p01_detected: [1057, 1038, 1035, 1025],
    },
    PaperBasicRow {
        circuit: "b04",
        i0: 5,
        p0_faults: 1606,
        p0_detected: [458, 456, 461, 456],
        tests: [457, 301, 304, 302],
        p01_faults: 8370,
        p01_detected: [936, 935, 941, 936],
    },
    PaperBasicRow {
        circuit: "b09",
        i0: 1,
        p0_faults: 1432,
        p0_detected: [944, 944, 944, 944],
        tests: [406, 147, 147, 158],
        p01_faults: 2207,
        p01_detected: [1160, 1160, 1160, 1160],
    },
];

/// One circuit row of the paper's Table 6 (enrichment).
#[derive(Clone, Copy, Debug)]
pub struct PaperEnrichRow {
    /// Circuit name (`*` marks the resynthesized versions of ref. \[13\]).
    pub circuit: &'static str,
    /// The cutoff index `i0`.
    pub i0: usize,
    /// `|P_0|`.
    pub p0_total: usize,
    /// Faults of `P_0` detected.
    pub p0_detected: usize,
    /// `|P_0 ∪ P_1|`.
    pub p01_total: usize,
    /// Faults of `P_0 ∪ P_1` detected.
    pub p01_detected: usize,
    /// Number of tests.
    pub tests: usize,
}

/// The paper's Table 6.
pub const ENRICH_ROWS: [PaperEnrichRow; 11] = [
    PaperEnrichRow {
        circuit: "s641",
        i0: 57,
        p0_total: 1057,
        p0_detected: 915,
        p01_total: 2127,
        p01_detected: 1815,
        tests: 127,
    },
    PaperEnrichRow {
        circuit: "s953",
        i0: 15,
        p0_total: 1236,
        p0_detected: 1231,
        p01_total: 2312,
        p01_detected: 2063,
        tests: 315,
    },
    PaperEnrichRow {
        circuit: "s1196",
        i0: 13,
        p0_total: 1033,
        p0_detected: 572,
        p01_total: 4527,
        p01_detected: 1932,
        tests: 174,
    },
    PaperEnrichRow {
        circuit: "s1423",
        i0: 17,
        p0_total: 1116,
        p0_detected: 934,
        p01_total: 1314,
        p01_detected: 1039,
        tests: 332,
    },
    PaperEnrichRow {
        circuit: "s1488",
        i0: 10,
        p0_total: 1184,
        p0_detected: 1148,
        p01_total: 1918,
        p01_detected: 1746,
        tests: 317,
    },
    PaperEnrichRow {
        circuit: "b03",
        i0: 8,
        p0_total: 1006,
        p0_detected: 869,
        p01_total: 1450,
        p01_detected: 1178,
        tests: 95,
    },
    PaperEnrichRow {
        circuit: "b04",
        i0: 5,
        p0_total: 1606,
        p0_detected: 459,
        p01_total: 8370,
        p01_detected: 1485,
        tests: 303,
    },
    PaperEnrichRow {
        circuit: "b09",
        i0: 1,
        p0_total: 1432,
        p0_detected: 944,
        p01_total: 2207,
        p01_detected: 1301,
        tests: 150,
    },
    PaperEnrichRow {
        circuit: "s1423*",
        i0: 24,
        p0_total: 1061,
        p0_detected: 982,
        p01_total: 1593,
        p01_detected: 1227,
        tests: 267,
    },
    PaperEnrichRow {
        circuit: "s5378*",
        i0: 3,
        p0_total: 1028,
        p0_detected: 913,
        p01_total: 8537,
        p01_detected: 5469,
        tests: 441,
    },
    PaperEnrichRow {
        circuit: "s9234*",
        i0: 7,
        p0_total: 1158,
        p0_detected: 1158,
        p01_total: 9344,
        p01_detected: 1465,
        tests: 824,
    },
];

/// The paper's Table 7: run-time ratio `RT_enrich / RT_basic(values)`.
pub const RUNTIME_RATIOS: [(&str, f64); 8] = [
    ("s641", 1.10),
    ("s953", 1.56),
    ("s1196", 2.51),
    ("s1423", 0.94),
    ("s1488", 1.22),
    ("b03", 1.13),
    ("b04", 1.13),
    ("b09", 1.60),
];

/// The paper's Table 2: `(i, L_i, N_p(L_i))` for `s1423`.
pub const S1423_LENGTHS: [(usize, u32, usize); 20] = [
    (0, 96, 4),
    (1, 95, 12),
    (2, 94, 22),
    (3, 93, 36),
    (4, 92, 54),
    (5, 91, 84),
    (6, 90, 118),
    (7, 89, 160),
    (8, 88, 208),
    (9, 87, 256),
    (10, 86, 314),
    (11, 85, 378),
    (12, 84, 458),
    (13, 83, 556),
    (14, 82, 668),
    (15, 81, 799),
    (16, 80, 934),
    (17, 79, 1116),
    (18, 78, 1314),
    (19, 77, 1538),
];

/// Looks up the paper's basic-generation row for a circuit.
#[must_use]
pub fn basic_row(circuit: &str) -> Option<&'static PaperBasicRow> {
    BASIC_ROWS.iter().find(|r| r.circuit == circuit)
}

/// Looks up the paper's enrichment row for a circuit.
#[must_use]
pub fn enrich_row(circuit: &str) -> Option<&'static PaperEnrichRow> {
    ENRICH_ROWS.iter().find(|r| r.circuit == circuit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // Table 6's first eight rows describe the same circuits and P0
        // populations as Tables 3-5.
        for row in &BASIC_ROWS {
            let e = enrich_row(row.circuit).unwrap();
            assert_eq!(e.i0, row.i0);
            assert_eq!(e.p0_total, row.p0_faults);
            assert_eq!(e.p01_total, row.p01_faults);
        }
    }

    #[test]
    fn table2_is_cumulative_and_decreasing() {
        for w in S1423_LENGTHS.windows(2) {
            assert_eq!(w[0].1, w[1].1 + 1);
            assert!(w[0].2 < w[1].2);
        }
    }

    #[test]
    fn enrichment_dominates_accidental_detection_in_the_paper() {
        // The paper's core claim, as data: enrichment detects at least as
        // many P0∪P1 faults as the best basic heuristic on every circuit.
        for row in &BASIC_ROWS {
            let e = enrich_row(row.circuit).unwrap();
            let best_accidental = row.p01_detected.iter().copied().max().unwrap();
            assert!(e.p01_detected >= best_accidental.min(e.p01_detected));
            // And strictly more than the compacted heuristics.
            assert!(e.p01_detected > row.p01_detected[3]);
        }
    }
}
