//! Demonstrates the paper's Figure 2: the distance bound
//! `len(p) = delay(p) + d(g)` on any completion of a partial path.

use pdf_netlist::{iscas::s27, LineId};
use pdf_paths::{Path, PathEnumerator};

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    pdf_experiments::preflight_lint(&["s27"]);
    let c = s27();
    let line = |k: usize| LineId::new(k - 1);
    // The partial path p = (1,8,13) of the paper's walkthrough.
    let p: Path = [1usize, 8, 13].iter().map(|&k| line(k)).collect();
    println!("Figure 2: the distance bound len(p) = delay(p) + d(g)");
    println!();
    println!("partial path p = {p}, delay(p) = {}", p.delay(&c));
    println!(
        "last line g = {}, distance to outputs d(g) = {}",
        p.last(),
        c.distance_to_output(p.last())
    );
    println!("bound len(p) = {}", p.max_extension_delay(&c));
    println!();
    // Enumerate every completion and show that the bound is tight.
    let all = PathEnumerator::new(&c).with_cap(1_000_000).enumerate();
    let mut completions: Vec<(u32, String)> = all
        .store
        .iter()
        .filter(|e| e.path.lines().starts_with(p.lines()))
        .map(|e| (e.delay, e.path.to_string()))
        .collect();
    completions.sort();
    println!("completions of p:");
    for (delay, path) in &completions {
        println!("  length {delay:>2}  {path}");
    }
    let max = completions.iter().map(|(d, _)| *d).max().unwrap_or(0);
    println!();
    println!(
        "max completion length = {max} — the bound is {}",
        if max == p.max_extension_delay(&c) {
            "tight"
        } else {
            "NOT tight (bug!)"
        }
    );
}
