//! Regenerates the paper's Table 5 (basic generation, Tables 3-5 share runs).

use pdf_experiments::{filter_circuits, report, run_basic, Workload};

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let workload = Workload::from_env();
    let names = filter_circuits(&pdf_netlist::TABLE3_CIRCUITS);
    pdf_experiments::preflight_lint(&names);
    let mut rows = Vec::new();
    for name in names {
        eprintln!("running {name}...");
        rows.extend(run_basic(name, &workload));
    }
    print!("{}", report::render_table5(&rows));
}
