//! Regenerates the paper's Table 6: the enrichment procedure.

use pdf_experiments::{filter_circuits, report, run_enrich, Workload};

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let workload = Workload::from_env();
    let names = filter_circuits(&pdf_netlist::TABLE6_CIRCUITS);
    pdf_experiments::preflight_lint(&names);
    let mut rows = Vec::new();
    for name in names {
        eprintln!("running {name}...");
        rows.extend(run_enrich(name, &workload));
    }
    print!("{}", report::render_table6(&rows));
}
