//! Regenerates the paper's Table 1: the `s27` enumeration walkthrough.

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    pdf_experiments::preflight_lint(&["s27"]);
    print!("{}", pdf_experiments::table1_text());
    println!();
    println!(
        "Note: Set 1 matches the paper exactly; Set 2 matches 20 of 21 \
         entries — the paper lists (5,21,24)c, a complete length-3 path \
         that its own minimal-length removal rule would have removed at \
         the preceding cap event. The final store holds the paper's 18 \
         paths of lengths 7..=10 plus one length-6 survivor."
    );
}
