//! Extension experiment: the k-set generalization the paper mentions
//! ("it is possible to partition P into a larger number of subsets").
//! Compares k = 1 (basic), k = 2 (the paper), and k = 3/4 partitions on
//! one circuit: tests, coverage per set, run time.

use std::time::Instant;

use pdf_atpg::{BasicAtpg, EnrichmentAtpg, TargetSplit};
use pdf_experiments::Workload;
use pdf_paths::LengthHistogram;

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let name = std::env::args().nth(1).unwrap_or_else(|| "b09".to_owned());
    let workload = Workload::from_env();
    pdf_experiments::preflight_lint(&[name.as_str()]);
    let Some(prepared) = pdf_experiments::prepare(&name, &workload) else {
        eprintln!("unknown circuit `{name}`");
        std::process::exit(1);
    };
    println!(
        "{name}: {} detectable faults; P0 threshold {}",
        prepared.faults.len(),
        workload.n_p0,
    );

    // Build thresholds: the paper's split point, then midpoints below it.
    let histogram = LengthHistogram::from_lengths(prepared.faults.delays());
    let Some(i0) = histogram.cutoff(workload.n_p0) else {
        eprintln!("population smaller than N_P0; nothing to split");
        return;
    };
    let cut0 = histogram.length_at(i0).unwrap();
    let bottom = histogram.classes().last().unwrap().length;
    let span = cut0.saturating_sub(bottom);
    println!(
        "{:<6} {:>7} {:>9} {:>14} {:>16} {:>9}",
        "k", "tests", "P0 det", "all detected", "sets (sizes)", "seconds"
    );

    // k = 1: the basic procedure, P0 only.
    let start = Instant::now();
    let basic = BasicAtpg::new(&prepared.circuit)
        .with_seed(workload.seed)
        .run(prepared.split.p0());
    println!(
        "{:<6} {:>7} {:>9} {:>14} {:>16} {:>9.2}",
        "k=1",
        basic.tests().len(),
        basic.detected_in_set(0),
        basic.detected_in_set(0),
        format!("[{}]", prepared.split.p0().len()),
        start.elapsed().as_secs_f64(),
    );

    for k in 2..=4usize {
        // k-1 thresholds: cut0, then evenly spaced below.
        let mut thresholds = vec![cut0];
        for j in 1..k - 1 {
            let t = cut0
                .saturating_sub(span * j as u32 / (k as u32 - 1))
                .max(bottom + 1);
            if t < *thresholds.last().unwrap() {
                thresholds.push(t);
            }
        }
        let split = TargetSplit::by_thresholds(&prepared.faults, &thresholds);
        let sizes: Vec<String> = split.sets().iter().map(|s| s.len().to_string()).collect();
        let start = Instant::now();
        let outcome = EnrichmentAtpg::new(&prepared.circuit)
            .with_seed(workload.seed)
            .run(&split);
        println!(
            "{:<6} {:>7} {:>9} {:>14} {:>16} {:>9.2}",
            format!("k={k}"),
            outcome.tests().len(),
            outcome.detected_in_set(0),
            outcome.detected_total(),
            format!("[{}]", sizes.join(",")),
            start.elapsed().as_secs_f64(),
        );
    }
    println!(
        "\nExpected shape: the test count is pinned by set 0 in every row; \n\
         total detection grows with k at modest extra run time."
    );
}
