//! Regenerates the paper's Table 2: cumulative length classes of `s1423`.

use pdf_experiments::Workload;

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let workload = Workload::from_env();
    pdf_experiments::preflight_lint(&["s1423"]);
    print!("{}", pdf_experiments::table2_text(&workload));
}
