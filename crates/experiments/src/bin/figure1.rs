//! Prints the paper's Figure 1: the combinational logic of s27 with the
//! paper's line numbering, plus a Graphviz rendering.

use pdf_netlist::{iscas::s27, LineKind};

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    pdf_experiments::preflight_lint(&["s27"]);
    let c = s27();
    println!("Figure 1: ISCAS-89 benchmark circuit s27 (combinational core)");
    println!("line  signal      kind      fanin (paper numbering)");
    for (id, line) in c.iter() {
        let kind = match line.kind() {
            LineKind::Input => "input".to_owned(),
            LineKind::Gate(g) => g.to_string().to_lowercase(),
            LineKind::Branch { .. } => "branch".to_owned(),
        };
        let fanin: Vec<String> = line.fanin().iter().map(|f| f.to_string()).collect();
        let out = if line.is_output() { "  [output]" } else { "" };
        println!(
            "{:>4}  {:<10}  {:<8}  ({}){out}",
            id.to_string(),
            line.name(),
            kind,
            fanin.join(","),
        );
    }
    println!();
    println!("Graphviz (pipe into `dot -Tsvg`):\n");
    print!("{}", pdf_netlist::to_dot(&c));
}
