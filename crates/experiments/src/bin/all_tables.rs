//! Runs the complete reproduction: every table, side by side with the
//! paper, plus a JSON dump and (with `PDF_WRITE_MD=<path>`) the
//! `EXPERIMENTS.md` report.

use pdf_experiments::{filter_circuits, prepare, report, run_basic_on, run_enrich_on, Workload};

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let workload = Workload::from_env();
    eprintln!("workload: {workload:?}");

    let table1 = pdf_experiments::table1_text();
    println!("{table1}");
    let table2 = pdf_experiments::table2_text(&workload);
    println!("{table2}");

    // Prepare each circuit once (enumeration + fault-list construction is
    // shared between the basic and enrichment experiments). Filter the
    // Table 6 superset only: a selection of enrichment-only circuits
    // (e.g. `s9234*`) legitimately leaves the Table 3 subset empty, so
    // intersect manually instead of filtering TABLE3_CIRCUITS again.
    let selected = filter_circuits(&pdf_netlist::TABLE6_CIRCUITS);
    pdf_experiments::preflight_lint(&selected);
    let basic_names: Vec<&str> = pdf_netlist::TABLE3_CIRCUITS
        .iter()
        .copied()
        .filter(|n| selected.contains(n))
        .collect();
    let mut basic = Vec::new();
    let mut enrich = Vec::new();
    for name in selected {
        eprintln!("preparing {name}...");
        let Some(prepared) = prepare(name, &workload) else {
            continue;
        };
        if basic_names.contains(&name) {
            eprintln!("basic: {name}...");
            basic.push(run_basic_on(&prepared, &workload));
        }
        eprintln!("enrich: {name}...");
        enrich.push(run_enrich_on(&prepared, &workload));
    }
    println!("{}", report::render_table3(&basic));
    println!("{}", report::render_table4(&basic));
    println!("{}", report::render_table5(&basic));
    println!("{}", report::render_table6(&enrich));
    println!("{}", report::render_table7(&enrich));

    // Archive the raw numbers.
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("results.json");
        match report::save_json(&path, &workload, &basic, &enrich) {
            Ok(()) => eprintln!("raw results saved to {}", path.display()),
            Err(e) => eprintln!("could not save {}: {e}", path.display()),
        }
    }

    if let Ok(md_path) = std::env::var("PDF_WRITE_MD") {
        let md = report::render_experiments_md(&workload, &basic, &enrich, &table1, &table2);
        match std::fs::write(&md_path, md) {
            Ok(()) => eprintln!("EXPERIMENTS report written to {md_path}"),
            Err(e) => eprintln!("could not write {md_path}: {e}"),
        }
    }
}
