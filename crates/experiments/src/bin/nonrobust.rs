//! Extension experiment: robust vs. non-robust sensitization — how much
//! fault population and coverage does the robustness requirement cost?
//! (The paper restricts itself to robust tests; this quantifies the gap.)

use pdf_experiments::{filter_circuits, Workload};
use pdf_faults::{FaultList, Sensitization};
use pdf_paths::PathEnumerator;

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let workload = Workload::from_env();
    println!(
        "robust vs non-robust fault populations (N_P = {})",
        workload.n_p
    );
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>16}",
        "circuit", "paths", "robust |P|", "nonrobust |P|", "robust share"
    );
    let names = filter_circuits(&pdf_netlist::TABLE3_CIRCUITS);
    pdf_experiments::preflight_lint(&names);
    for name in names {
        let Some(circuit) = pdf_experiments::circuit_by_name(name) else {
            continue;
        };
        let enumeration = PathEnumerator::new(&circuit)
            .with_cap(workload.n_p)
            .enumerate();
        let (robust, _) =
            FaultList::build_with(&circuit, &enumeration.store, Sensitization::Robust);
        let (nonrobust, _) =
            FaultList::build_with(&circuit, &enumeration.store, Sensitization::NonRobust);
        let share = if nonrobust.is_empty() {
            0.0
        } else {
            robust.len() as f64 / nonrobust.len() as f64 * 100.0
        };
        println!(
            "{:<8} {:>10} {:>12} {:>14} {:>15.1}%",
            name,
            enumeration.store.len(),
            robust.len(),
            nonrobust.len(),
            share,
        );
    }
    println!(
        "\nEvery robustly detectable fault is non-robustly detectable, so the\n\
         robust share bounds how much coverage the robustness guarantee costs."
    );
}
