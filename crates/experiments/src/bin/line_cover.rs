//! Extension experiment: the paper's alternative `P_0` criterion — the
//! line-coverage path selection of its reference \[3\] (Li, Reddy & Sahni,
//! TCAD 1989) — compared against the longest-path criterion.

use pdf_atpg::BasicAtpg;
use pdf_experiments::Workload;
use pdf_faults::FaultList;
use pdf_paths::{select_line_cover, PathEnumerator};

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let name = std::env::args().nth(1).unwrap_or_else(|| "b09".to_owned());
    let workload = Workload::from_env();
    pdf_experiments::preflight_lint(&[name.as_str()]);
    let Some(circuit) = pdf_experiments::circuit_by_name(&name) else {
        eprintln!("unknown circuit `{name}`");
        std::process::exit(1);
    };

    // Criterion A: the paper's default — longest paths, capped at N_P.
    let longest = PathEnumerator::new(&circuit)
        .with_cap(workload.n_p)
        .enumerate();
    let (faults_longest, _) = FaultList::build(&circuit, &longest.store);

    // Criterion B: one longest path through every line ([3]).
    let selection = select_line_cover(&circuit);
    let (faults_cover, _) = FaultList::build(&circuit, &selection.store);

    println!("{name}: {} lines", circuit.line_count());
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>8}",
        "criterion", "paths", "faults", "detected", "tests"
    );
    for (label, store_len, faults) in [
        ("longest paths (N_P)", longest.store.len(), &faults_longest),
        ("line cover [3]", selection.store.len(), &faults_cover),
    ] {
        let outcome = BasicAtpg::new(&circuit)
            .with_seed(workload.seed)
            .run(faults);
        println!(
            "{label:<22} {:>8} {:>10} {:>10} {:>8}",
            store_len,
            faults.len(),
            outcome.detected_total(),
            outcome.tests().len(),
        );
    }
    println!(
        "\nThe line-cover criterion guarantees every line is exercised by a \n\
         longest path through it, with far fewer paths; the longest-path \n\
         criterion concentrates on the critical region. The paper's \n\
         enrichment applies on top of either (both produce a P0)."
    );
}
