//! Ablation: the paper's regenerate-per-secondary scheme vs. the classic
//! Goel–Rosales freeze-values scheme (the paper's reference \[8\]).
//!
//! The paper's Sec. 2.2 argues that regenerating the test after every
//! added secondary target detects more faults per test, "since we are not
//! restricted by values specified under t in order to detect faults that
//! were added to P(t) earlier". This experiment measures that claim.

use pdf_atpg::{AtpgConfig, BasicAtpg, Compaction, SecondaryMode};
use pdf_experiments::{filter_circuits, Workload};

fn main() {
    let _telemetry = pdf_telemetry::Guard::from_env();
    let workload = Workload::from_env();
    println!("secondary-target handling: regenerate (paper) vs freeze-values ([8])");
    println!(
        "{:<8} {:>12} {:>10} {:>9} {:>12} {:>10} {:>9}",
        "circuit", "mode", "detected", "tests", "sec.accepts", "det/test", "seconds"
    );
    let names = filter_circuits(&pdf_netlist::TABLE3_CIRCUITS);
    pdf_experiments::preflight_lint(&names);
    for name in names {
        let Some(prepared) = pdf_experiments::prepare(name, &workload) else {
            continue;
        };
        for mode in [SecondaryMode::Regenerate, SecondaryMode::FreezeValues] {
            let config = AtpgConfig {
                seed: workload.seed,
                compaction: Compaction::ValueBased,
                justify_attempts: workload.attempts,
                secondary_mode: mode,
                sim: pdf_experiments::sim_options(),
                cone_cache: workload.cone_cache,
                budget: workload.run_budget(),
                learned: prepared.learned.clone(),
                ..AtpgConfig::default()
            };
            let start = std::time::Instant::now();
            let outcome = BasicAtpg::new(&prepared.circuit)
                .with_config(config)
                .run(prepared.split.p0());
            let seconds = start.elapsed().as_secs_f64();
            let per_test = if outcome.tests().is_empty() {
                0.0
            } else {
                outcome.detected_total() as f64 / outcome.tests().len() as f64
            };
            println!(
                "{:<8} {:>12} {:>10} {:>9} {:>12} {:>10.2} {:>9.2}",
                name,
                mode.label(),
                outcome.detected_total(),
                outcome.tests().len(),
                outcome.stats().secondary_accepts,
                per_test,
                seconds,
            );
        }
    }
    println!(
        "\nExpected shape (paper Sec. 2.2): regeneration accepts more \
         secondaries per test,\nyielding fewer tests for the same detection."
    );
}
