//! Sensitization conditions: computing `A(p)` for a path delay fault.
//!
//! To detect a path delay fault robustly, a two-pattern test must (paper
//! Sec. 2.1):
//!
//! * launch the fault's transition at the path's source
//!   (`0x1` for slow-to-rise, `1x0` for slow-to-fall), and
//! * hold every *off-path* input of every gate along the path at the value
//!   the classical robust propagation rules demand:
//!
//!   | on-path transition at the gate | off-path requirement |
//!   |--------------------------------|----------------------|
//!   | towards the controlling value  | stable non-controlling (`000`/`111`) |
//!   | away from the controlling value| non-controlling under the second pattern only (`xx0`/`xx1`) |
//!
//! The resulting necessary assignment set `A(p)` is *necessary and
//! sufficient*: any fully specified two-pattern test whose simulated
//! waveforms satisfy `A(p)` detects the fault robustly.
//!
//! The weaker *non-robust* conditions (off-path inputs only need the
//! non-controlling value under the second pattern, regardless of
//! transition direction) are also provided; they are the paper's "future
//! work" comparison axis.

use core::fmt;

use pdf_logic::{GateKind, Triple, Value};
use pdf_netlist::{Circuit, LineId, LineKind};

use crate::{Assignments, PathDelayFault, Polarity};

/// Which sensitization criterion to apply when building `A(p)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Sensitization {
    /// Robust propagation: detection is independent of delays elsewhere in
    /// the circuit. The paper considers only robust tests.
    #[default]
    Robust,
    /// Non-robust propagation: off-path inputs are only constrained under
    /// the second pattern; detection may be invalidated by other delays.
    NonRobust,
}

/// Error produced while computing sensitization conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConditionError {
    /// The path is not structurally valid in this circuit.
    InvalidPath(pdf_paths::PathError),
    /// The path runs through a gate without a controlling value
    /// (`XOR`/`XNOR`); decompose parity gates before path analysis.
    ParityGate {
        /// The offending gate line.
        line: LineId,
    },
    /// The fault is trivially undetectable: its own conditions conflict
    /// (paper Sec. 3.1, elimination rule 1 — e.g. two branches of one stem
    /// demand opposite stable values).
    Conflict {
        /// The line on which the conflict arose (stem lines for branch
        /// back-projection conflicts).
        line: LineId,
    },
}

impl fmt::Display for ConditionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConditionError::InvalidPath(e) => write!(f, "invalid path: {e}"),
            ConditionError::ParityGate { line } => {
                write!(f, "path crosses parity gate at line {line}")
            }
            ConditionError::Conflict { line } => {
                write!(
                    f,
                    "conditions conflict on line {line}; fault is undetectable"
                )
            }
        }
    }
}

impl std::error::Error for ConditionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConditionError::InvalidPath(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdf_paths::PathError> for ConditionError {
    fn from(e: pdf_paths::PathError) -> Self {
        ConditionError::InvalidPath(e)
    }
}

/// Computes the necessary assignment set `A(p)` of a fault.
///
/// The returned [`Assignments`] constrain the path's source and every
/// off-path input. Requirements on fanout *branches* are additionally
/// back-projected onto their stems (a branch carries its stem's waveform),
/// which lets rule-1 conflicts between sibling branches surface here.
///
/// # Errors
///
/// See [`ConditionError`].
///
/// # Example: the paper's `s27` example fault
///
/// ```
/// use pdf_faults::{robust_assignments, PathDelayFault, Polarity};
/// use pdf_netlist::{iscas::s27, LineId};
/// use pdf_paths::Path;
///
/// let circuit = s27();
/// let line = |k: usize| LineId::new(k - 1);
/// let path: Path = [2usize, 9, 10, 15].iter().map(|&k| line(k)).collect();
/// let fault = PathDelayFault::new(path, Polarity::SlowToRise);
/// let a = robust_assignments(&circuit, &fault)?;
/// // "A(p) consists of the off-path values 000 on line 7 and xx0 on
/// //  line 3, and of the source value 0x1 on line 2."
/// assert_eq!(a.get(line(7)), Some("000".parse().unwrap()));
/// assert_eq!(a.get(line(3)), Some("xx0".parse().unwrap()));
/// assert_eq!(a.get(line(2)), Some("0x1".parse().unwrap()));
/// # Ok::<(), pdf_faults::ConditionError>(())
/// ```
pub fn robust_assignments(
    circuit: &Circuit,
    fault: &PathDelayFault,
) -> Result<Assignments, ConditionError> {
    assignments(circuit, fault, Sensitization::Robust)
}

/// Computes `A(p)` under the chosen sensitization criterion. See
/// [`robust_assignments`].
///
/// # Errors
///
/// See [`ConditionError`].
pub fn assignments(
    circuit: &Circuit,
    fault: &PathDelayFault,
    kind: Sensitization,
) -> Result<Assignments, ConditionError> {
    fault.path().validate(circuit)?;
    let mut a = Assignments::new();
    let require = |a: &mut Assignments, line: LineId, req: Triple| {
        a.require(line, req)
            .map_err(|c| ConditionError::Conflict { line: c.line })
    };
    // Back-project a requirement through a branch onto its stem so that
    // sibling-branch conflicts are caught (rule 1).
    let require_projected = |a: &mut Assignments, circuit: &Circuit, line: LineId, req: Triple| {
        require(a, line, req)?;
        if let LineKind::Branch { stem } = circuit.line(line).kind() {
            require(a, *stem, req)?;
        }
        Ok(())
    };

    let lines = fault.path().lines();
    // Launch transition at the source.
    let mut transition = match fault.polarity() {
        Polarity::SlowToRise => Triple::RISING,
        Polarity::SlowToFall => Triple::FALLING,
    };
    require_projected(&mut a, circuit, lines[0], transition)?;

    for w in lines.windows(2) {
        let on_path = w[0];
        let through = w[1];
        let line = circuit.line(through);
        match line.kind() {
            LineKind::Input => unreachable!("inputs have no fanin"),
            LineKind::Branch { .. } => {
                // Branches are transparent: the waveform passes unchanged.
            }
            LineKind::Gate(gate) => {
                transition = propagate_through(
                    circuit,
                    &mut a,
                    *gate,
                    through,
                    on_path,
                    transition,
                    kind,
                    &require_projected,
                )?;
            }
        }
    }
    Ok(a)
}

#[allow(clippy::too_many_arguments)]
fn propagate_through<F>(
    circuit: &Circuit,
    a: &mut Assignments,
    gate: GateKind,
    gate_line: LineId,
    on_path: LineId,
    transition: Triple,
    kind: Sensitization,
    require_projected: &F,
) -> Result<Triple, ConditionError>
where
    F: Fn(&mut Assignments, &Circuit, LineId, Triple) -> Result<(), ConditionError>,
{
    let out_transition = if gate.inverts() {
        transition.negate()
    } else {
        transition
    };
    if gate.is_single_input() {
        return Ok(out_transition);
    }
    let Some(controlling) = gate.controlling_value() else {
        return Err(ConditionError::ParityGate { line: gate_line });
    };
    let noncontrolling = !controlling;
    // Requirement on each off-path input.
    let toward_controlling = transition.last() == controlling;
    let off_req = match (kind, toward_controlling) {
        // Robust, transition ends on the controlling value: the off-path
        // inputs must hold the non-controlling value hazard-free.
        (Sensitization::Robust, true) => match noncontrolling {
            Value::Zero => Triple::STABLE0,
            Value::One => Triple::STABLE1,
            Value::X => unreachable!("controlling values are specified"),
        },
        // Robust, transition ends on the non-controlling value — or any
        // non-robust case: the off-path inputs only need the
        // non-controlling value under the second pattern.
        (Sensitization::Robust, false) | (Sensitization::NonRobust, _) => {
            Triple::new(Value::X, Value::X, noncontrolling)
        }
    };
    for &input in circuit.line(gate_line).fanin() {
        if input != on_path {
            require_projected(a, circuit, input, off_req)?;
        }
    }
    Ok(out_transition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::s27;
    use pdf_netlist::CircuitBuilder;
    use pdf_paths::Path;

    fn line(k: usize) -> LineId {
        LineId::new(k - 1)
    }

    fn s27_path(ids: &[usize]) -> Path {
        ids.iter().map(|&k| line(k)).collect()
    }

    fn t(s: &str) -> Triple {
        s.parse().unwrap()
    }

    #[test]
    fn paper_example_slow_to_rise() {
        let c = s27();
        let f = PathDelayFault::new(s27_path(&[2, 9, 10, 15]), Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        assert_eq!(a.get(line(2)), Some(t("0x1")));
        assert_eq!(a.get(line(7)), Some(t("000")));
        assert_eq!(a.get(line(3)), Some(t("xx0")));
        // Source and two off-path inputs; the stem back-projection of
        // branch 10's requirement does not apply (3 and 7 are inputs, the
        // on-path branch 10 itself carries no off-path requirement).
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn paper_example_opposite_polarity() {
        let c = s27();
        let f = PathDelayFault::new(s27_path(&[2, 9, 10, 15]), Polarity::SlowToFall);
        let a = robust_assignments(&c, &f).unwrap();
        // Falling at 2 (nc -> away from controlling 1 of NOR): off-path 7
        // needs xx0 only; at gate 15 the on-path input 10 rises (toward
        // controlling 1 of NOR), so off-path 3 needs stable 000.
        assert_eq!(a.get(line(2)), Some(t("1x0")));
        assert_eq!(a.get(line(7)), Some(t("xx0")));
        assert_eq!(a.get(line(3)), Some(t("000")));
    }

    #[test]
    fn longest_path_conditions() {
        let c = s27();
        // (1,8,13,14,16,19,20,21,22,25): NOT, AND, OR, NAND, NOR, NOR.
        let f = PathDelayFault::new(
            s27_path(&[1, 8, 13, 14, 16, 19, 20, 21, 22, 25]),
            Polarity::SlowToRise,
        );
        let a = robust_assignments(&c, &f).unwrap();
        assert_eq!(a.get(line(1)), Some(t("0x1")));
        // Transitions: 1 rises -> 8 falls (NOT) -> 13, 14 fall (AND: toward
        // controlling 0 => off-path 6 stable 1) -> 16 falls -> 19 falls
        // (OR: toward controlling... 1 is controlling for OR; falling goes
        // AWAY from it => off-path 4 only needs xx0) -> 20 rises (NAND:
        // falling input goes toward controlling 0 => off-path 18 stable 1)
        // -> 21 falls (NOR: rising input toward controlling 1 => off-path
        // 5 stable 0) -> 22 falls -> 25 rises (NOR: falling input away
        // from controlling => off-path 12 needs xx0).
        assert_eq!(a.get(line(6)), Some(t("111")));
        assert_eq!(a.get(line(4)), Some(t("xx0")));
        assert_eq!(a.get(line(18)), Some(t("111")));
        assert_eq!(a.get(line(5)), Some(t("000")));
        assert_eq!(a.get(line(12)), Some(t("xx0")));
        // A(p) constrains only the source and off-path inputs: on-path
        // lines carry no explicit requirement. Off-path line 12 is a
        // branch of stem 8, so its xx0 back-projects onto the stem.
        assert_eq!(a.get(line(8)), Some(t("xx0")));
        assert_eq!(a.get(line(13)), None);
        assert_eq!(a.get(line(14)), None);
    }

    #[test]
    fn branch_requirement_back_projects_to_stem() {
        // A stem s with branches b1 (on a path) ... build: two AND gates
        // sharing a stem; path through g1 has off-path branch of s.
        let mut b = CircuitBuilder::new("proj");
        let x = b.input("x");
        let s = b.input("s");
        let s1 = b.branch("s1", s);
        let s2 = b.branch("s2", s);
        let g1 = b.gate("g1", pdf_logic::GateKind::And, &[x, s1]);
        let g2 = b.gate("g2", pdf_logic::GateKind::Not, &[s2]);
        b.mark_output(g1);
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let path = Path::new(vec![x, g1]);
        // Falling at x heads toward AND's controlling 0, so the off-path
        // branch s1 must hold a hazard-free non-controlling 1.
        let f = PathDelayFault::new(path, Polarity::SlowToFall);
        let a = robust_assignments(&c, &f).unwrap();
        // The requirement back-projects onto the stem s as well.
        assert_eq!(a.get(s1), Some(t("111")));
        assert_eq!(a.get(s), Some(t("111")));
        // The rising fault only needs the final value.
        let path = Path::new(vec![x, g1]);
        let f = PathDelayFault::new(path, Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        assert_eq!(a.get(s1), Some(t("xx1")));
        assert_eq!(a.get(s), Some(t("xx1")));
    }

    #[test]
    fn sibling_branch_conflict_detected_as_rule_1() {
        // Path through two gates fed by opposite-polarity requirements on
        // sibling branches of one stem: g1 = AND(x1, s1) wants s stable 1,
        // g2 = OR(g1, s2) with on-path transition toward controlling
        // wants s stable 0 -> conflict on the stem.
        let mut b = CircuitBuilder::new("conflict");
        let x = b.input("x");
        let s = b.input("s");
        let s1 = b.branch("s1", s);
        let s2 = b.branch("s2", s);
        let g1 = b.gate("g1", pdf_logic::GateKind::And, &[x, s1]);
        let g2 = b.gate("g2", pdf_logic::GateKind::Or, &[g1, s2]);
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let path = Path::new(vec![x, g1, g2]);
        // Rising at x -> rising at g1 (AND, toward nc? rising ends at 1 =
        // nc of AND -> off-path s1 needs xx1... wait, rising ends at 1
        // which is NON-controlling for AND => away from controlling =>
        // s1 needs xx1). Use falling to force stable demands:
        // Falling at x -> g1 falls (toward controlling 0 of AND: s1 stable
        // 1) -> at g2 falling input is away from controlling 1 of OR:
        // s2 needs xx0 only. Compatible. Use SlowToRise instead:
        // rising x -> g1 rises (away from c of AND: s1 xx1) -> rising at
        // g2 toward controlling 1 of OR: s2 stable 000. Stem gets xx1 and
        // 000 -> conflict.
        let f = PathDelayFault::new(path, Polarity::SlowToRise);
        let err = assignments(&c, &f, Sensitization::Robust).unwrap_err();
        assert!(matches!(err, ConditionError::Conflict { .. }));
    }

    #[test]
    fn non_robust_conditions_are_weaker() {
        let c = s27();
        let f = PathDelayFault::new(s27_path(&[2, 9, 10, 15]), Polarity::SlowToRise);
        let robust = assignments(&c, &f, Sensitization::Robust).unwrap();
        let nonrobust = assignments(&c, &f, Sensitization::NonRobust).unwrap();
        // Non-robust only demands final values on off-path inputs.
        assert_eq!(nonrobust.get(line(7)), Some(t("xx0")));
        assert_eq!(nonrobust.get(line(3)), Some(t("xx0")));
        assert!(nonrobust.specified_components() < robust.specified_components());
    }

    #[test]
    fn invalid_path_rejected() {
        let c = s27();
        let f = PathDelayFault::new(s27_path(&[2, 9, 15]), Polarity::SlowToRise);
        assert!(matches!(
            robust_assignments(&c, &f),
            Err(ConditionError::InvalidPath(_))
        ));
    }

    #[test]
    fn parity_gate_reported() {
        let mut b = CircuitBuilder::new("xor");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate("g", pdf_logic::GateKind::Xor, &[x, y]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        let f = PathDelayFault::new(Path::new(vec![x, g]), Polarity::SlowToRise);
        assert!(matches!(
            robust_assignments(&c, &f),
            Err(ConditionError::ParityGate { .. })
        ));
    }
}
