//! Three-valued implication over two-pattern waveforms.
//!
//! Given a set of line requirements, the [`Implicator`] derives every value
//! they force elsewhere in the circuit — forwards through gate evaluation,
//! backwards through controlling-value reasoning, and across fanout
//! branches in both directions. A contradiction proves the requirements
//! unsatisfiable; this is the paper's rule 2 for eliminating undetectable
//! faults from `P` ("we find the implications of the values in `A(p)`; if
//! the implication process assigns conflicting values to a line `g`, `p`
//! is undetectable").
//!
//! The three components of a waveform triple propagate almost
//! independently (gate evaluation is component-wise); the engine adds two
//! cross-component rules that hold for every waveform reachable from a
//! two-pattern input pair:
//!
//! * a specified intermediate value implies the line is stable:
//!   `α2 = v ⇒ α1 = v ∧ α3 = v`;
//! * a primary input that holds one specified value under both patterns
//!   cannot glitch: `α1 = α3 = v ⇒ α2 = v` (at primary inputs only).

use core::fmt;

use pdf_logic::{GateKind, Triple, Value};
use pdf_netlist::{Circuit, LineId, LineKind};

use crate::learned::Literal;
use crate::{Assignments, LearnedImplications};

/// Error: the implications assigned two different values to one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImplicationConflict {
    /// The line on which the contradiction surfaced.
    pub line: LineId,
}

impl fmt::Display for ImplicationConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "implications conflict on line {}", self.line)
    }
}

impl std::error::Error for ImplicationConflict {}

/// The implication engine.
///
/// # Example
///
/// ```
/// use pdf_faults::Implicator;
/// use pdf_logic::Triple;
/// use pdf_netlist::{CircuitBuilder, LineId};
/// use pdf_logic::GateKind;
///
/// let mut b = CircuitBuilder::new("and2");
/// let x = b.input("x");
/// let y = b.input("y");
/// let g = b.gate("g", GateKind::And, &[x, y]);
/// b.mark_output(g);
/// let circuit = b.finish()?;
///
/// let mut imp = Implicator::new(&circuit);
/// // Demanding a stable 1 at an AND output forces both inputs to 1.
/// imp.assign(g, Triple::STABLE1)?;
/// imp.propagate()?;
/// assert_eq!(imp.value(x), Triple::STABLE1);
/// assert_eq!(imp.value(y), Triple::STABLE1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Implicator<'c> {
    circuit: &'c Circuit,
    values: Vec<Triple>,
    queue: std::collections::VecDeque<LineId>,
    queued: Vec<bool>,
    learned: Option<&'c LearnedImplications>,
}

impl<'c> Implicator<'c> {
    /// Creates an engine with every line unconstrained.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> Implicator<'c> {
        Implicator {
            circuit,
            values: vec![Triple::UNKNOWN; circuit.line_count()],
            queue: std::collections::VecDeque::new(),
            queued: vec![false; circuit.line_count()],
            learned: None,
        }
    }

    /// Attaches a statically learned closure table: whenever a line's
    /// outer component becomes specified, the table's consequents are
    /// applied as an extra implication rule.
    #[must_use]
    pub fn with_learned(mut self, learned: &'c LearnedImplications) -> Implicator<'c> {
        self.learned = Some(learned);
        self
    }

    /// Creates an engine seeded with a requirement set and runs the
    /// implications.
    ///
    /// # Errors
    ///
    /// Returns [`ImplicationConflict`] if the requirements are
    /// contradictory — i.e. the corresponding fault is undetectable.
    pub fn from_assignments(
        circuit: &'c Circuit,
        assignments: &Assignments,
    ) -> Result<Implicator<'c>, ImplicationConflict> {
        Implicator::from_assignments_with(circuit, assignments, None)
    }

    /// Like [`Implicator::from_assignments`], additionally consulting a
    /// learned closure table when one is supplied.
    ///
    /// # Errors
    ///
    /// Returns [`ImplicationConflict`] if the requirements are
    /// contradictory.
    pub fn from_assignments_with(
        circuit: &'c Circuit,
        assignments: &Assignments,
        learned: Option<&'c LearnedImplications>,
    ) -> Result<Implicator<'c>, ImplicationConflict> {
        let mut imp = Implicator::new(circuit);
        imp.learned = learned;
        for (line, req) in assignments.iter() {
            imp.assign(line, req)?;
        }
        imp.propagate()?;
        Ok(imp)
    }

    /// The current value of a line (`x` components where nothing is
    /// implied yet).
    #[inline]
    #[must_use]
    pub fn value(&self, line: LineId) -> Triple {
        self.values[line.index()]
    }

    /// All line values, indexed by [`LineId::index`].
    #[inline]
    #[must_use]
    pub fn values(&self) -> &[Triple] {
        &self.values
    }

    /// Constrains `line` to `req` (intersected with its current value) and
    /// queues the affected neighbourhood. Call [`Implicator::propagate`]
    /// to reach the fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ImplicationConflict`] if `req` contradicts the line's
    /// current value.
    pub fn assign(&mut self, line: LineId, req: Triple) -> Result<(), ImplicationConflict> {
        let current = self.values[line.index()];
        let Some(merged) = current.intersect(req) else {
            return Err(ImplicationConflict { line });
        };
        if merged != current {
            self.values[line.index()] = merged;
            self.touch(line);
        }
        Ok(())
    }

    fn touch(&mut self, line: LineId) {
        // The line's own node (for backward rules and the stability rule),
        // plus every sink node (forward rules).
        self.enqueue(line);
        for &f in self.circuit.line(line).fanout() {
            self.enqueue(f);
        }
        for &f in self.circuit.line(line).fanin() {
            self.enqueue(f);
        }
    }

    fn enqueue(&mut self, line: LineId) {
        if !self.queued[line.index()] {
            self.queued[line.index()] = true;
            self.queue.push_back(line);
        }
    }

    /// Runs implications to the fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ImplicationConflict`] on contradiction; the engine state
    /// is then partially updated and should be discarded.
    pub fn propagate(&mut self) -> Result<(), ImplicationConflict> {
        while let Some(line) = self.queue.pop_front() {
            self.queued[line.index()] = false;
            self.process(line)?;
        }
        Ok(())
    }

    /// Applies all rules centred on `line`.
    fn process(&mut self, line: LineId) -> Result<(), ImplicationConflict> {
        self.stability_rules(line)?;
        self.learned_rules(line)?;
        match self.circuit.line(line).kind() {
            LineKind::Input => Ok(()),
            LineKind::Branch { stem } => {
                // Identity in both directions.
                let stem = *stem;
                let merged = self.values[line.index()]
                    .intersect(self.values[stem.index()])
                    .ok_or(ImplicationConflict { line })?;
                self.update(line, merged)?;
                self.update(stem, merged)
            }
            LineKind::Gate(kind) => {
                let kind = *kind;
                self.forward(line, kind)?;
                self.backward(line, kind)
            }
        }
    }

    /// `α2 = v ⇒ α1 = α3 = v` everywhere; `α1 = α3 = v ⇒ α2 = v` at
    /// primary inputs.
    fn stability_rules(&mut self, line: LineId) -> Result<(), ImplicationConflict> {
        let v = self.values[line.index()];
        if v.mid().is_specified() {
            let stable = Triple::new(v.mid(), v.mid(), v.mid());
            let merged = v.intersect(stable).ok_or(ImplicationConflict { line })?;
            self.update(line, merged)?;
        }
        if self.circuit.line(line).kind().is_input() {
            let v = self.values[line.index()];
            if v.first().is_specified() && v.first() == v.last() {
                let stable = Triple::new(v.first(), v.first(), v.first());
                self.update(line, stable)?;
            }
        }
        Ok(())
    }

    /// Learned-table rule: a specified outer component fires the closure
    /// table's consequents for that literal. Runs inside the ordinary
    /// fixpoint — `update_component` re-enqueues any line it changes, so
    /// chains of learned implications resolve without extra bookkeeping.
    fn learned_rules(&mut self, line: LineId) -> Result<(), ImplicationConflict> {
        let Some(table) = self.learned else {
            return Ok(());
        };
        for slot in [0usize, 2] {
            let v = component(self.values[line.index()], slot);
            if !v.is_specified() {
                continue;
            }
            for cons in table.consequents(Literal::new(line, slot, v)) {
                self.update_component(cons.line, cons.slot, cons.value)?;
            }
        }
        Ok(())
    }

    fn update(&mut self, line: LineId, new: Triple) -> Result<(), ImplicationConflict> {
        let current = self.values[line.index()];
        let merged = current.intersect(new).ok_or(ImplicationConflict { line })?;
        if merged != current {
            self.values[line.index()] = merged;
            self.touch(line);
        }
        Ok(())
    }

    /// Forward rule: a gate output is at least as specified as the
    /// component-wise evaluation of its inputs.
    fn forward(&mut self, line: LineId, kind: GateKind) -> Result<(), ImplicationConflict> {
        let out = kind.eval_triples(
            self.circuit
                .line(line)
                .fanin()
                .iter()
                .map(|f| self.values[f.index()]),
        );
        self.update(line, out)
    }

    /// Backward rules from a gate's output onto its inputs, per component.
    fn backward(&mut self, line: LineId, kind: GateKind) -> Result<(), ImplicationConflict> {
        let fanin: Vec<LineId> = self.circuit.line(line).fanin().to_vec();
        let out = self.values[line.index()];

        for slot in 0..3 {
            let w = component(out, slot);
            if !w.is_specified() {
                continue;
            }
            // Undo the gate's inversion to get the pre-inversion value.
            let w = if kind.inverts() { !w } else { w };
            match kind {
                GateKind::Not | GateKind::Buf => {
                    self.update_component(fanin[0], slot, w)?;
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let c = kind.controlling_value().expect("unate gate");
                    let nc = !c;
                    if w == nc {
                        // Non-controlled result: every input is nc.
                        for &f in &fanin {
                            self.update_component(f, slot, nc)?;
                        }
                    } else {
                        // Controlled result: if all inputs but one are nc,
                        // the remaining one must be c.
                        let mut candidate = None;
                        let mut undecided = 0usize;
                        for &f in &fanin {
                            let v = component(self.values[f.index()], slot);
                            if v != nc {
                                undecided += 1;
                                candidate = Some(f);
                            }
                        }
                        match (undecided, candidate) {
                            (0, _) => return Err(ImplicationConflict { line }),
                            (1, Some(f)) => self.update_component(f, slot, c)?,
                            _ => {}
                        }
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // If all inputs but one are specified, the last is the
                    // parity completion.
                    let mut acc = w;
                    let mut candidate = None;
                    let mut unknown = 0usize;
                    for &f in &fanin {
                        let v = component(self.values[f.index()], slot);
                        if v.is_specified() {
                            acc = acc ^ v;
                        } else {
                            unknown += 1;
                            candidate = Some(f);
                        }
                    }
                    if unknown == 1 {
                        self.update_component(candidate.expect("counted"), slot, acc)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn update_component(
        &mut self,
        line: LineId,
        slot: usize,
        value: Value,
    ) -> Result<(), ImplicationConflict> {
        let v = self.values[line.index()];
        let mut parts = [v.first(), v.mid(), v.last()];
        match parts[slot].intersect(value) {
            Some(merged) => {
                parts[slot] = merged;
                self.update(line, Triple::new(parts[0], parts[1], parts[2]))
            }
            None => Err(ImplicationConflict { line }),
        }
    }
}

fn component(t: Triple, slot: usize) -> Value {
    match slot {
        0 => t.first(),
        1 => t.mid(),
        _ => t.last(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_logic::GateKind;
    use pdf_netlist::CircuitBuilder;

    fn t(s: &str) -> Triple {
        s.parse().unwrap()
    }

    /// z = NAND(x, y)
    fn nand2() -> (Circuit, LineId, LineId, LineId) {
        let mut b = CircuitBuilder::new("nand2");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.gate("z", GateKind::Nand, &[x, y]);
        b.mark_output(z);
        (b.finish().unwrap(), x, y, z)
    }

    #[test]
    fn forward_implication() {
        let (c, x, y, z) = nand2();
        let mut imp = Implicator::new(&c);
        imp.assign(x, Triple::STABLE0).unwrap();
        imp.propagate().unwrap();
        assert_eq!(imp.value(z), Triple::STABLE1);
        assert_eq!(imp.value(y), Triple::UNKNOWN);
    }

    #[test]
    fn backward_all_noncontrolling() {
        let (c, x, y, z) = nand2();
        let mut imp = Implicator::new(&c);
        // NAND out 0 => both inputs 1.
        imp.assign(z, Triple::STABLE0).unwrap();
        imp.propagate().unwrap();
        assert_eq!(imp.value(x), Triple::STABLE1);
        assert_eq!(imp.value(y), Triple::STABLE1);
    }

    #[test]
    fn backward_last_candidate() {
        let (c, x, y, z) = nand2();
        let mut imp = Implicator::new(&c);
        // NAND out 1 with x known 1 => y must be 0.
        imp.assign(z, Triple::STABLE1).unwrap();
        imp.assign(x, Triple::STABLE1).unwrap();
        imp.propagate().unwrap();
        assert_eq!(imp.value(y), Triple::STABLE0);
    }

    #[test]
    fn conflict_detected() {
        let (c, x, y, z) = nand2();
        let mut imp = Implicator::new(&c);
        imp.assign(x, Triple::STABLE0).unwrap();
        // x = 0 forces z = 1; demanding z = 0 must fail during propagation.
        imp.assign(z, Triple::STABLE0).unwrap();
        let _ = imp.assign(y, Triple::STABLE1);
        assert!(imp.propagate().is_err());
    }

    #[test]
    fn branch_identity_both_directions() {
        let mut b = CircuitBuilder::new("branches");
        let x = b.input("x");
        let s = b.input("s");
        let s1 = b.branch("s1", s);
        let s2 = b.branch("s2", s);
        let g1 = b.gate("g1", GateKind::And, &[x, s1]);
        let g2 = b.gate("g2", GateKind::Not, &[s2]);
        b.mark_output(g1);
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let mut imp = Implicator::new(&c);
        imp.assign(s1, Triple::STABLE1).unwrap();
        imp.propagate().unwrap();
        // Branch -> stem -> sibling branch -> inverter output.
        assert_eq!(imp.value(s), Triple::STABLE1);
        assert_eq!(imp.value(s2), Triple::STABLE1);
        assert_eq!(imp.value(g2), Triple::STABLE0);
    }

    #[test]
    fn stability_rule_expands_mid_values() {
        let (c, x, _y, _z) = nand2();
        let mut imp = Implicator::new(&c);
        imp.assign(x, t("xx0")).unwrap();
        imp.propagate().unwrap();
        assert_eq!(imp.value(x), t("xx0"));
        let mut imp = Implicator::new(&c);
        imp.assign(x, t("x0x")).unwrap();
        imp.propagate().unwrap();
        // mid 0 implies stable 0.
        assert_eq!(imp.value(x), Triple::STABLE0);
    }

    #[test]
    fn half_specified_input_implies_nothing_extra() {
        let (c, x, _y, z) = nand2();
        let mut imp = Implicator::new(&c);
        imp.assign(x, t("0xx")).unwrap();
        imp.propagate().unwrap();
        // Only the first pattern is pinned: no stability can be inferred,
        // and the NAND output is only known under the first pattern.
        assert_eq!(imp.value(x), t("0xx"));
        assert_eq!(imp.value(z), t("1xx"));
    }

    #[test]
    fn input_stability_rule() {
        let (c, x, _y, z) = nand2();
        let mut imp = Implicator::new(&c);
        // x constrained to 0 under both patterns: a primary input cannot
        // glitch, so the intermediate value is 0 too, and z is stable 1.
        imp.assign(x, t("0x0")).unwrap();
        imp.propagate().unwrap();
        assert_eq!(imp.value(x), Triple::STABLE0);
        assert_eq!(imp.value(z), Triple::STABLE1);
    }

    #[test]
    fn from_assignments_detects_undetectable() {
        // g = AND(a, b); h = OR(g, b2) with b fanning out to both.
        // Requiring b stable 1 (for g) and b final 0 (for h) conflicts.
        let mut bld = CircuitBuilder::new("u");
        let a = bld.input("a");
        let b = bld.input("b");
        let b1 = bld.branch("b1", b);
        let b2 = bld.branch("b2", b);
        let g = bld.gate("g", GateKind::And, &[a, b1]);
        let h = bld.gate("h", GateKind::Or, &[g, b2]);
        bld.mark_output(h);
        let c = bld.finish().unwrap();

        let mut req = Assignments::new();
        req.require(b1, Triple::STABLE1).unwrap();
        req.require(b2, t("xx0")).unwrap();
        assert!(Implicator::from_assignments(&c, &req).is_err());
    }

    #[test]
    fn xor_backward_completion() {
        let mut b = CircuitBuilder::new("xor");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.gate("z", GateKind::Xor, &[x, y]);
        b.mark_output(z);
        let c = b.finish().unwrap();
        let mut imp = Implicator::new(&c);
        imp.assign(z, t("1xx")).unwrap();
        imp.assign(x, t("0xx")).unwrap();
        imp.propagate().unwrap();
        assert_eq!(imp.value(y).first(), Value::One);
    }
}
