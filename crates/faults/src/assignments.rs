//! Necessary assignment sets `A(p)`.

use core::fmt;

use pdf_logic::Triple;
use pdf_netlist::LineId;

/// A set of line-value requirements: the `A(p)` of the paper, or the union
/// `∪ A(p_j)` a test under construction must satisfy.
///
/// Each line appears at most once; the requirement is a [`Triple`] whose
/// `x` components are don't-cares. The set is kept sorted by line id, so
/// merging and difference operations are linear.
///
/// # Example
///
/// ```
/// use pdf_faults::Assignments;
/// use pdf_logic::Triple;
/// use pdf_netlist::LineId;
///
/// let mut a = Assignments::new();
/// a.require(LineId::new(6), "000".parse()?)?;
/// a.require(LineId::new(2), "xx0".parse()?)?;
/// assert_eq!(a.len(), 2);
/// // Tightening is fine; contradicting is not.
/// a.require(LineId::new(2), "0x0".parse()?)?;
/// assert!(a.require(LineId::new(2), Triple::STABLE1).is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignments {
    // Sorted by LineId.
    entries: Vec<(LineId, Triple)>,
}

/// Error returned when a requirement contradicts an existing one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequirementConflict {
    /// The line on which the conflict arose.
    pub line: LineId,
    /// The requirement already recorded.
    pub existing: Triple,
    /// The incompatible new requirement.
    pub new: Triple,
}

impl fmt::Display for RequirementConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflicting requirements on line {}: {} vs {}",
            self.line, self.existing, self.new
        )
    }
}

impl std::error::Error for RequirementConflict {}

impl Assignments {
    /// Creates an empty requirement set.
    #[must_use]
    pub fn new() -> Assignments {
        Assignments::default()
    }

    /// Number of constrained lines.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no line is constrained.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The requirement on `line`, if any.
    #[must_use]
    pub fn get(&self, line: LineId) -> Option<Triple> {
        self.entries
            .binary_search_by_key(&line, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Iterates over `(line, requirement)` pairs in line-id order.
    pub fn iter(&self) -> impl Iterator<Item = (LineId, Triple)> + '_ {
        self.entries.iter().copied()
    }

    /// Adds (or tightens) the requirement on `line`.
    ///
    /// # Errors
    ///
    /// Returns [`RequirementConflict`] when the new requirement contradicts
    /// the recorded one (their [`Triple::intersect`] is empty); the set is
    /// left unchanged in that case.
    pub fn require(&mut self, line: LineId, req: Triple) -> Result<(), RequirementConflict> {
        match self.entries.binary_search_by_key(&line, |e| e.0) {
            Ok(i) => {
                let existing = self.entries[i].1;
                match existing.intersect(req) {
                    Some(merged) => {
                        self.entries[i].1 = merged;
                        Ok(())
                    }
                    None => Err(RequirementConflict {
                        line,
                        existing,
                        new: req,
                    }),
                }
            }
            Err(i) => {
                self.entries.insert(i, (line, req));
                Ok(())
            }
        }
    }

    /// Merges another requirement set into this one.
    ///
    /// # Errors
    ///
    /// Returns the first [`RequirementConflict`] encountered. The set may
    /// be partially extended on error; callers that need atomicity should
    /// use [`Assignments::merged`].
    pub fn merge_from(&mut self, other: &Assignments) -> Result<(), RequirementConflict> {
        for (line, req) in other.iter() {
            self.require(line, req)?;
        }
        Ok(())
    }

    /// Returns the merge of two sets, or `None` if they conflict.
    #[must_use]
    pub fn merged(&self, other: &Assignments) -> Option<Assignments> {
        let mut out = self.clone();
        out.merge_from(other).ok().map(|()| out)
    }

    /// `n_Δ`: the number of *specified value components* `other` demands
    /// that this set does not already demand — the quantity minimized by
    /// the paper's value-based secondary-target heuristic. Returns `None`
    /// if the sets conflict (the candidate cannot be added at all).
    #[must_use]
    pub fn delta_count(&self, other: &Assignments) -> Option<usize> {
        let mut count = 0usize;
        for (line, req) in other.iter() {
            match self.get(line) {
                Some(existing) => {
                    existing.intersect(req)?;
                    count += existing.delta_count(req);
                }
                None => count += req.specified_count(),
            }
        }
        Some(count)
    }

    /// Returns `true` if the simulated waveforms *violate* some
    /// requirement: a component that is specified both in the requirement
    /// and in the simulation, with different values. (An unspecified
    /// simulated component is not a violation — it may still be
    /// justified.)
    ///
    /// `sim` is indexed by [`LineId::index`].
    #[must_use]
    pub fn violated_by(&self, sim: &[Triple]) -> bool {
        self.entries
            .iter()
            .any(|&(line, req)| !sim[line.index()].is_compatible(req))
    }

    /// Returns `true` if the simulated waveforms *satisfy* every
    /// requirement: each specified requirement component is matched by an
    /// equal specified simulated component.
    ///
    /// `sim` is indexed by [`LineId::index`].
    #[must_use]
    pub fn satisfied_by(&self, sim: &[Triple]) -> bool {
        self.entries
            .iter()
            .all(|&(line, req)| sim[line.index()].satisfies(req))
    }

    /// Total number of specified components across all requirements.
    #[must_use]
    pub fn specified_components(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.specified_count()).sum()
    }

    /// The constrained lines, in id order.
    pub fn lines(&self) -> impl Iterator<Item = LineId> + '_ {
        self.entries.iter().map(|e| e.0)
    }
}

impl fmt::Display for Assignments {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (line, req)) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{line}:{req}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<(LineId, Triple)> for Assignments {
    /// Collects requirements, intersecting duplicates; a conflicting
    /// duplicate panics (use [`Assignments::require`] for fallible
    /// insertion).
    fn from_iter<T: IntoIterator<Item = (LineId, Triple)>>(iter: T) -> Assignments {
        let mut a = Assignments::new();
        for (line, req) in iter {
            a.require(line, req)
                .expect("conflicting requirements in from_iter");
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Triple {
        s.parse().unwrap()
    }

    fn l(i: usize) -> LineId {
        LineId::new(i)
    }

    #[test]
    fn require_inserts_sorted_and_tightens() {
        let mut a = Assignments::new();
        a.require(l(5), t("xx0")).unwrap();
        a.require(l(1), t("0x1")).unwrap();
        a.require(l(5), t("1xx")).unwrap();
        let items: Vec<_> = a.iter().collect();
        assert_eq!(items, vec![(l(1), t("0x1")), (l(5), t("1x0"))]);
    }

    #[test]
    fn conflicting_requirement_rejected_and_state_unchanged() {
        let mut a = Assignments::new();
        a.require(l(3), t("000")).unwrap();
        let err = a.require(l(3), t("xx1")).unwrap_err();
        assert_eq!(err.line, l(3));
        assert_eq!(a.get(l(3)), Some(t("000")));
    }

    #[test]
    fn merged_is_atomic() {
        let mut a = Assignments::new();
        a.require(l(0), t("000")).unwrap();
        let mut b = Assignments::new();
        b.require(l(1), t("111")).unwrap();
        b.require(l(0), t("xx1")).unwrap(); // conflicts with a
        assert!(a.merged(&b).is_none());
        assert_eq!(a.len(), 1); // untouched

        let mut c = Assignments::new();
        c.require(l(1), t("111")).unwrap();
        let m = a.merged(&c).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn delta_count_counts_new_components() {
        let mut base = Assignments::new();
        base.require(l(0), t("0x1")).unwrap();
        base.require(l(1), t("xx0")).unwrap();

        let mut cand = Assignments::new();
        cand.require(l(0), t("0x1")).unwrap(); // fully covered: 0 new
        cand.require(l(1), t("0x0")).unwrap(); // adds first component: 1
        cand.require(l(2), t("111")).unwrap(); // all new: 3
        assert_eq!(base.delta_count(&cand), Some(4));

        let mut bad = Assignments::new();
        bad.require(l(1), t("xx1")).unwrap();
        assert_eq!(base.delta_count(&bad), None);
    }

    #[test]
    fn violation_vs_satisfaction() {
        let mut a = Assignments::new();
        a.require(l(0), t("000")).unwrap();
        a.require(l(1), t("xx1")).unwrap();

        // Simulation fully satisfying.
        let sim_ok = vec![t("000"), t("0x1")];
        assert!(!a.violated_by(&sim_ok));
        assert!(a.satisfied_by(&sim_ok));

        // Unknown simulation: not violated, not satisfied.
        let sim_unknown = vec![t("xxx"), t("xxx")];
        assert!(!a.violated_by(&sim_unknown));
        assert!(!a.satisfied_by(&sim_unknown));

        // Contradicting simulation: violated.
        let sim_bad = vec![t("001"), t("0x1")];
        assert!(a.violated_by(&sim_bad));
        assert!(!a.satisfied_by(&sim_bad));
    }

    #[test]
    fn specified_components_total() {
        let mut a = Assignments::new();
        a.require(l(0), t("000")).unwrap();
        a.require(l(1), t("xx1")).unwrap();
        assert_eq!(a.specified_components(), 4);
    }

    #[test]
    fn display_is_readable() {
        let mut a = Assignments::new();
        a.require(l(6), t("000")).unwrap();
        a.require(l(2), t("xx0")).unwrap();
        a.require(l(1), t("0x1")).unwrap();
        assert_eq!(a.to_string(), "{2:0x1, 3:xx0, 7:000}");
    }
}
