//! Fault lists: turning an enumerated path store into the target fault
//! population `P`, with undetectable faults eliminated.

use pdf_netlist::Circuit;
use pdf_paths::PathStore;

use crate::{
    assignments as compute_assignments, Assignments, ConditionError, Implicator,
    LearnedImplications, PathDelayFault, Polarity, Sensitization,
};

/// One fault with its precomputed necessary assignments.
#[derive(Clone, Debug)]
pub struct FaultEntry {
    /// The fault.
    pub fault: PathDelayFault,
    /// The delay of the fault's path (cached from enumeration).
    pub delay: u32,
    /// The fault's necessary assignment set `A(p)`.
    pub assignments: Assignments,
}

/// Counters from building a [`FaultList`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultListStats {
    /// Faults considered (2 × paths).
    pub candidates: usize,
    /// Eliminated by rule 1: `A(p)` itself conflicts.
    pub rule1_conflicts: usize,
    /// Eliminated by rule 2: the implications of `A(p)` conflict.
    pub rule2_conflicts: usize,
    /// Eliminated only by the statically learned closure table: rule 2
    /// alone found no conflict, but re-running the implications with the
    /// table attached did. Always 0 unless a table is supplied.
    pub statically_eliminated: usize,
    /// Eliminated up front by the sensitizability pre-filter (a path
    /// statically classified as false), before any per-fault rule ran.
    /// Always 0 unless a filter is supplied.
    pub sensitize_eliminated: usize,
}

/// The target fault population `P`: every fault of the enumerated paths
/// whose necessary assignments are not self-contradictory.
///
/// Entries keep the store's path order (longest first when the store is
/// sorted), with the slow-to-rise fault preceding the slow-to-fall fault
/// of the same path.
///
/// # Example
///
/// ```
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
/// let (faults, stats) = FaultList::build(&circuit, &paths.store);
/// assert_eq!(stats.candidates, 2 * paths.store.len());
/// assert!(faults.len() <= stats.candidates);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultList {
    entries: Vec<FaultEntry>,
}

impl FaultList {
    /// Builds the robust fault list from a path store, eliminating
    /// undetectable faults by both of the paper's rules.
    ///
    /// # Panics
    ///
    /// Panics if a stored path crosses a parity gate — decompose
    /// `XOR`/`XNOR` before path analysis (see
    /// [`Netlist::decompose_parity`](pdf_netlist::Netlist::decompose_parity)).
    #[must_use]
    pub fn build(circuit: &Circuit, store: &PathStore) -> (FaultList, FaultListStats) {
        FaultList::build_with(circuit, store, Sensitization::Robust)
    }

    /// Builds the fault list under the chosen sensitization criterion.
    ///
    /// # Panics
    ///
    /// See [`FaultList::build`].
    #[must_use]
    pub fn build_with(
        circuit: &Circuit,
        store: &PathStore,
        kind: Sensitization,
    ) -> (FaultList, FaultListStats) {
        FaultList::build_with_learned(circuit, store, kind, None)
    }

    /// Builds the fault list, additionally consulting a statically learned
    /// closure table (see [`LearnedImplications`]) to eliminate faults
    /// whose conflicts only surface through learned contrapositives.
    ///
    /// The plain rule-2 check runs first so `rule2_conflicts` stays
    /// comparable with and without learning; only its survivors are
    /// re-checked with the table, and extra drops are counted in
    /// [`FaultListStats::statically_eliminated`].
    ///
    /// # Panics
    ///
    /// See [`FaultList::build`].
    #[must_use]
    pub fn build_with_learned(
        circuit: &Circuit,
        store: &PathStore,
        kind: Sensitization,
        learned: Option<&LearnedImplications>,
    ) -> (FaultList, FaultListStats) {
        FaultList::build_with_filter(circuit, store, kind, learned, None)
    }

    /// Builds the fault list with an up-front sensitizability pre-filter:
    /// `filter(index, polarity)` returning `true` drops the fault of the
    /// path at store `index` with that polarity before any per-fault rule
    /// runs, counted in [`FaultListStats::sensitize_eliminated`].
    ///
    /// The filter must only drop faults that are provably undetectable
    /// (the static sensitizability analysis's *false* verdicts) — the
    /// soundness audit in `pdf-analyze` re-proves every drop by exact
    /// search.
    ///
    /// # Panics
    ///
    /// See [`FaultList::build`].
    #[must_use]
    pub fn build_with_filter(
        circuit: &Circuit,
        store: &PathStore,
        kind: Sensitization,
        learned: Option<&LearnedImplications>,
        filter: Option<&dyn Fn(usize, Polarity) -> bool>,
    ) -> (FaultList, FaultListStats) {
        let _phase = pdf_telemetry::Span::enter("eliminate");
        let mut stats = FaultListStats::default();
        let mut entries = Vec::with_capacity(store.len() * 2);
        for (index, stored) in store.iter().enumerate() {
            for polarity in Polarity::BOTH {
                stats.candidates += 1;
                if filter.is_some_and(|drop| drop(index, polarity)) {
                    stats.sensitize_eliminated += 1;
                    continue;
                }
                let fault = PathDelayFault::new(stored.path.clone(), polarity);
                let assignments = match compute_assignments(circuit, &fault, kind) {
                    Ok(a) => a,
                    Err(ConditionError::Conflict { .. }) => {
                        stats.rule1_conflicts += 1;
                        continue;
                    }
                    Err(e) => panic!("fault {fault}: {e}"),
                };
                // Rule 2: implications of A(p) must be consistent.
                if Implicator::from_assignments(circuit, &assignments).is_err() {
                    stats.rule2_conflicts += 1;
                    continue;
                }
                // Second chance with the learned closure table attached.
                if let Some(table) = learned {
                    if Implicator::from_assignments_with(circuit, &assignments, Some(table))
                        .is_err()
                    {
                        stats.statically_eliminated += 1;
                        continue;
                    }
                }
                entries.push(FaultEntry {
                    fault,
                    delay: stored.delay,
                    assignments,
                });
            }
        }
        pdf_telemetry::count(
            pdf_telemetry::counters::UNDETECTABLE_DROPPED,
            (stats.rule1_conflicts
                + stats.rule2_conflicts
                + stats.statically_eliminated
                + stats.sensitize_eliminated) as u64,
        );
        pdf_telemetry::count(
            pdf_telemetry::counters::STATICALLY_ELIMINATED,
            stats.statically_eliminated as u64,
        );
        pdf_telemetry::count(
            pdf_telemetry::counters::FALSE_PATHS_ELIMINATED,
            stats.sensitize_eliminated as u64,
        );
        (FaultList { entries }, stats)
    }

    /// Number of faults in the list.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the list holds no faults.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The fault entries.
    #[inline]
    #[must_use]
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &FaultEntry> {
        self.entries.iter()
    }

    /// The delays of all faults (one value per fault), for histogram
    /// construction.
    pub fn delays(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|e| e.delay)
    }
}

impl FromIterator<FaultEntry> for FaultList {
    fn from_iter<T: IntoIterator<Item = FaultEntry>>(iter: T) -> FaultList {
        FaultList {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::s27;
    use pdf_paths::PathEnumerator;

    fn s27_faults() -> (FaultList, FaultListStats) {
        let c = s27();
        let paths = PathEnumerator::new(&c).with_cap(10_000).enumerate();
        FaultList::build(&c, &paths.store)
    }

    #[test]
    fn s27_all_paths_produce_candidates() {
        let c = s27();
        let (list, stats) = s27_faults();
        assert_eq!(stats.candidates as u64, 2 * c.path_count());
        assert_eq!(
            list.len() + stats.rule1_conflicts + stats.rule2_conflicts,
            stats.candidates
        );
    }

    #[test]
    fn listed_faults_have_consistent_assignments() {
        let c = s27();
        let (list, _) = s27_faults();
        for e in list.iter() {
            assert!(!e.assignments.is_empty());
            assert!(Implicator::from_assignments(&c, &e.assignments).is_ok());
            assert_eq!(e.delay, e.fault.path().delay(&c));
        }
    }

    #[test]
    fn rise_precedes_fall_per_path() {
        let (list, _) = s27_faults();
        let mut seen = std::collections::HashMap::new();
        for (i, e) in list.iter().enumerate() {
            let key = e.fault.path().to_string();
            match e.fault.polarity() {
                Polarity::SlowToRise => {
                    seen.insert(key, i);
                }
                Polarity::SlowToFall => {
                    if let Some(&ri) = seen.get(&key) {
                        assert!(ri < i);
                    }
                }
            }
        }
    }

    #[test]
    fn nonrobust_list_is_at_least_as_large() {
        let c = s27();
        let paths = PathEnumerator::new(&c).with_cap(10_000).enumerate();
        let (robust, _) = FaultList::build_with(&c, &paths.store, Sensitization::Robust);
        let (nonrobust, _) = FaultList::build_with(&c, &paths.store, Sensitization::NonRobust);
        assert!(nonrobust.len() >= robust.len());
    }

    #[test]
    fn histogram_from_delays() {
        let (list, _) = s27_faults();
        let h = pdf_paths::LengthHistogram::from_lengths(list.delays());
        assert_eq!(h.total(), list.len());
        assert_eq!(h.classes()[0].length, 10);
    }
}
