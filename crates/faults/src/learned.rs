//! Compact closure table of statically learned implications.
//!
//! Classic static learning (SOCRATES-style) asserts every line value once,
//! propagates it, and records the **contrapositives** of whatever followed:
//! if asserting `l = v` forces `m = w`, then any test with `m = ¬w` must
//! have `l = ¬v`. The forward direction is rediscovered by the
//! [`Implicator`](crate::Implicator) on demand; the contrapositive is the
//! direction its backward rules cannot always reproduce, which is exactly
//! what makes the table worth carrying around.
//!
//! Learning is restricted to the **outer components** of a waveform triple
//! (`α1`, the value under the first pattern, and `α3`, the value under the
//! second): in every completed two-pattern test those components settle to
//! a binary value, so "not 0" really means "1". The intermediate component
//! `α2` is genuinely three-valued (`x` means *may glitch*) and admits no
//! such complement — it never enters the table.
//!
//! The table itself is plain data (built once per circuit by the
//! `pdf-analyze` learning pass, consumed here by the implication engine),
//! stored as one adjacency row per `(line, slot, value)` literal.

use pdf_logic::Value;
use pdf_netlist::LineId;

/// One `(line, slot, value)` literal of the closure table.
///
/// `slot` is a component index of a waveform triple and is always `0`
/// (`α1`) or `2` (`α3`); `value` is always specified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The line the literal constrains.
    pub line: LineId,
    /// The triple component: `0` for `α1`, `2` for `α3`.
    pub slot: usize,
    /// The binary value asserted on that component.
    pub value: Value,
}

impl Literal {
    /// Creates a literal. `slot` must be `0` or `2`, `value` specified.
    #[must_use]
    pub fn new(line: LineId, slot: usize, value: Value) -> Literal {
        debug_assert!(slot == 0 || slot == 2, "mid-slot literals are unsound");
        debug_assert!(value.is_specified());
        Literal { line, slot, value }
    }

    /// The literal with the complementary value on the same component.
    #[must_use]
    pub fn negated(self) -> Literal {
        Literal {
            line: self.line,
            slot: self.slot,
            value: !self.value,
        }
    }

    /// Packs the literal into its dense table key.
    fn key(self) -> usize {
        let slot_bit = usize::from(self.slot == 2);
        let value_bit = usize::from(self.value == Value::One);
        self.line.index() * 4 + slot_bit * 2 + value_bit
    }

    /// Unpacks a dense table key.
    fn from_key(key: usize) -> Literal {
        Literal {
            line: LineId::new(key / 4),
            slot: if key & 2 == 0 { 0 } else { 2 },
            value: if key & 1 == 0 {
                Value::Zero
            } else {
                Value::One
            },
        }
    }
}

/// The learned-implication closure table of one circuit.
///
/// Maps each antecedent literal to the consequent literals it forces.
/// Every stored pair `a ⇒ c` is a *sound* implication: any two-pattern
/// test whose waveforms satisfy `a` also satisfies `c`. Rows are sorted
/// and deduplicated, so lookup iteration order is deterministic.
///
/// # Example
///
/// ```
/// use pdf_faults::{LearnedImplications, Literal};
/// use pdf_logic::Value;
/// use pdf_netlist::LineId;
///
/// let mut table = LearnedImplications::new(4);
/// let a = Literal::new(LineId::new(2), 0, Value::Zero);
/// let c = Literal::new(LineId::new(0), 2, Value::One);
/// assert!(table.add(a, c));
/// assert!(!table.add(a, c)); // duplicates are ignored
/// assert_eq!(table.len(), 1);
/// assert_eq!(table.consequents(a).collect::<Vec<_>>(), vec![c]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LearnedImplications {
    /// `rows[key(antecedent)]` holds the packed consequent keys, sorted.
    rows: Vec<Vec<u32>>,
    len: usize,
}

impl LearnedImplications {
    /// An empty table for a circuit with `line_count` lines.
    #[must_use]
    pub fn new(line_count: usize) -> LearnedImplications {
        LearnedImplications {
            rows: vec![Vec::new(); line_count * 4],
            len: 0,
        }
    }

    /// Records `antecedent ⇒ consequent`. Returns `false` (and stores
    /// nothing) when the pair is already present or degenerate
    /// (self-implication on the same line).
    pub fn add(&mut self, antecedent: Literal, consequent: Literal) -> bool {
        if antecedent.line == consequent.line {
            return false;
        }
        let row = &mut self.rows[antecedent.key()];
        let packed = consequent.key() as u32;
        match row.binary_search(&packed) {
            Ok(_) => false,
            Err(i) => {
                row.insert(i, packed);
                self.len += 1;
                true
            }
        }
    }

    /// The consequents forced by `antecedent`, in deterministic order.
    pub fn consequents(&self, antecedent: Literal) -> impl Iterator<Item = Literal> + '_ {
        self.rows
            .get(antecedent.key())
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .map(|&k| Literal::from_key(k as usize))
    }

    /// Iterates over every stored `(antecedent, consequent)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (Literal, Literal)> + '_ {
        self.rows.iter().enumerate().flat_map(|(key, row)| {
            row.iter()
                .map(move |&c| (Literal::from_key(key), Literal::from_key(c as usize)))
        })
    }

    /// Number of stored implications.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing was learned.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of lines the table was sized for.
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.rows.len() / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(line: usize, slot: usize, value: Value) -> Literal {
        Literal::new(LineId::new(line), slot, value)
    }

    #[test]
    fn key_roundtrip() {
        for line in 0..5 {
            for slot in [0usize, 2] {
                for value in [Value::Zero, Value::One] {
                    let l = lit(line, slot, value);
                    assert_eq!(Literal::from_key(l.key()), l);
                }
            }
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut t = LearnedImplications::new(3);
        assert!(t.add(lit(0, 0, Value::One), lit(1, 2, Value::Zero)));
        assert!(t.add(lit(0, 0, Value::One), lit(2, 0, Value::One)));
        assert!(!t.add(lit(0, 0, Value::One), lit(1, 2, Value::Zero)));
        assert_eq!(t.len(), 2);
        let cons: Vec<Literal> = t.consequents(lit(0, 0, Value::One)).collect();
        assert_eq!(cons.len(), 2);
        assert!(t.consequents(lit(0, 0, Value::Zero)).next().is_none());
    }

    #[test]
    fn self_implication_rejected() {
        let mut t = LearnedImplications::new(2);
        assert!(!t.add(lit(1, 0, Value::One), lit(1, 2, Value::One)));
        assert!(t.is_empty());
    }

    #[test]
    fn iter_reports_all_pairs() {
        let mut t = LearnedImplications::new(3);
        t.add(lit(0, 0, Value::One), lit(1, 2, Value::Zero));
        t.add(lit(2, 2, Value::Zero), lit(0, 0, Value::Zero));
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(lit(0, 0, Value::One), lit(1, 2, Value::Zero))));
    }

    #[test]
    fn negation_flips_value_only() {
        let l = lit(4, 2, Value::One);
        let n = l.negated();
        assert_eq!(n.line, l.line);
        assert_eq!(n.slot, 2);
        assert_eq!(n.value, Value::Zero);
    }
}
