//! Path delay fault model, robust sensitization conditions, implications,
//! and undetectability analysis.
//!
//! This crate implements the fault-analysis layer of the test-enrichment
//! reproduction (Pomeranz & Reddy, DATE 2002):
//!
//! * [`PathDelayFault`] — a physical path plus a [`Polarity`];
//! * [`robust_assignments`] — the necessary assignment set `A(p)` a
//!   two-pattern test must satisfy to detect the fault robustly
//!   (off-path robust conditions + source transition, Sec. 2.1);
//! * [`Assignments`] — requirement sets with merging, Δ-counting (for the
//!   value-based compaction heuristic) and satisfaction/violation checks
//!   against simulated waveforms;
//! * [`Implicator`] — three-valued implication over two-pattern waveforms,
//!   used to eliminate undetectable faults (Sec. 3.1, rules 1 and 2) and
//!   by the optional exact justification engine;
//! * [`FaultList`] — the target population `P` built from an enumerated
//!   path store with undetectable faults removed.
//!
//! # Example
//!
//! ```
//! use pdf_faults::{robust_assignments, FaultList, PathDelayFault, Polarity};
//! use pdf_netlist::iscas::s27;
//! use pdf_paths::{Path, PathEnumerator};
//! use pdf_netlist::LineId;
//!
//! let circuit = s27();
//!
//! // The paper's worked example: A(p) of the slow-to-rise fault on
//! // (2,9,10,15) is {2 ↦ 0x1, 7 ↦ 000, 3 ↦ xx0}.
//! let path: Path = [1usize, 8, 9, 14].into_iter().map(LineId::new).collect();
//! let fault = PathDelayFault::new(path, Polarity::SlowToRise);
//! let a = robust_assignments(&circuit, &fault)?;
//! assert_eq!(a.len(), 3);
//!
//! // The full fault population of the longest paths:
//! let paths = PathEnumerator::new(&circuit).enumerate();
//! let (faults, stats) = FaultList::build(&circuit, &paths.store);
//! assert_eq!(stats.candidates, 2 * paths.store.len());
//! # let _ = faults;
//! # Ok::<(), pdf_faults::ConditionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignments;
mod conditions;
mod fault;
mod implication;
mod learned;
mod list;

pub use assignments::{Assignments, RequirementConflict};
pub use conditions::{assignments, robust_assignments, ConditionError, Sensitization};
pub use fault::{PathDelayFault, Polarity};
pub use implication::{ImplicationConflict, Implicator};
pub use learned::{LearnedImplications, Literal};
pub use list::{FaultEntry, FaultList, FaultListStats};

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use crate::{
        robust_assignments, Assignments, FaultList, Implicator, PathDelayFault, Polarity,
        Sensitization,
    };
}
