//! The path delay fault model.

use core::fmt;

use pdf_paths::Path;

/// The polarity of a path delay fault: which transition at the path's
/// source is slow to propagate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// The rising (`0 → 1`) transition along the path is slow.
    SlowToRise,
    /// The falling (`1 → 0`) transition along the path is slow.
    SlowToFall,
}

impl Polarity {
    /// Both polarities, rise first (the conventional enumeration order:
    /// each physical path contributes one fault of each polarity).
    pub const BOTH: [Polarity; 2] = [Polarity::SlowToRise, Polarity::SlowToFall];

    /// The opposite polarity.
    #[inline]
    #[must_use]
    pub const fn opposite(self) -> Polarity {
        match self {
            Polarity::SlowToRise => Polarity::SlowToFall,
            Polarity::SlowToFall => Polarity::SlowToRise,
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::SlowToRise => f.write_str("r"),
            Polarity::SlowToFall => f.write_str("f"),
        }
    }
}

/// A path delay fault: a physical path plus a polarity.
///
/// Displays as the path followed by the polarity, e.g. `(2,9,10,15)r` for
/// the paper's slow-to-rise example fault.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathDelayFault {
    path: Path,
    polarity: Polarity,
}

impl PathDelayFault {
    /// Creates the fault for `path` with the given polarity.
    #[must_use]
    pub fn new(path: Path, polarity: Polarity) -> PathDelayFault {
        PathDelayFault { path, polarity }
    }

    /// The physical path.
    #[inline]
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fault's polarity.
    #[inline]
    #[must_use]
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }
}

impl fmt::Display for PathDelayFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.path, self.polarity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::LineId;

    #[test]
    fn display_matches_paper_notation() {
        let path: Path = [1usize, 8, 9].iter().map(|&k| LineId::new(k)).collect();
        let fault = PathDelayFault::new(path, Polarity::SlowToRise);
        assert_eq!(fault.to_string(), "(2,9,10)r");
    }

    #[test]
    fn polarity_opposites() {
        assert_eq!(Polarity::SlowToRise.opposite(), Polarity::SlowToFall);
        assert_eq!(Polarity::SlowToFall.opposite(), Polarity::SlowToRise);
        for p in Polarity::BOTH {
            assert_eq!(p.opposite().opposite(), p);
        }
    }
}
