//! Graphviz DOT export for line-level circuits.

use std::fmt::Write as _;

use crate::{Circuit, LineKind};

/// Renders the circuit as a Graphviz `digraph`.
///
/// Inputs are drawn as triangles, gates as boxes labelled with their
/// function, branches as small points, and output lines with a double
/// border. Useful for eyeballing small circuits (`dot -Tsvg`).
///
/// # Example
///
/// ```
/// use pdf_netlist::iscas::s27;
///
/// let dot = pdf_netlist::to_dot(&s27());
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("G12"));
/// ```
#[must_use]
pub fn to_dot(circuit: &Circuit) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", circuit.name());
    let _ = writeln!(s, "  rankdir=LR;");
    for (id, line) in circuit.iter() {
        let label = format!("{} ({})", line.name(), id);
        let attrs = match line.kind() {
            LineKind::Input => format!("shape=triangle, label=\"{label}\""),
            LineKind::Gate(kind) => {
                let peripheries = if line.is_output() { 2 } else { 1 };
                format!("shape=box, peripheries={peripheries}, label=\"{kind}\\n{label}\"")
            }
            LineKind::Branch { .. } => {
                let peripheries = if line.is_output() { 2 } else { 1 };
                format!("shape=point, peripheries={peripheries}, xlabel=\"{label}\"")
            }
        };
        let _ = writeln!(s, "  n{} [{}];", id.index(), attrs);
    }
    for (id, line) in circuit.iter() {
        for &f in line.fanin() {
            let _ = writeln!(s, "  n{} -> n{};", f.index(), id.index());
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iscas::s27;

    #[test]
    fn s27_dot_mentions_every_line_and_edge() {
        let c = s27();
        let dot = to_dot(&c);
        for (id, _) in c.iter() {
            assert!(dot.contains(&format!("n{} [", id.index())));
        }
        // 26 nodes, edge count = sum of fanin sizes.
        let edges: usize = c.iter().map(|(_, l)| l.fanin().len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges);
    }

    #[test]
    fn output_gates_are_double_bordered() {
        let dot = to_dot(&s27());
        assert!(dot.contains("peripheries=2"));
    }
}
