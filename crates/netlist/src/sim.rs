//! Scalar and two-pattern simulation over the line-level [`Circuit`].

use pdf_logic::{GateKind, Triple, Value};

use crate::{Circuit, LineKind};

/// A two-pattern test: the pair of input vectors `⟨v1, v2⟩` applied in
/// consecutive cycles. Values are indexed by position in
/// [`Circuit::inputs`].
///
/// # Example
///
/// ```
/// use pdf_netlist::{CircuitBuilder, TwoPattern};
/// use pdf_logic::{GateKind, Triple, Value};
///
/// let mut b = CircuitBuilder::new("and2");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.gate("g", GateKind::And, &[a, c]);
/// b.mark_output(g);
/// let circuit = b.finish()?;
///
/// // a rises while c holds 1: the AND output rises.
/// let t = TwoPattern::new(
///     vec![Value::Zero, Value::One],
///     vec![Value::One, Value::One],
/// );
/// let waves = pdf_netlist::simulate_triples(&circuit, &t.to_triples());
/// assert_eq!(waves[g.index()], Triple::RISING);
/// # Ok::<(), pdf_netlist::CircuitError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TwoPattern {
    v1: Vec<Value>,
    v2: Vec<Value>,
}

impl TwoPattern {
    /// Creates a two-pattern test from the first and second input vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    #[must_use]
    pub fn new(v1: Vec<Value>, v2: Vec<Value>) -> TwoPattern {
        assert_eq!(v1.len(), v2.len(), "pattern vectors must have equal length");
        TwoPattern { v1, v2 }
    }

    /// Creates a fully-unspecified test over `n` inputs.
    #[must_use]
    pub fn unspecified(n: usize) -> TwoPattern {
        TwoPattern {
            v1: vec![Value::X; n],
            v2: vec![Value::X; n],
        }
    }

    /// Creates a test directly from per-input triples (the intermediate
    /// components are discarded — they are derived for primary inputs).
    #[must_use]
    pub fn from_triples(triples: &[Triple]) -> TwoPattern {
        TwoPattern {
            v1: triples.iter().map(|t| t.first()).collect(),
            v2: triples.iter().map(|t| t.last()).collect(),
        }
    }

    /// The first input vector.
    #[inline]
    #[must_use]
    pub fn first(&self) -> &[Value] {
        &self.v1
    }

    /// The second input vector.
    #[inline]
    #[must_use]
    pub fn second(&self) -> &[Value] {
        &self.v2
    }

    /// Number of inputs covered by the test.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.v1.len()
    }

    /// Returns `true` if the test covers zero inputs.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.v1.is_empty()
    }

    /// Returns `true` if every input value of both patterns is specified.
    #[must_use]
    pub fn is_fully_specified(&self) -> bool {
        self.v1.iter().chain(&self.v2).all(|v| v.is_specified())
    }

    /// The per-input waveform triples (intermediate values derived as for
    /// primary inputs: stable iff both patterns agree on a specified value).
    #[must_use]
    pub fn to_triples(&self) -> Vec<Triple> {
        let mut out = Vec::new();
        self.to_triples_into(&mut out);
        out
    }

    /// Writes the per-input waveform triples into `out`, reusing its
    /// allocation — the zero-allocation variant of
    /// [`TwoPattern::to_triples`] for simulation loops over many tests.
    pub fn to_triples_into(&self, out: &mut Vec<Triple>) {
        out.clear();
        out.extend(
            self.v1
                .iter()
                .zip(&self.v2)
                .map(|(&a, &b)| Triple::from_patterns(a, b)),
        );
    }

    /// Randomly specifies every remaining `x` using `rng_bit` (a closure
    /// returning random booleans), producing a fully-specified test.
    pub fn specify_remaining<F>(&mut self, mut rng_bit: F)
    where
        F: FnMut() -> bool,
    {
        for v in self.v1.iter_mut().chain(self.v2.iter_mut()) {
            if !v.is_specified() {
                *v = Value::from(rng_bit());
            }
        }
    }
}

impl core::fmt::Display for TwoPattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for v in &self.v1 {
            write!(f, "{v}")?;
        }
        f.write_str(" -> ")?;
        for v in &self.v2 {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Simulates one pattern over the circuit in three-valued logic.
///
/// `inputs[i]` is the value of `circuit.inputs()[i]`. Returns the value of
/// every line, indexed by [`LineId::index`](crate::LineId::index).
///
/// # Panics
///
/// Panics if `inputs.len() != circuit.inputs().len()`.
#[must_use]
pub fn simulate_values(circuit: &Circuit, inputs: &[Value]) -> Vec<Value> {
    assert_eq!(
        inputs.len(),
        circuit.inputs().len(),
        "one value per primary input required"
    );
    let mut values = vec![Value::X; circuit.line_count()];
    for (pos, &id) in circuit.inputs().iter().enumerate() {
        values[id.index()] = inputs[pos];
    }
    for &id in circuit.topo_order() {
        let line = circuit.line(id);
        match line.kind() {
            LineKind::Input => {}
            LineKind::Branch { stem } => values[id.index()] = values[stem.index()],
            LineKind::Gate(kind) => {
                values[id.index()] = eval_gate_values(*kind, line.fanin(), &values);
            }
        }
    }
    values
}

/// Simulates a two-pattern waveform over the circuit in the conservative
/// hazard algebra.
///
/// `inputs[i]` is the waveform triple of `circuit.inputs()[i]` (see
/// [`TwoPattern::to_triples`]). Returns the waveform of every line.
///
/// A returned stable triple (`000`/`111`) guarantees the line is
/// hazard-free under the test; an intermediate `x` means a glitch cannot be
/// ruled out. This is precisely the soundness direction robust path delay
/// fault detection requires.
///
/// # Panics
///
/// Panics if `inputs.len() != circuit.inputs().len()`.
#[must_use]
pub fn simulate_triples(circuit: &Circuit, inputs: &[Triple]) -> Vec<Triple> {
    let mut values = Vec::new();
    simulate_triples_into(circuit, inputs, &mut values);
    values
}

/// [`simulate_triples`] into a caller-provided buffer, reusing its
/// allocation. The buffer is cleared and refilled with one triple per
/// line; hot loops simulating many tests avoid a waveform-vector
/// allocation per test this way.
///
/// # Panics
///
/// Panics if `inputs.len() != circuit.inputs().len()`.
pub fn simulate_triples_into(circuit: &Circuit, inputs: &[Triple], values: &mut Vec<Triple>) {
    assert_eq!(
        inputs.len(),
        circuit.inputs().len(),
        "one triple per primary input required"
    );
    values.clear();
    values.resize(circuit.line_count(), Triple::UNKNOWN);
    for (pos, &id) in circuit.inputs().iter().enumerate() {
        values[id.index()] = inputs[pos];
    }
    for &id in circuit.topo_order() {
        let line = circuit.line(id);
        match line.kind() {
            LineKind::Input => {}
            LineKind::Branch { stem } => values[id.index()] = values[stem.index()],
            LineKind::Gate(kind) => {
                values[id.index()] =
                    kind.eval_triples(line.fanin().iter().map(|f| values[f.index()]));
            }
        }
    }
}

fn eval_gate_values(kind: GateKind, fanin: &[crate::LineId], values: &[Value]) -> Value {
    kind.eval(fanin.iter().map(|f| values[f.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, NetlistBuilder};
    use pdf_logic::GateKind;

    fn xor_via_nands() -> Circuit {
        // Classic 4-NAND XOR with explicit branches.
        let mut b = CircuitBuilder::new("xor4nand");
        let a = b.input("a");
        let c = b.input("c");
        let a1 = b.branch("a1", a);
        let a2 = b.branch("a2", a);
        let c1 = b.branch("c1", c);
        let c2 = b.branch("c2", c);
        let m = b.gate("m", GateKind::Nand, &[a1, c1]);
        let m1 = b.branch("m1", m);
        let m2 = b.branch("m2", m);
        let p = b.gate("p", GateKind::Nand, &[a2, m1]);
        let q = b.gate("q", GateKind::Nand, &[m2, c2]);
        let z = b.gate("z", GateKind::Nand, &[p, q]);
        b.mark_output(z);
        b.finish().unwrap()
    }

    #[test]
    fn scalar_simulation_computes_xor() {
        let c = xor_via_nands();
        let z = c.find_line("z").unwrap();
        for a in [false, true] {
            for b in [false, true] {
                let vals = simulate_values(&c, &[a.into(), b.into()]);
                assert_eq!(vals[z.index()], Value::from(a ^ b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn scalar_simulation_propagates_x_precisely() {
        let c = xor_via_nands();
        let z = c.find_line("z").unwrap();
        let vals = simulate_values(&c, &[Value::X, Value::Zero]);
        // XOR(x, 0) cannot be resolved.
        assert_eq!(vals[z.index()], Value::X);
    }

    #[test]
    fn triple_simulation_flags_static_hazard() {
        // The 4-NAND XOR has a static hazard when one input transitions:
        // the conservative algebra must keep mid = x on the output.
        let c = xor_via_nands();
        let z = c.find_line("z").unwrap();
        let waves = simulate_triples(&c, &[Triple::RISING, Triple::STABLE1]);
        assert_eq!(waves[z.index()].first(), Value::One);
        assert_eq!(waves[z.index()].last(), Value::Zero);
        assert_eq!(waves[z.index()].mid(), Value::X);
    }

    #[test]
    fn triple_simulation_proves_stability_through_controlling_side() {
        let mut b = CircuitBuilder::new("and2");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.gate("g", GateKind::And, &[a, c]);
        b.mark_output(g);
        let circuit = b.finish().unwrap();
        // c stable 0 pins the output regardless of a's transition.
        let waves = simulate_triples(&circuit, &[Triple::RISING, Triple::STABLE0]);
        assert_eq!(waves[g.index()], Triple::STABLE0);
    }

    #[test]
    fn two_pattern_roundtrip() {
        let t = TwoPattern::new(
            vec![Value::Zero, Value::One, Value::X],
            vec![Value::One, Value::One, Value::Zero],
        );
        let triples = t.to_triples();
        assert_eq!(triples[0], Triple::RISING);
        assert_eq!(triples[1], Triple::STABLE1);
        assert_eq!(triples[2].to_string(), "xx0");
        assert_eq!(TwoPattern::from_triples(&triples), t);
        assert!(!t.is_fully_specified());
    }

    #[test]
    fn specify_remaining_fills_every_x() {
        let mut t = TwoPattern::unspecified(4);
        let mut flip = false;
        t.specify_remaining(|| {
            flip = !flip;
            flip
        });
        assert!(t.is_fully_specified());
    }

    #[test]
    fn parity_decomposition_is_logic_equivalent() {
        let mut b = NetlistBuilder::new("par3");
        b.input("a").input("b").input("c").output("z");
        b.gate(GateKind::Xor, "z", &["a", "b", "c"]);
        let n = b.finish().unwrap();
        let keep = n.to_circuit_with(true).unwrap();
        let deco = n.decompose_parity().to_circuit().unwrap();
        let zk = keep.find_line("z").unwrap();
        let zd = deco.find_line("z").unwrap();
        for bits in 0..8u8 {
            let inputs: Vec<Value> = (0..3).map(|i| Value::from(bits >> i & 1 == 1)).collect();
            let vk = simulate_values(&keep, &inputs);
            let vd = simulate_values(&deco, &inputs);
            assert_eq!(vk[zk.index()], vd[zd.index()], "bits={bits:03b}");
        }
    }

    #[test]
    #[should_panic(expected = "one value per primary input")]
    fn wrong_input_arity_panics() {
        let c = xor_via_nands();
        let _ = simulate_values(&c, &[Value::Zero]);
    }
}
