//! The line-level circuit model.
//!
//! Path delay faults are defined over *lines*, not gates: every fanout
//! branch is a line of its own, distinct from its stem (Pomeranz & Reddy use
//! this model throughout — in their `s27` example, line 9 is the `NOR`
//! output stem while lines 10 and 11 are its two branches). A physical path
//! is then an alternating sequence of lines from a primary input to a
//! primary output, and the delay of a path is the sum of the delays of its
//! lines (one unit each by default).
//!
//! [`Circuit`] stores this expanded line graph. The invariants are:
//!
//! * a line is exactly one of: primary input, gate output (*stem*), or
//!   fanout *branch* of a stem;
//! * a stem with two or more sinks fans out exclusively through branch
//!   lines, one per sink (a primary-output "sink" counts);
//! * output lines have no fanout; every non-output line has at least one;
//! * the graph is acyclic.

use core::fmt;

use pdf_logic::GateKind;

/// Index of a line within a [`Circuit`].
///
/// `LineId`s are dense (`0..circuit.line_count()`) and stable for the life
/// of the circuit. The [`Display`](fmt::Display) form is 1-based to match
/// the paper's numbering convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(pub(crate) u32);

impl LineId {
    /// Creates a `LineId` from a dense index.
    #[inline]
    #[must_use]
    pub const fn new(index: usize) -> LineId {
        LineId(index as u32)
    }

    /// The dense index of this line.
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 1-based, matching the paper's line numbering of s27.
        write!(f, "{}", self.0 + 1)
    }
}

/// What a line is: primary input, gate output, or fanout branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineKind {
    /// A primary input (or pseudo primary input: a flip-flop output in the
    /// combinational core of a sequential circuit).
    Input,
    /// The output *stem* of a logic gate; `fanin` of the line lists the gate
    /// input lines in order.
    Gate(GateKind),
    /// A fanout branch of `stem`. Behaves as an identity (BUF) for
    /// simulation but is a distinct line for path and fault bookkeeping.
    Branch {
        /// The stem line this branch forks from.
        stem: LineId,
    },
}

impl LineKind {
    /// Returns `true` for [`LineKind::Input`].
    #[inline]
    #[must_use]
    pub const fn is_input(&self) -> bool {
        matches!(self, LineKind::Input)
    }

    /// Returns `true` for [`LineKind::Gate`].
    #[inline]
    #[must_use]
    pub const fn is_gate(&self) -> bool {
        matches!(self, LineKind::Gate(_))
    }

    /// Returns `true` for [`LineKind::Branch`].
    #[inline]
    #[must_use]
    pub const fn is_branch(&self) -> bool {
        matches!(self, LineKind::Branch { .. })
    }
}

/// One line of a [`Circuit`].
#[derive(Clone, Debug)]
pub struct Line {
    pub(crate) kind: LineKind,
    pub(crate) fanin: Vec<LineId>,
    pub(crate) fanout: Vec<LineId>,
    pub(crate) name: String,
    pub(crate) is_output: bool,
    pub(crate) level: u32,
    pub(crate) delay: u32,
}

impl Line {
    /// The kind of the line.
    #[inline]
    #[must_use]
    pub fn kind(&self) -> &LineKind {
        &self.kind
    }

    /// The fanin lines (gate inputs for a stem, `[stem]` for a branch,
    /// empty for a primary input).
    #[inline]
    #[must_use]
    pub fn fanin(&self) -> &[LineId] {
        &self.fanin
    }

    /// The fanout lines (empty exactly when the line is an output).
    #[inline]
    #[must_use]
    pub fn fanout(&self) -> &[LineId] {
        &self.fanout
    }

    /// A human-readable name ("9", "G12", "G12->G13", ...).
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether paths may end here (primary or pseudo primary output).
    #[inline]
    #[must_use]
    pub fn is_output(&self) -> bool {
        self.is_output
    }

    /// Topological level: inputs are level 0, every other line is one more
    /// than the maximum level of its fanin.
    #[inline]
    #[must_use]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The delay contributed by this line to any path through it.
    #[inline]
    #[must_use]
    pub fn delay(&self) -> u32 {
        self.delay
    }
}

/// A combinational circuit expanded to the line level.
///
/// Construct one with [`CircuitBuilder`] or convert a gate-level
/// [`Netlist`](crate::Netlist) via [`Netlist::to_circuit`](crate::Netlist::to_circuit).
///
/// # Example
///
/// ```
/// use pdf_netlist::{CircuitBuilder};
/// use pdf_logic::GateKind;
///
/// let mut b = CircuitBuilder::new("demo");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.gate("g", GateKind::And, &[a, c]);
/// b.mark_output(g);
/// let circuit = b.finish()?;
/// assert_eq!(circuit.line_count(), 3);
/// assert_eq!(circuit.outputs(), &[g]);
/// # Ok::<(), pdf_netlist::CircuitError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Circuit {
    name: String,
    lines: Vec<Line>,
    inputs: Vec<LineId>,
    outputs: Vec<LineId>,
    /// Line ids in topological order (fanins before fanouts).
    topo: Vec<LineId>,
    /// `d(g)`: the maximum total delay of any line sequence from the fanout
    /// of `g` to an output (0 for outputs). `len(p) = delay(p) + d(last)`.
    distance: Vec<u32>,
    /// Process-unique structure id, shared by clones (which are
    /// structurally identical). Lets incremental simulators detect that an
    /// arena holds state from a *different* circuit — address identity
    /// cannot do this, because allocators reuse addresses.
    epoch: u64,
}

impl Circuit {
    /// The circuit's name.
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of lines (inputs + stems + branches).
    #[inline]
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// The line with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    #[must_use]
    pub fn line(&self, id: LineId) -> &Line {
        &self.lines[id.index()]
    }

    /// All lines, indexable by [`LineId::index`].
    #[inline]
    #[must_use]
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// Iterates over `(id, line)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LineId, &Line)> {
        self.lines
            .iter()
            .enumerate()
            .map(|(i, l)| (LineId::new(i), l))
    }

    /// Primary (and pseudo primary) input lines.
    #[inline]
    #[must_use]
    pub fn inputs(&self) -> &[LineId] {
        &self.inputs
    }

    /// Primary (and pseudo primary) output lines.
    #[inline]
    #[must_use]
    pub fn outputs(&self) -> &[LineId] {
        &self.outputs
    }

    /// Line ids in topological order: every line appears after its fanins.
    #[inline]
    #[must_use]
    pub fn topo_order(&self) -> &[LineId] {
        &self.topo
    }

    /// A process-unique id of this circuit's structure, assigned at build
    /// time and shared by clones. Two circuits with different epochs may
    /// still be structurally equal, but two with the same epoch are
    /// guaranteed identical — which is the direction incremental
    /// simulators need to decide whether cached per-line state is
    /// trustworthy.
    #[inline]
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The distance `d(g)` of the line to the outputs: the maximum total
    /// delay of any suffix path starting *after* `g` (so `d` of an output
    /// line is 0).
    ///
    /// `len(p) = delay(p) + d(last(p))` bounds the delay of any complete
    /// path extending the partial path `p` (paper, Fig. 2).
    #[inline]
    #[must_use]
    pub fn distance_to_output(&self, id: LineId) -> u32 {
        self.distance[id.index()]
    }

    /// The maximum over all inputs of the longest-path delay through the
    /// circuit; i.e. the critical path delay.
    #[must_use]
    pub fn critical_delay(&self) -> u32 {
        self.inputs
            .iter()
            .map(|&i| self.lines[i.index()].delay + self.distance[i.index()])
            .max()
            .unwrap_or(0)
    }

    /// Number of gate lines.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.lines.iter().filter(|l| l.kind.is_gate()).count()
    }

    /// Number of branch lines.
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.lines.iter().filter(|l| l.kind.is_branch()).count()
    }

    /// Looks a line up by name (linear scan; intended for tests and small
    /// circuits).
    #[must_use]
    pub fn find_line(&self, name: &str) -> Option<LineId> {
        self.lines
            .iter()
            .position(|l| l.name == name)
            .map(LineId::new)
    }

    /// Total number of complete input-to-output paths, computed without
    /// enumeration (path counts multiply along the DAG). Saturates at
    /// `u64::MAX`.
    #[must_use]
    pub fn path_count(&self) -> u64 {
        // counts[l] = number of complete paths from line l to any output.
        let mut counts = vec![0u64; self.lines.len()];
        for &id in self.topo.iter().rev() {
            let line = &self.lines[id.index()];
            counts[id.index()] = if line.is_output {
                1
            } else {
                line.fanout
                    .iter()
                    .fold(0u64, |acc, f| acc.saturating_add(counts[f.index()]))
            };
        }
        self.inputs
            .iter()
            .fold(0u64, |acc, i| acc.saturating_add(counts[i.index()]))
    }

    /// Rescales every line's delay using `f(id, line) -> delay`. Distances,
    /// levels and orders are recomputed. Used to install non-unit delay
    /// models.
    pub fn set_delays<F>(&mut self, mut f: F)
    where
        F: FnMut(LineId, &Line) -> u32,
    {
        for i in 0..self.lines.len() {
            let d = f(LineId::new(i), &self.lines[i]);
            self.lines[i].delay = d;
        }
        self.distance = compute_distances(&self.lines, &self.topo);
    }
}

/// Error produced when assembling a [`Circuit`] fails validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// A referenced line id does not exist (yet).
    UnknownLine {
        /// The offending id.
        id: u32,
    },
    /// The line graph contains a cycle (combinational loop).
    Cyclic,
    /// A gate has the wrong number of inputs for its kind.
    BadArity {
        /// The gate line's name.
        line: String,
        /// The gate kind.
        kind: GateKind,
        /// The number of fanins supplied.
        got: usize,
    },
    /// A non-output line has no fanout (dangling).
    Dangling {
        /// The dangling line's name.
        line: String,
    },
    /// An output line has fanout — outputs must be leaves; insert a branch.
    OutputWithFanout {
        /// The offending line's name.
        line: String,
    },
    /// A stem with several sinks is connected directly to a gate instead of
    /// through branch lines, or mixes direct and branch fanout.
    MissingBranch {
        /// The offending stem's name.
        line: String,
    },
    /// The circuit has no inputs or no outputs.
    Empty,
    /// A delay of zero was assigned to a line.
    ZeroDelay {
        /// The offending line's name.
        line: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownLine { id } => write!(f, "unknown line id {id}"),
            CircuitError::Cyclic => f.write_str("combinational cycle detected"),
            CircuitError::BadArity { line, kind, got } => {
                write!(f, "gate `{line}` of kind {kind} has invalid arity {got}")
            }
            CircuitError::Dangling { line } => {
                write!(f, "non-output line `{line}` has no fanout")
            }
            CircuitError::OutputWithFanout { line } => {
                write!(f, "output line `{line}` has fanout")
            }
            CircuitError::MissingBranch { line } => {
                write!(
                    f,
                    "multi-sink stem `{line}` must fan out through branch lines only"
                )
            }
            CircuitError::Empty => f.write_str("circuit has no inputs or no outputs"),
            CircuitError::ZeroDelay { line } => write!(f, "line `{line}` has zero delay"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// Incremental builder for a line-level [`Circuit`].
///
/// Lines are numbered in creation order, which lets callers reproduce a
/// specific published numbering (as done for the paper's `s27`). Call
/// [`CircuitBuilder::finish`] to validate and obtain the [`Circuit`].
#[derive(Clone, Debug)]
pub struct CircuitBuilder {
    name: String,
    lines: Vec<Line>,
}

impl CircuitBuilder {
    /// Starts a new builder for a circuit called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> CircuitBuilder {
        CircuitBuilder {
            name: name.into(),
            lines: Vec::new(),
        }
    }

    fn push(&mut self, line: Line) -> LineId {
        let id = LineId::new(self.lines.len());
        self.lines.push(line);
        id
    }

    /// Adds a primary input line.
    pub fn input(&mut self, name: impl Into<String>) -> LineId {
        self.push(Line {
            kind: LineKind::Input,
            fanin: Vec::new(),
            fanout: Vec::new(),
            name: name.into(),
            is_output: false,
            level: 0,
            delay: 1,
        })
    }

    /// Adds a gate line driven by `fanin`.
    pub fn gate(&mut self, name: impl Into<String>, kind: GateKind, fanin: &[LineId]) -> LineId {
        self.push(Line {
            kind: LineKind::Gate(kind),
            fanin: fanin.to_vec(),
            fanout: Vec::new(),
            name: name.into(),
            is_output: false,
            level: 0,
            delay: 1,
        })
    }

    /// Adds a fanout branch of `stem`.
    pub fn branch(&mut self, name: impl Into<String>, stem: LineId) -> LineId {
        self.push(Line {
            kind: LineKind::Branch { stem },
            fanin: vec![stem],
            fanout: Vec::new(),
            name: name.into(),
            is_output: false,
            level: 0,
            delay: 1,
        })
    }

    /// Marks `line` as a primary (or pseudo primary) output.
    pub fn mark_output(&mut self, line: LineId) -> &mut CircuitBuilder {
        if let Some(l) = self.lines.get_mut(line.index()) {
            l.is_output = true;
        }
        self
    }

    /// Overrides the delay of `line` (default is one unit per line).
    pub fn set_delay(&mut self, line: LineId, delay: u32) -> &mut CircuitBuilder {
        if let Some(l) = self.lines.get_mut(line.index()) {
            l.delay = delay;
        }
        self
    }

    /// Validates the construction and produces the [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when a structural invariant is violated;
    /// see the type's variants for the complete list.
    pub fn finish(self) -> Result<Circuit, CircuitError> {
        let CircuitBuilder { name, mut lines } = self;
        let n = lines.len();

        // Resolve fanin references and derive fanout lists.
        let mut fanout: Vec<Vec<LineId>> = vec![Vec::new(); n];
        for (i, line) in lines.iter().enumerate() {
            for &f in &line.fanin {
                if f.index() >= n {
                    return Err(CircuitError::UnknownLine { id: f.0 });
                }
                fanout[f.index()].push(LineId::new(i));
            }
        }
        for (line, outs) in lines.iter_mut().zip(fanout) {
            line.fanout = outs;
        }

        // Arity checks.
        for line in &lines {
            match &line.kind {
                LineKind::Gate(kind) => {
                    let got = line.fanin.len();
                    let ok = if kind.is_single_input() {
                        got == 1
                    } else {
                        got >= 1
                    };
                    if !ok {
                        return Err(CircuitError::BadArity {
                            line: line.name.clone(),
                            kind: *kind,
                            got,
                        });
                    }
                }
                LineKind::Branch { stem } => {
                    debug_assert_eq!(line.fanin, vec![*stem]);
                }
                LineKind::Input => {
                    debug_assert!(line.fanin.is_empty());
                }
            }
            if line.delay == 0 {
                return Err(CircuitError::ZeroDelay {
                    line: line.name.clone(),
                });
            }
        }

        // Structural invariants around outputs and branches.
        for line in &lines {
            if line.is_output && !line.fanout.is_empty() {
                return Err(CircuitError::OutputWithFanout {
                    line: line.name.clone(),
                });
            }
            if !line.is_output && line.fanout.is_empty() {
                return Err(CircuitError::Dangling {
                    line: line.name.clone(),
                });
            }
            // A stem whose fanout contains a branch must fan out through
            // branches exclusively, and then has >= 2 sinks.
            let branch_outs = line
                .fanout
                .iter()
                .filter(|&&f| lines[f.index()].kind.is_branch())
                .count();
            if branch_outs > 0 && branch_outs != line.fanout.len() {
                return Err(CircuitError::MissingBranch {
                    line: line.name.clone(),
                });
            }
        }

        let inputs: Vec<LineId> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind.is_input())
            .map(|(i, _)| LineId::new(i))
            .collect();
        let outputs: Vec<LineId> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_output)
            .map(|(i, _)| LineId::new(i))
            .collect();
        if inputs.is_empty() || outputs.is_empty() {
            return Err(CircuitError::Empty);
        }

        // Kahn topological sort (also detects cycles) + level assignment.
        let mut indeg: Vec<usize> = lines.iter().map(|l| l.fanin.len()).collect();
        let mut queue: Vec<LineId> = inputs.clone();
        let mut topo: Vec<LineId> = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            topo.push(id);
            let level = lines[id.index()].level;
            for fi in 0..lines[id.index()].fanout.len() {
                let f = lines[id.index()].fanout[fi];
                let fl = &mut lines[f.index()];
                fl.level = fl.level.max(level + 1);
                indeg[f.index()] -= 1;
                if indeg[f.index()] == 0 {
                    queue.push(f);
                }
            }
        }
        if topo.len() != n {
            return Err(CircuitError::Cyclic);
        }

        let distance = compute_distances(&lines, &topo);

        // Relaxed is enough: the counter only needs uniqueness, not
        // ordering against any other memory.
        static EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let epoch = EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        Ok(Circuit {
            name,
            lines,
            inputs,
            outputs,
            topo,
            distance,
            epoch,
        })
    }
}

fn compute_distances(lines: &[Line], topo: &[LineId]) -> Vec<u32> {
    let mut distance = vec![0u32; lines.len()];
    for &id in topo.iter().rev() {
        let line = &lines[id.index()];
        distance[id.index()] = line
            .fanout
            .iter()
            .map(|&f| lines[f.index()].delay + distance[f.index()])
            .max()
            .unwrap_or(0);
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = AND(a, b); z = branch-fanout demo:
    ///   s = OR(a2, b2) with stem s feeding branches s->g and s->out.
    fn diamond() -> Circuit {
        let mut b = CircuitBuilder::new("diamond");
        let a = b.input("a");
        let c = b.input("c");
        // a fans out to two sinks -> branches.
        let a1 = b.branch("a1", a);
        let a2 = b.branch("a2", a);
        let g1 = b.gate("g1", GateKind::And, &[a1, c]);
        let g2 = b.gate("g2", GateKind::Not, &[a2]);
        let o = b.gate("o", GateKind::Or, &[g1, g2]);
        b.mark_output(o);
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_reports_structure() {
        let c = diamond();
        assert_eq!(c.line_count(), 7);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.gate_count(), 3);
        assert_eq!(c.branch_count(), 2);
        let o = c.find_line("o").unwrap();
        assert!(c.line(o).is_output());
        assert!(c.line(o).fanout().is_empty());
    }

    #[test]
    fn levels_and_distances() {
        let c = diamond();
        let a = c.find_line("a").unwrap();
        let o = c.find_line("o").unwrap();
        let g1 = c.find_line("g1").unwrap();
        assert_eq!(c.line(a).level(), 0);
        assert_eq!(c.line(g1).level(), 2);
        assert_eq!(c.line(o).level(), 3);
        assert_eq!(c.distance_to_output(o), 0);
        // From a: branch (1) + gate (1) + o (1) = 3.
        assert_eq!(c.distance_to_output(a), 3);
        // Critical path: a, a1, g1, o = 4 lines.
        assert_eq!(c.critical_delay(), 4);
    }

    #[test]
    fn path_count_multiplies_along_dag() {
        let c = diamond();
        // Paths: a->a1->g1->o, a->a2->g2->o, c->g1->o.
        assert_eq!(c.path_count(), 3);
    }

    #[test]
    fn topo_order_respects_fanin() {
        let c = diamond();
        let mut pos = vec![0usize; c.line_count()];
        for (i, &id) in c.topo_order().iter().enumerate() {
            pos[id.index()] = i;
        }
        for (id, line) in c.iter() {
            for &f in line.fanin() {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn dangling_line_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let g = b.gate("g", GateKind::Not, &[a]);
        // g not marked output, no fanout.
        let _ = g;
        assert!(matches!(b.finish(), Err(CircuitError::Dangling { .. })));
    }

    #[test]
    fn output_with_fanout_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let g = b.gate("g", GateKind::Not, &[a]);
        let h = b.gate("h", GateKind::Not, &[g]);
        b.mark_output(g);
        b.mark_output(h);
        assert!(matches!(
            b.finish(),
            Err(CircuitError::OutputWithFanout { .. })
        ));
    }

    #[test]
    fn mixed_branch_and_direct_fanout_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let br = b.branch("a->g", a);
        let g = b.gate("g", GateKind::Not, &[br]);
        let h = b.gate("h", GateKind::Not, &[a]); // direct use of stem too
        b.mark_output(g);
        b.mark_output(h);
        assert!(matches!(
            b.finish(),
            Err(CircuitError::MissingBranch { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        // Forward-reference a line that closes a loop: g -> h -> g.
        let g = b.gate("g", GateKind::And, &[a, LineId::new(2)]);
        let h = b.gate("h", GateKind::Not, &[g]);
        assert_eq!(h, LineId::new(2));
        b.mark_output(h);
        let err = b.finish();
        // h is used by g, so h has fanout; it cannot be an output then —
        // either error identifies the malformed construction.
        assert!(err.is_err());
    }

    #[test]
    fn real_cycle_detected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let g = b.gate("g", GateKind::And, &[a, LineId::new(2)]);
        let h = b.gate("h", GateKind::Not, &[g]);
        let o = b.gate("o", GateKind::Not, &[h]);
        assert_eq!(h, LineId::new(2));
        let _ = o;
        b.mark_output(o);
        // g <- h <- g is a cycle; h also feeds o.
        assert!(matches!(b.finish(), Err(CircuitError::Cyclic)));
    }

    #[test]
    fn unknown_line_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let g = b.gate("g", GateKind::And, &[a, LineId::new(99)]);
        b.mark_output(g);
        assert!(matches!(
            b.finish(),
            Err(CircuitError::UnknownLine { id: 99 })
        ));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.gate("g", GateKind::Not, &[a, c]);
        b.mark_output(g);
        assert!(matches!(b.finish(), Err(CircuitError::BadArity { .. })));
    }

    #[test]
    fn empty_rejected() {
        let b = CircuitBuilder::new("bad");
        assert!(matches!(b.finish(), Err(CircuitError::Empty)));
    }

    #[test]
    fn zero_delay_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let g = b.gate("g", GateKind::Not, &[a]);
        b.mark_output(g);
        b.set_delay(a, 0);
        assert!(matches!(b.finish(), Err(CircuitError::ZeroDelay { .. })));
    }

    #[test]
    fn custom_delays_change_distances() {
        let mut c = diamond();
        let a = c.find_line("a").unwrap();
        assert_eq!(c.distance_to_output(a), 3);
        // Make every gate cost 2 and branches free-ish (1).
        c.set_delays(|_, l| if l.kind().is_gate() { 2 } else { 1 });
        // From a: branch(1) + g1(2) + o(2) = 5.
        assert_eq!(c.distance_to_output(a), 5);
        assert_eq!(c.critical_delay(), 6);
    }

    #[test]
    fn display_of_line_ids_is_one_based() {
        assert_eq!(LineId::new(0).to_string(), "1");
        assert_eq!(LineId::new(25).to_string(), "26");
    }
}
