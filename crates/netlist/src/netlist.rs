//! The gate-level netlist model (named signals, gates, flip-flops).
//!
//! This is the representation `.bench` files parse into. Path delay fault
//! analysis itself runs on the expanded line-level [`Circuit`]; use
//! [`Netlist::combinational_core`] to strip sequential elements (flip-flop
//! outputs become pseudo primary inputs, flip-flop inputs pseudo primary
//! outputs) and [`Netlist::to_circuit`] to expand fanout branches.

use std::collections::HashMap;
use std::fmt;

use pdf_logic::GateKind;

use crate::{Circuit, CircuitBuilder, CircuitError, LineId};

/// Index of a named signal within a [`Netlist`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(u32);

impl SignalId {
    /// The dense index of this signal.
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives a signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// The signal is a primary input.
    Input,
    /// The signal is driven by the gate with the given index.
    Gate(usize),
    /// The signal is the output (`Q`) of the flip-flop with the given index.
    Dff(usize),
    /// Nothing drives the signal (invalid in a finished netlist).
    Undriven,
}

/// A logic gate instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// The gate function.
    pub kind: GateKind,
    /// Input signals, in order.
    pub inputs: Vec<SignalId>,
    /// Output signal.
    pub output: SignalId,
}

/// A D flip-flop: `q` takes the value of `d` at each clock edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dff {
    /// Data input.
    pub d: SignalId,
    /// Output.
    pub q: SignalId,
}

/// A gate-level netlist with named signals.
///
/// # Example
///
/// ```
/// use pdf_netlist::NetlistBuilder;
/// use pdf_logic::GateKind;
///
/// let mut b = NetlistBuilder::new("half_adder");
/// b.input("a").input("b").output("s").output("c");
/// b.gate(GateKind::Xor, "s", &["a", "b"]);
/// b.gate(GateKind::And, "c", &["a", "b"]);
/// let n = b.finish()?;
/// assert_eq!(n.input_count(), 2);
/// assert_eq!(n.gate_count(), 2);
/// # Ok::<(), pdf_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    signal_names: Vec<String>,
    drivers: Vec<Driver>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
}

impl Netlist {
    /// The netlist's name.
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of declared primary inputs.
    #[inline]
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of declared primary outputs.
    #[inline]
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of gates.
    #[inline]
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    #[inline]
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Primary input signals.
    #[inline]
    #[must_use]
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Primary output signals.
    #[inline]
    #[must_use]
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// The gates, in declaration order.
    #[inline]
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The flip-flops, in declaration order.
    #[inline]
    #[must_use]
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// The name of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    #[must_use]
    pub fn signal_name(&self, id: SignalId) -> &str {
        &self.signal_names[id.index()]
    }

    /// The driver of a signal.
    #[inline]
    #[must_use]
    pub fn driver(&self, id: SignalId) -> Driver {
        self.drivers[id.index()]
    }

    /// Looks a signal up by name.
    #[must_use]
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.signal_names
            .iter()
            .position(|n| n == name)
            .map(|i| SignalId(i as u32))
    }

    /// Extracts the combinational core: flip-flops are removed, each `Q`
    /// output becomes a pseudo primary input and each `D` input a pseudo
    /// primary output. This is "the combinational logic of" a sequential
    /// benchmark, the object the paper runs on.
    ///
    /// Pseudo inputs are appended after the real primary inputs, pseudo
    /// outputs after the real primary outputs, both in flip-flop declaration
    /// order. A combinational netlist is returned unchanged (cheap clone).
    #[must_use]
    pub fn combinational_core(&self) -> Netlist {
        if self.dffs.is_empty() {
            return self.clone();
        }
        let mut out = self.clone();
        for (i, dff) in self.dffs.iter().enumerate() {
            out.drivers[dff.q.index()] = Driver::Input;
            out.inputs.push(dff.q);
            // Avoid double-declaring an output: a D signal may already be a
            // primary output (rare but legal).
            if !out.outputs.contains(&dff.d) {
                out.outputs.push(dff.d);
            }
            let _ = i;
        }
        out.dffs.clear();
        out
    }

    /// Rewrites `XOR`/`XNOR` gates into `AND`/`OR`/`NOT` networks so that
    /// every gate has a controlling value (required by the classical robust
    /// sensitization conditions). Multi-input parity gates are folded
    /// pairwise; `a ^ b` becomes `(a & !b) | (!a & b)`.
    ///
    /// The rewrite preserves logic function but changes path structure, as
    /// is standard for path delay fault ATPG on parity-containing circuits.
    #[must_use]
    pub fn decompose_parity(&self) -> Netlist {
        if !self.gates.iter().any(|g| g.kind.is_parity()) {
            return self.clone();
        }
        let mut out = Netlist {
            name: self.name.clone(),
            signal_names: self.signal_names.clone(),
            drivers: vec![Driver::Undriven; self.signal_names.len()],
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            gates: Vec::with_capacity(self.gates.len()),
            dffs: self.dffs.clone(),
        };
        for &i in &self.inputs {
            out.drivers[i.index()] = Driver::Input;
        }
        // Preserve dff drivers.
        for (k, dff) in self.dffs.iter().enumerate() {
            out.drivers[dff.q.index()] = Driver::Dff(k);
        }
        let mut fresh = 0usize;
        for gate in &self.gates {
            if !gate.kind.is_parity() {
                out.push_gate(gate.kind, gate.inputs.clone(), gate.output);
                continue;
            }
            // Fold the inputs pairwise with XOR cells, then invert at the
            // end for XNOR.
            let mut acc = gate.inputs[0];
            let last = gate.inputs.len() - 1;
            for (k, &b) in gate.inputs.iter().enumerate().skip(1) {
                let is_last = k == last;
                let invert_final = is_last && gate.kind == GateKind::Xnor;
                let target = if is_last && !invert_final {
                    gate.output
                } else {
                    out.fresh_signal(&mut fresh)
                };
                let na = out.fresh_signal(&mut fresh);
                let nb = out.fresh_signal(&mut fresh);
                let t1 = out.fresh_signal(&mut fresh);
                let t2 = out.fresh_signal(&mut fresh);
                out.push_gate(GateKind::Not, vec![acc], na);
                out.push_gate(GateKind::Not, vec![b], nb);
                out.push_gate(GateKind::And, vec![acc, nb], t1);
                out.push_gate(GateKind::And, vec![na, b], t2);
                out.push_gate(GateKind::Or, vec![t1, t2], target);
                if invert_final {
                    out.push_gate(GateKind::Not, vec![target], gate.output);
                    acc = gate.output;
                } else {
                    acc = target;
                }
            }
        }
        out
    }

    fn fresh_signal(&mut self, counter: &mut usize) -> SignalId {
        loop {
            let name = format!("__x{}", *counter);
            *counter += 1;
            if !self.signal_names.contains(&name) {
                let id = SignalId(self.signal_names.len() as u32);
                self.signal_names.push(name);
                self.drivers.push(Driver::Undriven);
                return id;
            }
        }
    }

    fn push_gate(&mut self, kind: GateKind, inputs: Vec<SignalId>, output: SignalId) {
        let idx = self.gates.len();
        self.drivers[output.index()] = Driver::Gate(idx);
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
    }

    /// Gate indices in topological order (drivers before users).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the gates form a
    /// cycle (flip-flops legitimately break cycles and are not followed).
    pub fn gate_topo_order(&self) -> Result<Vec<usize>, NetlistError> {
        let n = self.gates.len();
        let mut indeg = vec![0usize; n];
        let mut users: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &inp in &gate.inputs {
                if let Driver::Gate(src) = self.drivers[inp.index()] {
                    indeg[gi] += 1;
                    users[src].push(gi);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&g| indeg[g] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            order.push(g);
            for &u in &users[g] {
                indeg[u] -= 1;
                if indeg[u] == 0 {
                    queue.push(u);
                }
            }
        }
        if order.len() != n {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Expands the netlist to the line-level [`Circuit`] used by path and
    /// fault analysis: every multi-sink signal fans out through explicit
    /// branch lines. Line numbering is deterministic: primary inputs in
    /// declaration order, then gate stems in topological order, then branch
    /// lines grouped by stem (gate sinks in topological order first, the
    /// primary-output sink last).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist is sequential (call
    /// [`Netlist::combinational_core`] first), contains parity gates (call
    /// [`Netlist::decompose_parity`] first if robust PDF analysis is
    /// intended — simulation-only users may keep them by passing
    /// `allow_parity` via [`Netlist::to_circuit_with`]), has undriven
    /// signals, or fails [`Circuit`] validation.
    pub fn to_circuit(&self) -> Result<Circuit, NetlistError> {
        self.to_circuit_with(false)
    }

    /// Like [`Netlist::to_circuit`], optionally allowing parity gates.
    ///
    /// # Errors
    ///
    /// See [`Netlist::to_circuit`].
    pub fn to_circuit_with(&self, allow_parity: bool) -> Result<Circuit, NetlistError> {
        if !self.dffs.is_empty() {
            return Err(NetlistError::Sequential);
        }
        if !allow_parity && self.gates.iter().any(|g| g.kind.is_parity()) {
            return Err(NetlistError::ParityGate);
        }
        for (i, d) in self.drivers.iter().enumerate() {
            if matches!(d, Driver::Undriven) {
                return Err(NetlistError::Undriven {
                    signal: self.signal_names[i].clone(),
                });
            }
        }
        let order = self.gate_topo_order()?;

        // sinks[signal] = gate indices consuming it (topological order,
        // repeated per use), then usize::MAX for a primary-output sink.
        let mut sinks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.signal_names.len()];
        for &gi in &order {
            for (pos, &inp) in self.gates[gi].inputs.iter().enumerate() {
                sinks[inp.index()].push((gi, pos));
            }
        }

        let mut b = CircuitBuilder::new(self.name.clone());
        // Stem line of every signal.
        let mut stem: HashMap<usize, LineId> = HashMap::new();
        for &i in &self.inputs {
            let id = b.input(self.signal_name(i));
            stem.insert(i.index(), id);
        }
        // Gate input connections are resolved after branches exist, so
        // remember the fanin signals per gate line and patch later. Instead
        // of patching we create lines in two passes: stems first with
        // placeholder fanins is not possible, so we instead allocate in
        // topological order and create branches for a signal right after
        // its stem when all of its sinks are known (they are — sinks only
        // depend on structure).
        //
        // Order of creation: inputs (above); then for each gate in topo
        // order, its stem. Branch lines for a multi-sink signal are created
        // immediately after the stem. Because a gate's fanin signals are
        // all earlier in topological order, their stems/branches exist.
        let mut feed: HashMap<(usize, usize, usize), LineId> = HashMap::new(); // (signal, gate, pos) -> line
        let mut output_line: HashMap<usize, LineId> = HashMap::new(); // signal -> PO line

        let make_fanout = |b: &mut CircuitBuilder,
                           sig: usize,
                           sid: LineId,
                           name: &str,
                           sinks: &[(usize, usize)],
                           is_output: bool,
                           feed: &mut HashMap<(usize, usize, usize), LineId>,
                           output_line: &mut HashMap<usize, LineId>| {
            let total = sinks.len() + usize::from(is_output);
            if total == 1 {
                if is_output {
                    output_line.insert(sig, sid);
                } else {
                    let (g, pos) = sinks[0];
                    feed.insert((sig, g, pos), sid);
                }
            } else {
                for &(g, pos) in sinks {
                    let bname = format!("{}->{}", name, self.signal_name(self.gates[g].output));
                    let br = b.branch(bname, sid);
                    feed.insert((sig, g, pos), br);
                }
                if is_output {
                    let br = b.branch(format!("{name}->out"), sid);
                    output_line.insert(sig, br);
                }
            }
        };

        for &i in &self.inputs {
            let sid = stem[&i.index()];
            make_fanout(
                &mut b,
                i.index(),
                sid,
                self.signal_name(i),
                &sinks[i.index()],
                self.outputs.contains(&i),
                &mut feed,
                &mut output_line,
            );
        }
        for &gi in &order {
            let gate = &self.gates[gi];
            let fanin: Vec<LineId> = gate
                .inputs
                .iter()
                .enumerate()
                .map(|(pos, &inp)| feed[&(inp.index(), gi, pos)])
                .collect();
            let sid = b.gate(self.signal_name(gate.output), gate.kind, &fanin);
            stem.insert(gate.output.index(), sid);
            make_fanout(
                &mut b,
                gate.output.index(),
                sid,
                self.signal_name(gate.output),
                &sinks[gate.output.index()],
                self.outputs.contains(&gate.output),
                &mut feed,
                &mut output_line,
            );
        }
        for &o in &self.outputs {
            let line = output_line[&o.index()];
            b.mark_output(line);
        }
        b.finish().map_err(NetlistError::Circuit)
    }
}

/// Error produced while building or converting a [`Netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal is driven by two sources.
    MultipleDrivers {
        /// The signal's name.
        signal: String,
    },
    /// A referenced signal is never driven.
    Undriven {
        /// The signal's name.
        signal: String,
    },
    /// The gates form a combinational cycle.
    CombinationalCycle,
    /// The netlist still contains flip-flops.
    Sequential,
    /// The netlist contains `XOR`/`XNOR` gates, which have no controlling
    /// value; decompose them first.
    ParityGate,
    /// A declared name was not defined anywhere.
    UnknownSignal {
        /// The signal's name.
        signal: String,
    },
    /// Line-level validation failed.
    Circuit(CircuitError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { signal } => {
                write!(f, "signal `{signal}` has multiple drivers")
            }
            NetlistError::Undriven { signal } => write!(f, "signal `{signal}` is undriven"),
            NetlistError::CombinationalCycle => f.write_str("combinational cycle detected"),
            NetlistError::Sequential => {
                f.write_str("netlist is sequential; extract the combinational core first")
            }
            NetlistError::ParityGate => {
                f.write_str("netlist contains XOR/XNOR gates; decompose parity first")
            }
            NetlistError::UnknownSignal { signal } => {
                write!(f, "signal `{signal}` is referenced but never defined")
            }
            NetlistError::Circuit(e) => write!(f, "line-level validation failed: {e}"),
        }
    }
}

impl std::error::Error for NetlistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetlistError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for NetlistError {
    fn from(e: CircuitError) -> Self {
        NetlistError::Circuit(e)
    }
}

/// Builder for a [`Netlist`]; signals are referenced by name and created on
/// first use.
#[derive(Clone, Debug)]
pub struct NetlistBuilder {
    name: String,
    signal_names: Vec<String>,
    by_name: HashMap<String, SignalId>,
    drivers: Vec<Driver>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    errors: Vec<NetlistError>,
}

impl NetlistBuilder {
    /// Starts a new builder for a netlist called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            signal_names: Vec::new(),
            by_name: HashMap::new(),
            drivers: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            errors: Vec::new(),
        }
    }

    fn signal(&mut self, name: &str) -> SignalId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SignalId(self.signal_names.len() as u32);
        self.signal_names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.drivers.push(Driver::Undriven);
        id
    }

    fn drive(&mut self, id: SignalId, driver: Driver) {
        if matches!(self.drivers[id.index()], Driver::Undriven) {
            self.drivers[id.index()] = driver;
        } else {
            self.errors.push(NetlistError::MultipleDrivers {
                signal: self.signal_names[id.index()].clone(),
            });
        }
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: &str) -> &mut NetlistBuilder {
        let id = self.signal(name);
        self.drive(id, Driver::Input);
        self.inputs.push(id);
        self
    }

    /// Declares a primary output.
    pub fn output(&mut self, name: &str) -> &mut NetlistBuilder {
        let id = self.signal(name);
        self.outputs.push(id);
        self
    }

    /// Adds a gate driving `output` from `inputs`.
    pub fn gate(&mut self, kind: GateKind, output: &str, inputs: &[&str]) -> &mut NetlistBuilder {
        let out = self.signal(output);
        let ins: Vec<SignalId> = inputs.iter().map(|n| self.signal(n)).collect();
        let idx = self.gates.len();
        self.drive(out, Driver::Gate(idx));
        self.gates.push(Gate {
            kind,
            inputs: ins,
            output: out,
        });
        self
    }

    /// Adds a D flip-flop with output `q` and data input `d`.
    pub fn dff(&mut self, q: &str, d: &str) -> &mut NetlistBuilder {
        let qs = self.signal(q);
        let ds = self.signal(d);
        let idx = self.dffs.len();
        self.drive(qs, Driver::Dff(idx));
        self.dffs.push(Dff { d: ds, q: qs });
        self
    }

    /// Validates and produces the [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns the first recorded construction error
    /// ([`NetlistError::MultipleDrivers`]) or an
    /// [`NetlistError::Undriven`]/[`NetlistError::CombinationalCycle`]
    /// discovered during validation.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        let NetlistBuilder {
            name,
            signal_names,
            by_name: _,
            drivers,
            inputs,
            outputs,
            gates,
            dffs,
            errors,
        } = self;
        if let Some(e) = errors.into_iter().next() {
            return Err(e);
        }
        for (i, d) in drivers.iter().enumerate() {
            if matches!(d, Driver::Undriven) {
                return Err(NetlistError::Undriven {
                    signal: signal_names[i].clone(),
                });
            }
        }
        let netlist = Netlist {
            name,
            signal_names,
            drivers,
            inputs,
            outputs,
            gates,
            dffs,
        };
        netlist.gate_topo_order()?;
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineKind;

    fn tiny_seq() -> Netlist {
        // out = NOT(q); d_in = AND(a, q)
        let mut b = NetlistBuilder::new("tiny");
        b.input("a").output("out");
        b.gate(GateKind::Not, "out", &["q"]);
        b.gate(GateKind::And, "d_in", &["a", "q"]);
        b.dff("q", "d_in");
        b.finish().unwrap()
    }

    #[test]
    fn sequential_roundtrip_to_core() {
        let n = tiny_seq();
        assert_eq!(n.dff_count(), 1);
        let core = n.combinational_core();
        assert_eq!(core.dff_count(), 0);
        assert_eq!(core.input_count(), 2); // a + q
        assert_eq!(core.output_count(), 2); // out + d_in
        let q = core.find_signal("q").unwrap();
        assert_eq!(core.driver(q), Driver::Input);
    }

    #[test]
    fn to_circuit_rejects_sequential() {
        let n = tiny_seq();
        assert!(matches!(n.to_circuit(), Err(NetlistError::Sequential)));
        assert!(n.combinational_core().to_circuit().is_ok());
    }

    #[test]
    fn branch_expansion_counts() {
        // q fans out to both gates in the core: expect branch lines.
        let c = tiny_seq().combinational_core().to_circuit().unwrap();
        // Lines: a, q (inputs); out, d_in (gates); q->out, q->d_in (branches).
        assert_eq!(c.line_count(), 6);
        assert_eq!(c.branch_count(), 2);
        let q = c.find_line("q").unwrap();
        assert_eq!(c.line(q).fanout().len(), 2);
        for &f in c.line(q).fanout() {
            assert!(matches!(c.line(f).kind(), LineKind::Branch { stem } if *stem == q));
        }
    }

    #[test]
    fn single_sink_signal_connects_directly() {
        let mut b = NetlistBuilder::new("chain");
        b.input("a").output("z");
        b.gate(GateKind::Not, "m", &["a"]);
        b.gate(GateKind::Not, "z", &["m"]);
        let c = b.finish().unwrap().to_circuit().unwrap();
        assert_eq!(c.branch_count(), 0);
        assert_eq!(c.line_count(), 3);
    }

    #[test]
    fn output_that_also_fans_out_gets_output_branch() {
        // m is both a primary output and feeds z.
        let mut b = NetlistBuilder::new("share");
        b.input("a").output("m").output("z");
        b.gate(GateKind::Not, "m", &["a"]);
        b.gate(GateKind::Not, "z", &["m"]);
        let c = b.finish().unwrap().to_circuit().unwrap();
        // a, m, z + branches m->z and m->out.
        assert_eq!(c.line_count(), 5);
        assert_eq!(c.branch_count(), 2);
        let po = c.find_line("m->out").unwrap();
        assert!(c.line(po).is_output());
        let m = c.find_line("m").unwrap();
        assert!(!c.line(m).is_output());
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a").output("z");
        b.gate(GateKind::Not, "z", &["a"]);
        b.gate(GateKind::Buf, "z", &["a"]);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn undriven_rejected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a").output("z");
        b.gate(GateKind::And, "z", &["a", "ghost"]);
        match b.finish() {
            Err(NetlistError::Undriven { signal }) => assert_eq!(signal, "ghost"),
            other => panic!("expected undriven error, got {other:?}"),
        }
    }

    #[test]
    fn cycle_rejected() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a").output("z");
        b.gate(GateKind::And, "p", &["a", "q"]);
        b.gate(GateKind::Not, "q", &["p"]);
        b.gate(GateKind::Buf, "z", &["q"]);
        assert!(matches!(b.finish(), Err(NetlistError::CombinationalCycle)));
    }

    #[test]
    fn parity_gate_refused_then_decomposed() {
        let mut b = NetlistBuilder::new("par");
        b.input("a").input("b").output("z");
        b.gate(GateKind::Xor, "z", &["a", "b"]);
        let n = b.finish().unwrap();
        assert!(matches!(n.to_circuit(), Err(NetlistError::ParityGate)));
        assert!(n.to_circuit_with(true).is_ok());
        let d = n.decompose_parity();
        assert!(d.gates().iter().all(|g| !g.kind.is_parity()));
        assert!(d.to_circuit().is_ok());
        // XOR pair -> 2 NOT + 2 AND + 1 OR.
        assert_eq!(d.gate_count(), 5);
    }

    #[test]
    fn xnor_decomposition_inverts() {
        let mut b = NetlistBuilder::new("par");
        b.input("a").input("b").output("z");
        b.gate(GateKind::Xnor, "z", &["a", "b"]);
        let d = b.finish().unwrap().decompose_parity();
        assert_eq!(d.gate_count(), 6); // XOR cell + final NOT
        assert!(d.to_circuit().is_ok());
    }

    #[test]
    fn three_input_xor_folds_pairwise() {
        let mut b = NetlistBuilder::new("par3");
        b.input("a").input("b").input("c").output("z");
        b.gate(GateKind::Xor, "z", &["a", "b", "c"]);
        let d = b.finish().unwrap().decompose_parity();
        assert_eq!(d.gate_count(), 10); // two XOR cells
        assert!(d.to_circuit().is_ok());
    }
}
