//! Reader and writer for the ISCAS `.bench` netlist format.
//!
//! The format, as used by the ISCAS-85/89 and ITC-99 benchmark
//! distributions:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G14 = NOT(G0)
//! G8  = AND(G14, G6)
//! G5  = DFF(G10)
//! ```

use std::fmt;
use std::path::Path;

use pdf_logic::GateKind;

use crate::{Netlist, NetlistBuilder, NetlistError};

/// Error produced while parsing a `.bench` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BenchParseError {
    /// A line could not be recognized.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An unknown gate function was referenced.
    UnknownFunction {
        /// 1-based line number.
        line: usize,
        /// The function name.
        function: String,
    },
    /// A `DFF` was declared with other than one input.
    BadDffArity {
        /// 1-based line number.
        line: usize,
    },
    /// Netlist-level validation failed after parsing.
    Netlist(NetlistError),
}

impl fmt::Display for BenchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchParseError::Syntax { line, text } => {
                write!(f, "line {line}: unrecognized syntax `{text}`")
            }
            BenchParseError::UnknownFunction { line, function } => {
                write!(f, "line {line}: unknown function `{function}`")
            }
            BenchParseError::BadDffArity { line } => {
                write!(f, "line {line}: DFF must have exactly one input")
            }
            BenchParseError::Netlist(e) => write!(f, "netlist validation failed: {e}"),
        }
    }
}

impl std::error::Error for BenchParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchParseError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for BenchParseError {
    fn from(e: NetlistError) -> Self {
        BenchParseError::Netlist(e)
    }
}

/// A netlist parse failure annotated with where it happened: the source
/// (a file path or an embedded-circuit name), the 1-based line when the
/// failure is tied to one, and the offending token when one can be
/// singled out.
///
/// This is the error the file-level entry points ([`parse_bench_file`],
/// [`parse_bench_named`]) report, so that a user-facing tool can print
/// `path:line: message` diagnostics without re-deriving the context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetlistParseError {
    source: String,
    line: Option<usize>,
    token: Option<String>,
    message: String,
}

impl NetlistParseError {
    /// Wraps a [`BenchParseError`] with the source it came from.
    #[must_use]
    pub fn from_bench(source: impl Into<String>, error: &BenchParseError) -> NetlistParseError {
        let (line, token, message) = match error {
            BenchParseError::Syntax { line, text } => (
                Some(*line),
                Some(text.clone()),
                "unrecognized syntax".to_owned(),
            ),
            BenchParseError::UnknownFunction { line, function } => (
                Some(*line),
                Some(function.clone()),
                "unknown gate function".to_owned(),
            ),
            BenchParseError::BadDffArity { line } => (
                Some(*line),
                None,
                "DFF must have exactly one input".to_owned(),
            ),
            BenchParseError::Netlist(e) => {
                let token = match e {
                    NetlistError::MultipleDrivers { signal }
                    | NetlistError::Undriven { signal }
                    | NetlistError::UnknownSignal { signal } => Some(signal.clone()),
                    _ => None,
                };
                (None, token, e.to_string())
            }
        };
        NetlistParseError {
            source: source.into(),
            line,
            token,
            message,
        }
    }

    /// Wraps an I/O failure (the source could not be read at all).
    #[must_use]
    pub fn io(source: impl Into<String>, error: &std::io::Error) -> NetlistParseError {
        NetlistParseError {
            source: source.into(),
            line: None,
            token: None,
            message: format!("cannot read: {error}"),
        }
    }

    /// The source the text came from (file path or circuit name).
    #[must_use]
    pub fn source_name(&self) -> &str {
        &self.source
    }

    /// The 1-based line of the failure, when tied to a specific line.
    #[must_use]
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// The offending token, when one can be singled out.
    #[must_use]
    pub fn token(&self) -> Option<&str> {
        self.token.as_deref()
    }

    /// The failure description, without the location prefix.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for NetlistParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{line}: {}", self.source, self.message)?,
            None => write!(f, "{}: {}", self.source, self.message)?,
        }
        if let Some(token) = &self.token {
            if !self.message.contains(token.as_str()) {
                write!(f, " (near `{token}`)")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for NetlistParseError {}

/// Parses `.bench` text into a [`Netlist`] called `name`.
///
/// # Errors
///
/// Returns a [`BenchParseError`] on unrecognized syntax, unknown gate
/// functions, or netlist validation failure (multiple drivers, undriven
/// signals, combinational cycles).
///
/// # Example
///
/// ```
/// let text = "\
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(z)
/// z = NAND(a, b)
/// ";
/// let netlist = pdf_netlist::parse_bench(text, "demo")?;
/// assert_eq!(netlist.gate_count(), 1);
/// # Ok::<(), pdf_netlist::BenchParseError>(())
/// ```
pub fn parse_bench(text: &str, name: &str) -> Result<Netlist, BenchParseError> {
    let mut b = NetlistBuilder::new(name);
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = parse_call(line, "INPUT") {
            b.input(inner.trim());
            continue;
        }
        if let Some(inner) = parse_call(line, "OUTPUT") {
            b.output(inner.trim());
            continue;
        }
        // `out = FUNC(in1, in2, ...)`
        let Some((lhs, rhs)) = line.split_once('=') else {
            return Err(BenchParseError::Syntax {
                line: lineno,
                text: line.to_owned(),
            });
        };
        let out = lhs.trim();
        let rhs = rhs.trim();
        let (Some(open), Some(close)) = (rhs.find('('), rhs.rfind(')')) else {
            return Err(BenchParseError::Syntax {
                line: lineno,
                text: line.to_owned(),
            });
        };
        if close < open || !rhs[close + 1..].trim().is_empty() {
            return Err(BenchParseError::Syntax {
                line: lineno,
                text: line.to_owned(),
            });
        }
        let func = rhs[..open].trim();
        let args: Vec<&str> = rhs[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if func.eq_ignore_ascii_case("DFF") {
            if args.len() != 1 {
                return Err(BenchParseError::BadDffArity { line: lineno });
            }
            b.dff(out, args[0]);
            continue;
        }
        let kind: GateKind = func.parse().map_err(|_| BenchParseError::UnknownFunction {
            line: lineno,
            function: func.to_owned(),
        })?;
        b.gate(kind, out, &args);
    }
    Ok(b.finish()?)
}

/// [`parse_bench`] with full source attribution: failures come back as a
/// [`NetlistParseError`] naming `source` (typically the file path the
/// text was read from) alongside the line and token context.
///
/// # Errors
///
/// Returns [`NetlistParseError`] for any [`parse_bench`] failure.
pub fn parse_bench_named(
    text: &str,
    name: &str,
    source: &str,
) -> Result<Netlist, NetlistParseError> {
    parse_bench(text, name).map_err(|e| NetlistParseError::from_bench(source, &e))
}

/// Reads and parses a `.bench` file. The netlist is named after the file
/// stem; diagnostics carry the full path.
///
/// # Errors
///
/// Returns [`NetlistParseError`] when the file cannot be read or its
/// contents do not parse.
pub fn parse_bench_file(path: &Path) -> Result<Netlist, NetlistParseError> {
    let source = path.display().to_string();
    let text =
        std::fs::read_to_string(path).map_err(|e| NetlistParseError::io(source.as_str(), &e))?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    parse_bench_named(&text, name, &source)
}

fn parse_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest)
}

/// Serializes a [`Netlist`] to `.bench` text. Parsing the output with
/// [`parse_bench`] reproduces an equivalent netlist.
#[must_use]
pub fn to_bench_string(netlist: &Netlist) -> String {
    use std::fmt::Write as _;

    let mut s = String::new();
    let _ = writeln!(s, "# {}", netlist.name());
    for &i in netlist.inputs() {
        let _ = writeln!(s, "INPUT({})", netlist.signal_name(i));
    }
    for &o in netlist.outputs() {
        let _ = writeln!(s, "OUTPUT({})", netlist.signal_name(o));
    }
    for dff in netlist.dffs() {
        let _ = writeln!(
            s,
            "{} = DFF({})",
            netlist.signal_name(dff.q),
            netlist.signal_name(dff.d)
        );
    }
    for gate in netlist.gates() {
        let args: Vec<&str> = gate
            .inputs
            .iter()
            .map(|&i| netlist.signal_name(i))
            .collect();
        let _ = writeln!(
            s,
            "{} = {}({})",
            netlist.signal_name(gate.output),
            gate.kind,
            args.join(", ")
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_BENCH: &str = "\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

    #[test]
    fn parses_s27() {
        let n = parse_bench(S27_BENCH, "s27").unwrap();
        assert_eq!(n.input_count(), 4);
        assert_eq!(n.output_count(), 1);
        assert_eq!(n.dff_count(), 3);
        assert_eq!(n.gate_count(), 10);
        let core = n.combinational_core();
        assert_eq!(core.input_count(), 7);
        assert_eq!(core.output_count(), 4);
        // The paper's line-level s27 has 26 lines.
        let circuit = core.to_circuit().unwrap();
        assert_eq!(circuit.line_count(), 26);
        assert_eq!(circuit.critical_delay(), 10);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nINPUT(a)  # trailing\nOUTPUT(z)\nz = NOT(a)\n";
        let n = parse_bench(text, "t").unwrap();
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn round_trip_through_writer() {
        let n = parse_bench(S27_BENCH, "s27").unwrap();
        let text = to_bench_string(&n);
        let n2 = parse_bench(&text, "s27").unwrap();
        assert_eq!(n.gate_count(), n2.gate_count());
        assert_eq!(n.dff_count(), n2.dff_count());
        assert_eq!(n.input_count(), n2.input_count());
        assert_eq!(n.output_count(), n2.output_count());
        let c1 = n.combinational_core().to_circuit().unwrap();
        let c2 = n2.combinational_core().to_circuit().unwrap();
        assert_eq!(c1.line_count(), c2.line_count());
        assert_eq!(c1.path_count(), c2.path_count());
    }

    #[test]
    fn syntax_errors_are_located() {
        let err = parse_bench("INPUT(a)\nwhat is this\n", "t").unwrap_err();
        match err {
            BenchParseError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_function_reported() {
        let err = parse_bench("INPUT(a)\nOUTPUT(z)\nz = MAJ(a, a, a)\n", "t").unwrap_err();
        match err {
            BenchParseError::UnknownFunction { function, .. } => assert_eq!(function, "MAJ"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dff_arity_checked() {
        let err = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n", "t").unwrap_err();
        assert!(matches!(err, BenchParseError::BadDffArity { line: 3 }));
    }

    #[test]
    fn aliases_buff_and_inv() {
        let n = parse_bench("INPUT(a)\nOUTPUT(z)\nm = BUFF(a)\nz = INV(m)\n", "t").unwrap();
        assert_eq!(n.gate_count(), 2);
    }
}
