//! A tiny, fully deterministic pseudo-random number generator.
//!
//! The workspace needs run-to-run *and* platform-to-platform reproducible
//! randomness: the paper's justification procedure makes random choices,
//! and the experimental tables must regenerate bit-identically from a
//! seed. External RNG crates do not guarantee stream stability across
//! versions, so we pin the well-known SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA 2014) — 64 bits of state, full period, excellent
//! statistical quality for non-cryptographic use.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use pdf_netlist::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    #[must_use]
    pub const fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style widening multiply avoids modulo bias well enough for
        // structural generation (bound << 2^64).
        let wide = u128::from(self.next_u64()) * bound as u128;
        (wide >> 64) as usize
    }

    /// A uniformly distributed boolean.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    #[inline]
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.next_below(slice.len())]
    }

    /// Derives an independent generator (useful to decorrelate phases).
    #[must_use]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// The raw generator state, for checkpointing. Feeding it back
    /// through [`SplitMix64::from_state`] resumes the stream exactly
    /// where it left off.
    #[must_use]
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a previously saved [`SplitMix64::state`].
    /// Identical to [`SplitMix64::new`] — the state *is* the seed
    /// counter — but named for intent at resume sites.
    #[must_use]
    pub const fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(0xDEADBEEF);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = SplitMix64::new(0xDEADBEEF);
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 0 from the published SplitMix64 code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        let _ = SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SplitMix64::new(0xC0FFEE);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        let tail_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let tail_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(tail_a, tail_b);
    }
}
