//! Seeded synthetic benchmark circuits.
//!
//! The paper evaluates on the combinational cores of ISCAS-89 and ITC-99
//! benchmarks. Those netlists are not redistributable inside this
//! repository (and are unavailable offline), so the experiment harness
//! substitutes **deterministic synthetic stand-ins**: layered random DAGs
//! of unate gates whose profile — input/output counts, gate count, logic
//! depth, and the density of near-critical path lengths — is tuned per
//! circuit so that the paper's parameters (`N_P = 10000`, `N_P0 = 1000`)
//! bind the same way they do on the originals. The `s27` used throughout
//! the paper's worked examples *is* reproduced exactly (see
//! [`iscas::s27`](crate::iscas::s27)).
//!
//! Generation is fully deterministic: a [`SynthProfile`] plus its embedded
//! seed always produces the identical netlist, on every platform.

use pdf_logic::GateKind;

use crate::{Netlist, NetlistBuilder, SplitMix64};

/// Parameters of the synthetic circuit generator.
///
/// # Example
///
/// ```
/// use pdf_netlist::SynthProfile;
///
/// let profile = SynthProfile::new("tiny", 7)
///     .with_inputs(8)
///     .with_gates(40)
///     .with_levels(6);
/// let netlist = profile.generate();
/// assert_eq!(netlist.input_count(), 8);
/// assert!(netlist.to_circuit().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct SynthProfile {
    name: String,
    seed: u64,
    inputs: usize,
    gates: usize,
    levels: usize,
    adjacent_bias: f64,
    arity3_share: f64,
    inverter_share: f64,
    pi_bias: f64,
    redundant_gadgets: usize,
}

impl SynthProfile {
    /// Starts a profile with reasonable small defaults (16 inputs, 100
    /// gates, 10 levels).
    #[must_use]
    pub fn new(name: impl Into<String>, seed: u64) -> SynthProfile {
        SynthProfile {
            name: name.into(),
            seed,
            inputs: 16,
            gates: 100,
            levels: 10,
            adjacent_bias: 0.8,
            arity3_share: 0.2,
            inverter_share: 0.1,
            pi_bias: 0.3,
            redundant_gadgets: 0,
        }
    }

    /// Sets the number of primary inputs.
    #[must_use]
    pub fn with_inputs(mut self, inputs: usize) -> SynthProfile {
        self.inputs = inputs.max(2);
        self
    }

    /// Sets the number of gates.
    #[must_use]
    pub fn with_gates(mut self, gates: usize) -> SynthProfile {
        self.gates = gates.max(1);
        self
    }

    /// Sets the number of logic levels (depth of the gate DAG).
    #[must_use]
    pub fn with_levels(mut self, levels: usize) -> SynthProfile {
        self.levels = levels.max(1);
        self
    }

    /// Sets the probability that a non-primary fanin is drawn from the
    /// immediately preceding level instead of a uniformly random earlier
    /// one. High values produce long chains and a dense spectrum of
    /// near-critical path lengths — the regime the paper's enrichment
    /// targets.
    #[must_use]
    pub fn with_adjacent_bias(mut self, p: f64) -> SynthProfile {
        self.adjacent_bias = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the share of 3-input gates (the rest are 2-input, except
    /// inverters).
    #[must_use]
    pub fn with_arity3_share(mut self, p: f64) -> SynthProfile {
        self.arity3_share = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the share of single-input gates (`NOT`, occasionally `BUF`).
    #[must_use]
    pub fn with_inverter_share(mut self, p: f64) -> SynthProfile {
        self.inverter_share = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the probability that a non-first fanin connects directly to a
    /// primary input. Real benchmark circuits hang wide, shallow side
    /// logic off their data paths; side inputs controllable straight from
    /// the primary inputs are what keeps long paths *robustly testable*.
    /// Very low values produce densely reconvergent circuits whose long
    /// paths are almost all robust-untestable.
    #[must_use]
    pub fn with_pi_bias(mut self, p: f64) -> SynthProfile {
        self.pi_bias = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the number of injected *redundancy gadgets* (default 0).
    ///
    /// The clean layered DAGs this generator produces are structurally
    /// irredundant: essentially every fault that survives the static
    /// elimination rules is genuinely testable. Real benchmark circuits
    /// are not like that — large fractions of their path delay faults are
    /// untestable for reasons that only reconvergent case analysis can
    /// expose. Each gadget adds that character back with seven new gates:
    ///
    /// ```text
    /// ns = NOT s            u  = AND(s, ns)        (u ≡ 0, redundantly)
    /// o1 = OR(s, u, a)      o2 = OR(ns, u, a)
    /// z  = AND(o1, o2)                             (z ≡ a, redundantly)
    /// g1 = OR(w, a)         g2 = AND(g1, z)        (g2 a new output)
    /// ```
    ///
    /// where `s`, `a`, and `w` are existing signals (`w` from the deepest
    /// level, so paths through the gadget rank among the longest). Every
    /// path through `g2`'s side `w` requires off-path `a` stable 0 and
    /// off-path `z` stable 1 — unsatisfiable since `z ≡ a`, yet invisible
    /// to direct implication: justifying `o1 = 1` or `o2 = 1` under
    /// `a = 0` stalls on two unknowns (`s`/`ns` and `u`), so no
    /// contradiction is ever reached without splitting on `s`. Existing
    /// gates keep their functions; only fanout is added.
    #[must_use]
    pub fn with_redundant_gadgets(mut self, n: usize) -> SynthProfile {
        self.redundant_gadgets = n;
        self
    }

    /// The profile's name, used as the generated netlist's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Generates the netlist. Deterministic: equal profiles yield equal
    /// netlists.
    #[must_use]
    pub fn generate(&self) -> Netlist {
        let mut rng = SplitMix64::new(self.seed);
        let mut b = NetlistBuilder::new(self.name.clone());

        // Level 0: primary inputs.
        let input_names: Vec<String> = (0..self.inputs).map(|i| format!("i{i}")).collect();
        for n in &input_names {
            b.input(n);
        }
        let mut by_level: Vec<Vec<String>> = vec![input_names];

        // Distribute gates across levels: every level gets a base share,
        // later levels taper slightly (outputs funnel).
        let levels = self.levels.min(self.gates);
        let mut widths = vec![self.gates / levels; levels];
        for w in widths.iter_mut() {
            debug_assert!(*w > 0 || self.gates < levels);
        }
        let mut remainder = self.gates - widths.iter().sum::<usize>();
        while remainder > 0 {
            let l = rng.next_below(levels);
            widths[l] += 1;
            remainder -= 1;
        }
        // Guarantee at least one gate per level so the depth target holds.
        for l in 0..levels {
            if widths[l] == 0 {
                let donor = (0..levels)
                    .max_by_key(|&k| widths[k])
                    .expect("levels is non-zero");
                if widths[donor] > 1 {
                    widths[donor] -= 1;
                    widths[l] += 1;
                }
            }
        }

        // Each primary input gets a preferred polarity, like the
        // active-high/active-low control signals of real designs. A gate
        // that takes primary-input side fanins draws them only from inputs
        // whose preference matches the gate's non-controlling value —
        // otherwise one input required stable-1 as the off-path of one
        // gate and stable-0 as the off-path of another makes every long
        // path through both trivially robust-untestable, and with dozens
        // of side inputs per path the birthday bound kills the entire
        // long-path fault population.
        let high_pref: Vec<String> = (0..self.inputs)
            .filter(|_| rng.next_bool())
            .map(|i| format!("i{i}"))
            .collect();
        let (high_pref, low_pref): (Vec<String>, Vec<String>) = {
            let mut high = Vec::new();
            let mut low = Vec::new();
            for i in 0..self.inputs {
                let name = format!("i{i}");
                if high_pref.contains(&name) {
                    high.push(name);
                } else {
                    low.push(name);
                }
            }
            // Guarantee both pools are usable.
            if high.is_empty() {
                high.push(low.pop().expect("at least two inputs"));
            }
            if low.is_empty() {
                low.push(high.pop().expect("at least two inputs"));
            }
            (high, low)
        };

        let mut used = std::collections::HashSet::<String>::new();
        let mut gate_no = 0usize;
        for (lvl_idx, &width) in widths.iter().enumerate() {
            let level = lvl_idx + 1;
            let mut this_level = Vec::with_capacity(width);
            for _ in 0..width {
                let name = format!("n{gate_no}");
                gate_no += 1;
                let arity = if rng.chance(self.inverter_share) {
                    1
                } else if rng.chance(self.arity3_share) {
                    3
                } else {
                    2
                };
                let kind = match arity {
                    1 => {
                        if rng.chance(0.8) {
                            GateKind::Not
                        } else {
                            GateKind::Buf
                        }
                    }
                    _ => *rng.pick(&[GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor]),
                };
                // The pool of primary inputs whose preferred stable value
                // is this gate's non-controlling value.
                let pi_pool = match kind.noncontrolling_value() {
                    Some(pdf_logic::Value::One) => &high_pref,
                    Some(pdf_logic::Value::Zero) => &low_pref,
                    _ => &high_pref,
                };
                let mut fanin: Vec<String> = Vec::with_capacity(arity);
                // First fanin from the previous level keeps the level honest.
                fanin.push(rng.pick(&by_level[level - 1]).clone());
                while fanin.len() < arity {
                    // Extra fanins are the future *off-path* inputs of long
                    // paths. Robust testability requires them to be
                    // stabilizable, so besides the adjacent-level share
                    // they come from polarity-matched primary inputs or
                    // shallow side logic (levels close to the inputs),
                    // mirroring the control signals that feed the data
                    // paths of real circuits.
                    let cand = if rng.chance(self.pi_bias) {
                        rng.pick(pi_pool).clone()
                    } else if rng.chance(self.adjacent_bias) {
                        rng.pick(&by_level[level - 1]).clone()
                    } else {
                        let src_level = rng.next_below(level.min(4));
                        rng.pick(&by_level[src_level]).clone()
                    };
                    if !fanin.contains(&cand) {
                        fanin.push(cand);
                    } else {
                        // Collision: fall back to any earlier level.
                        let alt_level = rng.next_below(level);
                        let alt = rng.pick(&by_level[alt_level]).clone();
                        if !fanin.contains(&alt) {
                            fanin.push(alt);
                        } else {
                            break; // accept reduced arity rather than loop
                        }
                    }
                }
                let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
                b.gate(kind, &name, &refs);
                for f in &fanin {
                    used.insert(f.clone());
                }
                this_level.push(name);
            }
            by_level.push(this_level);
        }

        // Redundancy gadgets (see `with_redundant_gadgets`): an obfuscated
        // buffer `z ≡ a` plus a carrier pair that pins `a` and `z` to
        // conflicting off-path requirements on every path through `g2`'s
        // `w` side. Drawn after the main body so profiles with zero
        // gadgets consume an identical random stream.
        for gi in 0..self.redundant_gadgets {
            let draw = |rng: &mut SplitMix64, shallow: bool| -> String {
                let level = if shallow {
                    rng.next_below(levels / 2 + 1)
                } else {
                    levels
                };
                rng.pick(&by_level[level]).clone()
            };
            let s = draw(&mut rng, true);
            let a = {
                let mut a = draw(&mut rng, true);
                for _ in 0..8 {
                    if a != s {
                        break;
                    }
                    a = draw(&mut rng, true);
                }
                a
            };
            let w = {
                let mut w = draw(&mut rng, false);
                for _ in 0..8 {
                    if w != s && w != a {
                        break;
                    }
                    w = draw(&mut rng, false);
                }
                w
            };
            if a == s || w == s || w == a {
                continue; // degenerate draw (tiny circuit): skip the gadget
            }
            let n = |part: &str| format!("red{gi}_{part}");
            let (ns, u, o1, o2, z, g1, g2) =
                (n("ns"), n("u"), n("o1"), n("o2"), n("z"), n("g1"), n("g2"));
            b.gate(GateKind::Not, &ns, &[&s]);
            b.gate(GateKind::And, &u, &[&s, &ns]);
            b.gate(GateKind::Or, &o1, &[&s, &u, &a]);
            b.gate(GateKind::Or, &o2, &[&ns, &u, &a]);
            b.gate(GateKind::And, &z, &[&o1, &o2]);
            b.gate(GateKind::Or, &g1, &[&w, &a]);
            b.gate(GateKind::And, &g2, &[&g1, &z]);
            b.output(&g2);
            for sig in [s, a, w] {
                used.insert(sig);
            }
        }

        // Unused primary inputs: mop them up through fresh OR gates so the
        // line-level invariant (every non-output line has fanout) holds.
        let mut mop = 0usize;
        for i in 0..self.inputs {
            let name = format!("i{i}");
            if !used.contains(&name) {
                let partner = by_level[levels][rng.next_below(by_level[levels].len())].clone();
                let mop_name = format!("mop{mop}");
                mop += 1;
                b.gate(GateKind::Or, &mop_name, &[&name, &partner]);
                used.insert(name);
                used.insert(partner);
                b.output(&mop_name);
            }
        }

        // Every unused gate output becomes a primary output.
        for level in by_level.iter().skip(1) {
            for g in level {
                if !used.contains(g) {
                    b.output(g);
                }
            }
        }

        b.finish()
            .expect("generated netlist is valid by construction")
    }
}

/// A named stand-in profile for one of the paper's benchmark circuits.
///
/// Returns `None` for unknown names. Recognized names: `s641`, `s953`,
/// `s1196`, `s1423`, `s1488`, `b03`, `b04`, `b09`, `s1423*`, `s5378*`,
/// `s9234*` (the `*` variants model the resynthesized circuits of the
/// paper's reference \[13\]).
///
/// Any recognized name also accepts a `+r` suffix (e.g. `b03+r`): the
/// same profile with redundancy gadgets injected
/// ([`SynthProfile::with_redundant_gadgets`], one per ~120 gates, at
/// least two). The plain stand-ins are structurally irredundant, which
/// real benchmarks are not; the `+r` variants restore a population of
/// genuinely untestable faults that only case-splitting static analysis
/// can eliminate.
///
/// Gate counts for the two largest stand-ins (`s5378*`, `s9234*`) are
/// scaled to roughly half of the originals to keep full-table regeneration
/// tractable on one core; the long-path fault populations still exceed the
/// paper's `N_P0 = 1000` threshold, which is what the experiments bind on.
#[must_use]
pub fn stand_in_profile(name: &str) -> Option<SynthProfile> {
    if let Some(base) = name.strip_suffix("+r") {
        let p = stand_in_profile(base)?;
        let gadgets = (p.gates / 120).max(2);
        let mut p = p.with_redundant_gadgets(gadgets);
        p.name = name.to_string();
        return Some(p);
    }
    let p = match name {
        // ISCAS-89 cores. Depth/bias tuned so the cumulative fault counts
        // N_p(L_i) cross 1000 after roughly the paper's i0 length classes.
        "s641" => SynthProfile::new("s641", 0x641)
            .with_inputs(54)
            .with_gates(400)
            .with_levels(42)
            .with_adjacent_bias(0.05)
            .with_arity3_share(0.10)
            .with_inverter_share(0.18)
            .with_pi_bias(0.85),
        "s953" => SynthProfile::new("s953", 0x953)
            .with_inputs(45)
            .with_gates(440)
            .with_levels(18)
            .with_adjacent_bias(0.25)
            .with_arity3_share(0.20)
            .with_inverter_share(0.10)
            .with_pi_bias(0.5),
        "s1196" => SynthProfile::new("s1196", 0x1196)
            .with_inputs(32)
            .with_gates(550)
            .with_levels(24)
            .with_adjacent_bias(0.05)
            .with_arity3_share(0.25)
            .with_inverter_share(0.08)
            .with_pi_bias(0.8),
        "s1423" => SynthProfile::new("s1423", 0x1423)
            .with_inputs(91)
            .with_gates(660)
            .with_levels(48)
            .with_adjacent_bias(0.04)
            .with_arity3_share(0.12)
            .with_inverter_share(0.15)
            .with_pi_bias(0.88),
        "s1488" => SynthProfile::new("s1488", 0x1488)
            .with_inputs(14)
            .with_gates(650)
            .with_levels(11)
            .with_adjacent_bias(0.25)
            .with_arity3_share(0.30)
            .with_inverter_share(0.05)
            .with_pi_bias(0.55),
        // ITC-99 cores.
        "b03" => SynthProfile::new("b03", 0xB03)
            .with_inputs(34)
            .with_gates(160)
            .with_levels(13)
            .with_adjacent_bias(0.45)
            .with_arity3_share(0.18)
            .with_inverter_share(0.12)
            .with_pi_bias(0.5),
        "b04" => SynthProfile::new("b04", 0xB04)
            .with_inputs(77)
            .with_gates(650)
            .with_levels(16)
            .with_adjacent_bias(0.35)
            .with_arity3_share(0.25)
            .with_inverter_share(0.08)
            .with_pi_bias(0.45),
        "b09" => SynthProfile::new("b09", 0xB09)
            .with_inputs(29)
            .with_gates(160)
            .with_levels(10)
            .with_adjacent_bias(0.4)
            .with_arity3_share(0.20)
            .with_inverter_share(0.10)
            .with_pi_bias(0.5),
        // Resynthesized, more testable versions (paper's reference [13]).
        "s1423*" => SynthProfile::new("s1423*", 0x1423F)
            .with_inputs(91)
            .with_gates(700)
            .with_levels(30)
            .with_adjacent_bias(0.05)
            .with_arity3_share(0.15)
            .with_inverter_share(0.10)
            .with_pi_bias(0.85),
        "s5378*" => SynthProfile::new("s5378*", 0x5378F)
            .with_inputs(120)
            .with_gates(1000)
            .with_levels(18)
            .with_adjacent_bias(0.3)
            .with_arity3_share(0.20)
            .with_inverter_share(0.10)
            .with_pi_bias(0.5),
        "s9234*" => SynthProfile::new("s9234*", 0x9234F)
            .with_inputs(140)
            .with_gates(1200)
            .with_levels(20)
            .with_adjacent_bias(0.3)
            .with_arity3_share(0.20)
            .with_inverter_share(0.10)
            .with_pi_bias(0.5),
        _ => return None,
    };
    Some(p)
}

/// The circuits of the paper's Tables 3–5 and 7 (eight stand-ins).
pub const TABLE3_CIRCUITS: [&str; 8] = [
    "s641", "s953", "s1196", "s1423", "s1488", "b03", "b04", "b09",
];

/// The circuits of the paper's Table 6 (the eight above plus the three
/// resynthesized ones).
pub const TABLE6_CIRCUITS: [&str; 11] = [
    "s641", "s953", "s1196", "s1423", "s1488", "b03", "b04", "b09", "s1423*", "s5378*", "s9234*",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = stand_in_profile("b03").unwrap();
        let a = p.generate();
        let b = p.generate();
        assert_eq!(a.gate_count(), b.gate_count());
        let ca = a.to_circuit().unwrap();
        let cb = b.to_circuit().unwrap();
        assert_eq!(ca.line_count(), cb.line_count());
        assert_eq!(ca.path_count(), cb.path_count());
        // Spot-check the actual structure, not just the sizes.
        for (ga, gb) in a.gates().iter().zip(b.gates()) {
            assert_eq!(ga, gb);
        }
    }

    #[test]
    fn all_stand_ins_build_valid_circuits() {
        for name in TABLE6_CIRCUITS {
            let p = stand_in_profile(name).unwrap();
            let n = p.generate();
            let c = n.to_circuit().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(c.inputs().len() >= 2, "{name}");
            assert!(!c.outputs().is_empty(), "{name}");
            assert!(
                c.path_count() >= 1000,
                "{name}: only {} paths — the paper restricts itself to \
                 circuits with at least 1000 paths",
                c.path_count()
            );
        }
    }

    #[test]
    fn depth_tracks_level_parameter() {
        for (name, min_depth) in [("s641", 42), ("s1423", 48), ("s1488", 11)] {
            let c = stand_in_profile(name)
                .unwrap()
                .generate()
                .to_circuit()
                .unwrap();
            // Critical delay counts lines (gates + branches + the input), so
            // it is at least levels + 1.
            assert!(
                c.critical_delay() as usize > min_depth,
                "{name}: critical delay {} vs levels {min_depth}",
                c.critical_delay()
            );
        }
    }

    #[test]
    fn unknown_stand_in_is_none() {
        assert!(stand_in_profile("c6288").is_none());
        assert!(stand_in_profile("c6288+r").is_none());
    }

    #[test]
    fn redundant_variant_injects_gadgets() {
        let plain = stand_in_profile("b03").unwrap().generate();
        let red = stand_in_profile("b03+r").unwrap().generate();
        assert!(red.gate_count() > plain.gate_count());
        let c = red.to_circuit().unwrap();
        assert!(c.path_count() >= 1000, "{}", c.path_count());
        // The plain profile stays byte-identical: no gadget names appear.
        assert!(plain
            .gates()
            .iter()
            .all(|g| !plain.signal_name(g.output).starts_with("red")));
    }

    #[test]
    fn no_parity_gates_generated() {
        for name in TABLE6_CIRCUITS {
            let n = stand_in_profile(name).unwrap().generate();
            assert!(n.gates().iter().all(|g| !g.kind.is_parity()), "{name}");
        }
    }

    #[test]
    fn gate_counts_match_profiles_roughly() {
        let n = stand_in_profile("s1423").unwrap().generate();
        // Mop-up gates may add a handful beyond the profile's gate count.
        // Wide-input profiles add up to one mop-up gate per unused input.
        assert!((660..=760).contains(&n.gate_count()), "{}", n.gate_count());
    }
}
