//! Reference benchmark circuits.
//!
//! [`s27`] reproduces, line for line, the combinational logic of ISCAS-89
//! `s27` exactly as numbered in Figure 1 of Pomeranz & Reddy (DATE 2002):
//! lines 1–7 are the (pseudo) primary inputs, lines 8–26 the gate stems and
//! fanout branches, and lines 15, 24, 25 and 26 the (pseudo) primary
//! outputs. Because [`LineId`](crate::LineId) displays 1-based, paths print
//! with the paper's numbers — e.g. the slow-to-rise example path
//! `(2,9,10,15)`.
//!
//! The mapping to the original gate names is:
//!
//! | paper line | signal | function |
//! |-----------:|--------|----------|
//! | 1–4        | G0–G3  | primary inputs |
//! | 5–7        | G5–G7  | flip-flop outputs (pseudo inputs) |
//! | 8          | G14    | `NOT(1)` |
//! | 9          | G12    | `NOR(2,7)` |
//! | 10, 11     | —      | branches of 9 (to 15, to 18) |
//! | 12, 13     | —      | branches of 8 (to 25, to 14) |
//! | 14         | G8     | `AND(13,6)` |
//! | 15         | G13    | `NOR(3,10)` — pseudo output |
//! | 16, 17     | —      | branches of 14 (to 19, to 18) |
//! | 18         | G15    | `OR(11,17)` |
//! | 19         | G16    | `OR(4,16)` |
//! | 20         | G9     | `NAND(19,18)` |
//! | 21         | G11    | `NOR(5,20)` |
//! | 22, 23, 24 | —      | branches of 21 (to 25, to 26, pseudo output) |
//! | 25         | G10    | `NOR(12,22)` — pseudo output |
//! | 26         | G17    | `NOT(23)` — primary output |

use pdf_logic::GateKind;

use crate::{parse_bench_named, Circuit, CircuitBuilder, Netlist};

/// The original sequential `s27` in `.bench` form.
pub const S27_BENCH: &str = "\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// The sequential gate-level `s27` netlist (4 inputs, 1 output, 3
/// flip-flops, 10 gates).
///
/// # Panics
///
/// Never — the embedded text is valid by construction (covered by tests).
#[must_use]
pub fn s27_netlist() -> Netlist {
    parse_bench_named(S27_BENCH, "s27", "embedded:s27").expect("embedded s27 is valid")
}

/// The combinational logic of `s27` at the line level, with lines numbered
/// exactly as in the paper's Figure 1 (paper line *k* is
/// `LineId::new(k - 1)`).
///
/// ```
/// use pdf_netlist::{iscas::s27, LineId};
///
/// let c = s27();
/// assert_eq!(c.line_count(), 26);
/// // Line 9 is the NOR(2,7) stem (signal G12).
/// assert_eq!(c.line(LineId::new(8)).name(), "G12");
/// // The longest path of s27 has 10 lines.
/// assert_eq!(c.critical_delay(), 10);
/// ```
#[must_use]
pub fn s27() -> Circuit {
    let mut b = CircuitBuilder::new("s27");
    // Lines 1-7: inputs G0-G3 (primary) and G5-G7 (flip-flop outputs).
    let l1 = b.input("G0");
    let l2 = b.input("G1");
    let l3 = b.input("G2");
    let l4 = b.input("G3");
    let l5 = b.input("G5");
    let l6 = b.input("G6");
    let l7 = b.input("G7");
    // Line 8: G14 = NOT(G0).
    let l8 = b.gate("G14", GateKind::Not, &[l1]);
    // Line 9: G12 = NOR(G1, G7).
    let l9 = b.gate("G12", GateKind::Nor, &[l2, l7]);
    // Lines 10, 11: branches of 9 into G13 (line 15) and G15 (line 18).
    let l10 = b.branch("G12->G13", l9);
    let l11 = b.branch("G12->G15", l9);
    // Lines 12, 13: branches of 8 into G10 (line 25) and G8 (line 14).
    let l12 = b.branch("G14->G10", l8);
    let l13 = b.branch("G14->G8", l8);
    // Line 14: G8 = AND(G14, G6).
    let l14 = b.gate("G8", GateKind::And, &[l13, l6]);
    // Line 15: G13 = NOR(G2, G12) — flip-flop data input, pseudo output.
    let l15 = b.gate("G13", GateKind::Nor, &[l3, l10]);
    // Lines 16, 17: branches of 14 into G16 (line 19) and G15 (line 18).
    let l16 = b.branch("G8->G16", l14);
    let l17 = b.branch("G8->G15", l14);
    // Line 18: G15 = OR(G12, G8).
    let l18 = b.gate("G15", GateKind::Or, &[l11, l17]);
    // Line 19: G16 = OR(G3, G8).
    let l19 = b.gate("G16", GateKind::Or, &[l4, l16]);
    // Line 20: G9 = NAND(G16, G15).
    let l20 = b.gate("G9", GateKind::Nand, &[l19, l18]);
    // Line 21: G11 = NOR(G5, G9).
    let l21 = b.gate("G11", GateKind::Nor, &[l5, l20]);
    // Lines 22, 23, 24: branches of 21 into G10 (line 25), G17 (line 26),
    // and the flip-flop data sink (pseudo output).
    let l22 = b.branch("G11->G10", l21);
    let l23 = b.branch("G11->G17", l21);
    let l24 = b.branch("G11->out", l21);
    // Line 25: G10 = NOR(G14, G11) — pseudo output.
    let l25 = b.gate("G10", GateKind::Nor, &[l12, l22]);
    // Line 26: G17 = NOT(G11) — the primary output.
    let l26 = b.gate("G17", GateKind::Not, &[l23]);

    b.mark_output(l15);
    b.mark_output(l24);
    b.mark_output(l25);
    b.mark_output(l26);
    b.finish().expect("hand-built s27 is valid")
}

/// The ISCAS-85 `c17` circuit in `.bench` form (the classic 6-NAND
/// example), useful as a tiny purely combinational playground.
pub const C17_BENCH: &str = "\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// The `c17` circuit at the line level.
///
/// # Panics
///
/// Never — the embedded text is valid by construction (covered by tests).
#[must_use]
pub fn c17() -> Circuit {
    parse_bench_named(C17_BENCH, "c17", "embedded:c17")
        .expect("embedded c17 is valid")
        .to_circuit()
        .expect("c17 is purely combinational")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_values, LineId};
    use pdf_logic::Value;

    /// Paper line number -> LineId.
    fn line(k: usize) -> LineId {
        LineId::new(k - 1)
    }

    #[test]
    fn s27_has_paper_structure() {
        let c = s27();
        assert_eq!(c.line_count(), 26);
        assert_eq!(c.inputs().len(), 7);
        assert_eq!(c.outputs(), &[line(15), line(24), line(25), line(26)]);
        assert_eq!(c.gate_count(), 10);
        assert_eq!(c.branch_count(), 9);
        assert_eq!(c.critical_delay(), 10);
    }

    #[test]
    fn s27_longest_path_is_the_papers() {
        // (1,8,13,14,16,19,20,21,22,25) has 10 lines; verify connectivity.
        let c = s27();
        let seq = [1usize, 8, 13, 14, 16, 19, 20, 21, 22, 25];
        for w in seq.windows(2) {
            let from = line(w[0]);
            let to = line(w[1]);
            assert!(
                c.line(to).fanin().contains(&from),
                "line {} must feed line {}",
                w[0],
                w[1]
            );
        }
        assert!(c.line(line(25)).is_output());
    }

    #[test]
    fn s27_matches_bench_parsed_version_structurally() {
        let hand = s27();
        let parsed = s27_netlist().combinational_core().to_circuit().unwrap();
        assert_eq!(hand.line_count(), parsed.line_count());
        assert_eq!(hand.gate_count(), parsed.gate_count());
        assert_eq!(hand.branch_count(), parsed.branch_count());
        assert_eq!(hand.path_count(), parsed.path_count());
        assert_eq!(hand.critical_delay(), parsed.critical_delay());
    }

    #[test]
    fn s27_hand_built_is_logic_equivalent_to_parsed() {
        let hand = s27();
        let parsed = s27_netlist().combinational_core().to_circuit().unwrap();
        // Hand-built input order: G0 G1 G2 G3 G5 G6 G7.
        // Parsed core input order: G0 G1 G2 G3 then dff outputs G5 G6 G7.
        let out_hand: Vec<_> = ["G13", "G11->out", "G10", "G17"]
            .iter()
            .map(|n| hand.find_line(n).unwrap())
            .collect();
        let out_parsed: Vec<_> = ["G13", "G11->out", "G10", "G17"]
            .iter()
            .map(|n| parsed.find_line(n).unwrap())
            .collect();
        for bits in 0..128u32 {
            let inputs: Vec<Value> = (0..7).map(|i| Value::from(bits >> i & 1 == 1)).collect();
            let vh = simulate_values(&hand, &inputs);
            let vp = simulate_values(&parsed, &inputs);
            for (h, p) in out_hand.iter().zip(&out_parsed) {
                assert_eq!(vh[h.index()], vp[p.index()], "bits={bits:07b}");
            }
        }
    }

    #[test]
    fn s27_fanout_branches_follow_paper_numbering() {
        let c = s27();
        // 10, 11 branch from 9; 12, 13 from 8; 16, 17 from 14; 22-24 from 21.
        for (br, stem) in [
            (10, 9),
            (11, 9),
            (12, 8),
            (13, 8),
            (16, 14),
            (17, 14),
            (22, 21),
            (23, 21),
            (24, 21),
        ] {
            assert_eq!(c.line(line(br)).fanin(), &[line(stem)], "branch {br}");
        }
    }

    #[test]
    fn c17_parses_and_evaluates() {
        let c = c17();
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        let o22 = c.find_line("22").unwrap();
        // 22 = NAND(10, 16); with all inputs 0: 10 = NAND(0,0) = 1,
        // 11 = 1, 16 = NAND(0,1) = 1, so 22 = NAND(1,1) = 0.
        let vals = simulate_values(&c, &[Value::Zero; 5]);
        assert_eq!(vals[o22.index()], Value::Zero);
    }

    #[test]
    fn c17_has_eleven_paths() {
        // Known: c17 has 11 physical paths.
        assert_eq!(c17().path_count(), 11);
    }
}
