//! Gate-level netlist substrate with explicit fanout-branch lines.
//!
//! This crate provides the circuit model underneath the path delay fault
//! ATPG workspace:
//!
//! * [`Netlist`] — gate-level, named-signal netlists with flip-flops, as
//!   parsed from ISCAS-style `.bench` files ([`parse_bench`]);
//! * [`Circuit`] — the *line-level* expansion used for path analysis:
//!   every fanout branch is a distinct line, matching the classical path
//!   delay fault model and the numbering used by Pomeranz & Reddy
//!   (DATE 2002);
//! * scalar and two-pattern hazard-conservative simulation
//!   ([`simulate_values`], [`simulate_triples`]);
//! * reference circuits ([`iscas::s27`] reproduces the paper's Figure 1
//!   exactly) and deterministic synthetic benchmark stand-ins
//!   ([`SynthProfile`], [`stand_in_profile`]).
//!
//! # Example: from `.bench` text to a line-level circuit
//!
//! ```
//! let text = "\
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(z)
//! q = DFF(m)
//! m = NAND(a, q)
//! z = NOR(m, b)
//! ";
//! let netlist = pdf_netlist::parse_bench(text, "demo")?;
//! // Flip-flops out, pseudo inputs/outputs in:
//! let core = netlist.combinational_core();
//! let circuit = core.to_circuit().unwrap();
//! assert_eq!(circuit.inputs().len(), 3);  // a, b, q
//! assert_eq!(circuit.outputs().len(), 2); // z, m (flip-flop data)
//! # Ok::<(), pdf_netlist::BenchParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod circuit;
mod dot;
pub mod iscas;
mod netlist;
mod rng;
mod sim;
mod synth;

pub use bench::{
    parse_bench, parse_bench_file, parse_bench_named, to_bench_string, BenchParseError,
    NetlistParseError,
};
pub use circuit::{Circuit, CircuitBuilder, CircuitError, Line, LineId, LineKind};
pub use dot::to_dot;
pub use netlist::{Dff, Driver, Gate, Netlist, NetlistBuilder, NetlistError, SignalId};
pub use rng::SplitMix64;
pub use sim::{simulate_triples, simulate_triples_into, simulate_values, TwoPattern};
pub use synth::{stand_in_profile, SynthProfile, TABLE3_CIRCUITS, TABLE6_CIRCUITS};

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use crate::iscas::s27;
    pub use crate::{
        parse_bench, simulate_triples, simulate_values, Circuit, CircuitBuilder, LineId, Netlist,
        NetlistBuilder, SplitMix64, SynthProfile, TwoPattern,
    };
}
