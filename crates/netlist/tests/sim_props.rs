//! Circuit-level property tests: simulation monotonicity (refining the
//! inputs never flips a specified line value) and structural invariants
//! of the branch expansion.

use proptest::prelude::*;

use pdf_logic::Value;
use pdf_netlist::{simulate_triples, simulate_values, Circuit, LineKind, SynthProfile, TwoPattern};

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (3usize..8, 10usize..50, 3usize..7, any::<u64>()).prop_map(|(inputs, gates, levels, seed)| {
        SynthProfile::new("sim", seed)
            .with_inputs(inputs)
            .with_gates(gates)
            .with_levels(levels)
            .generate()
            .to_circuit()
            .expect("generated netlists are valid")
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::Zero), Just(Value::One), Just(Value::X)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulation_is_monotone_in_input_specification(
        (c, partial, fill) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            (
                Just(c),
                proptest::collection::vec((arb_value(), arb_value()), n),
                proptest::collection::vec((any::<bool>(), any::<bool>()), n),
            )
        })
    ) {
        // Build a partial test and a full refinement of it.
        let coarse = TwoPattern::new(
            partial.iter().map(|p| p.0).collect(),
            partial.iter().map(|p| p.1).collect(),
        );
        let refine = |v: Value, b: bool| if v.is_specified() { v } else { Value::from(b) };
        let fine = TwoPattern::new(
            partial.iter().zip(&fill).map(|(p, f)| refine(p.0, f.0)).collect(),
            partial.iter().zip(&fill).map(|(p, f)| refine(p.1, f.1)).collect(),
        );
        let coarse_waves = simulate_triples(&c, &coarse.to_triples());
        let fine_waves = simulate_triples(&c, &fine.to_triples());
        for i in 0..c.line_count() {
            let a = coarse_waves[i];
            let b = fine_waves[i];
            for (x, y) in a.components().iter().zip(b.components().iter()) {
                prop_assert!(
                    !x.is_specified() || x == y,
                    "line {i}: {a} not refined by {b}"
                );
            }
        }
    }

    #[test]
    fn branches_always_mirror_their_stems(
        (c, test) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            let t = proptest::collection::vec((any::<bool>(), any::<bool>()), n)
                .prop_map(|bits| TwoPattern::new(
                    bits.iter().map(|b| Value::from(b.0)).collect(),
                    bits.iter().map(|b| Value::from(b.1)).collect(),
                ));
            (Just(c), t)
        })
    ) {
        let waves = simulate_triples(&c, &test.to_triples());
        for (id, line) in c.iter() {
            if let LineKind::Branch { stem } = line.kind() {
                prop_assert_eq!(waves[id.index()], waves[stem.index()]);
            }
        }
    }

    #[test]
    fn fully_specified_inputs_fully_specify_first_and_last(
        (c, test) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            let t = proptest::collection::vec((any::<bool>(), any::<bool>()), n)
                .prop_map(|bits| TwoPattern::new(
                    bits.iter().map(|b| Value::from(b.0)).collect(),
                    bits.iter().map(|b| Value::from(b.1)).collect(),
                ));
            (Just(c), t)
        })
    ) {
        let waves = simulate_triples(&c, &test.to_triples());
        let v1 = simulate_values(&c, test.first());
        let v2 = simulate_values(&c, test.second());
        for i in 0..c.line_count() {
            prop_assert!(waves[i].first().is_specified());
            prop_assert!(waves[i].last().is_specified());
            prop_assert_eq!(waves[i].first(), v1[i]);
            prop_assert_eq!(waves[i].last(), v2[i]);
        }
    }

    #[test]
    fn stable_equal_patterns_make_every_line_stable(
        (c, bits) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            (Just(c), proptest::collection::vec(any::<bool>(), n))
        })
    ) {
        // Applying the same vector twice: nothing can glitch anywhere.
        let v: Vec<Value> = bits.iter().map(|&b| Value::from(b)).collect();
        let test = TwoPattern::new(v.clone(), v);
        let waves = simulate_triples(&c, &test.to_triples());
        for (i, w) in waves.iter().enumerate() {
            prop_assert!(w.is_stable(), "line {i}: {w}");
        }
    }

    #[test]
    fn structural_counts_are_conserved(c in arb_circuit()) {
        // inputs + gates + branches = lines; every sink of a multi-sink
        // stem is a branch.
        prop_assert_eq!(
            c.inputs().len() + c.gate_count() + c.branch_count(),
            c.line_count()
        );
        for (_, line) in c.iter() {
            let branch_outs = line
                .fanout()
                .iter()
                .filter(|&&f| c.line(f).kind().is_branch())
                .count();
            if line.fanout().len() > 1 && !line.kind().is_branch() {
                prop_assert_eq!(branch_outs, line.fanout().len());
            }
        }
    }
}
