//! Malformed-netlist corpus: every corruption class a `.bench` reader
//! meets in the wild must be rejected with located, token-bearing
//! diagnostics — through both the text-level and the file-level parser.

use pdf_netlist::{parse_bench, parse_bench_file, parse_bench_named, BenchParseError};

const GOOD: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(z)
m = AND(a, b)
z = NOT(m)
";

/// Each corpus entry: a label, the corrupted text, the expected 1-based
/// line (None for netlist-level failures detected after parsing) and a
/// token the diagnostic must name.
fn corpus() -> Vec<(&'static str, String, Option<usize>, &'static str)> {
    vec![
        (
            "truncated line",
            GOOD.replace("m = AND(a, b)", "m = AND(a,"),
            Some(4),
            "m = AND(a,",
        ),
        (
            "unknown gate",
            GOOD.replace("AND", "MAJORITY"),
            Some(4),
            "MAJORITY",
        ),
        (
            "dangling fanout",
            GOOD.replace("m = AND(a, b)", "m = AND(a, ghost)"),
            None,
            "ghost",
        ),
        (
            "duplicate driver",
            format!("{GOOD}z = AND(a, b)\n"),
            None,
            "z",
        ),
    ]
}

#[test]
fn the_good_text_is_good() {
    assert!(parse_bench(GOOD, "good").is_ok());
}

#[test]
fn corpus_is_rejected_with_context_by_the_text_parser() {
    for (label, text, line, token) in corpus() {
        let err = parse_bench_named(&text, "bad", "corpus.bench")
            .expect_err(&format!("{label}: must not parse"));
        assert_eq!(err.source_name(), "corpus.bench", "{label}");
        assert_eq!(err.line(), line, "{label}: wrong line");
        assert_eq!(err.token(), Some(token), "{label}: wrong token");
        let rendered = err.to_string();
        assert!(
            rendered.starts_with("corpus.bench"),
            "{label}: diagnostic must lead with the source: {rendered}"
        );
        assert!(
            rendered.contains(token),
            "{label}: diagnostic must name the token: {rendered}"
        );
        if let Some(line) = line {
            assert!(
                rendered.contains(&format!(":{line}:")),
                "{label}: diagnostic must name the line: {rendered}"
            );
        }
    }
}

#[test]
fn corpus_is_rejected_with_context_by_the_file_parser() {
    let dir = std::env::temp_dir();
    for (i, (label, text, line, token)) in corpus().into_iter().enumerate() {
        let path = dir.join(format!("pdf_malformed_{}_{i}.bench", std::process::id()));
        std::fs::write(&path, &text).unwrap();
        let err = parse_bench_file(&path).expect_err(&format!("{label}: must not parse"));
        assert_eq!(err.source_name(), path.display().to_string(), "{label}");
        assert_eq!(err.line(), line, "{label}: wrong line");
        assert_eq!(err.token(), Some(token), "{label}: wrong token");
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn missing_file_is_an_io_diagnostic() {
    let err = parse_bench_file(std::path::Path::new("/nonexistent/void.bench")).unwrap_err();
    assert!(err.line().is_none());
    let rendered = err.to_string();
    assert!(
        rendered.contains("/nonexistent/void.bench") && rendered.contains("cannot read"),
        "{rendered}"
    );
}

#[test]
fn typed_variants_survive_the_wrapping() {
    // The low-level error stays reachable for callers that match on it.
    let err = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n", "t").unwrap_err();
    assert!(matches!(err, BenchParseError::BadDffArity { line: 3 }));
    let wrapped = pdf_netlist::NetlistParseError::from_bench("t.bench", &err);
    assert_eq!(wrapped.line(), Some(3));
    assert_eq!(wrapped.token(), None);
    assert_eq!(
        wrapped.to_string(),
        "t.bench:3: DFF must have exactly one input"
    );
}
