//! Exact (branch-and-bound) justification.
//!
//! The paper attributes the small run-to-run variations of its results to
//! the random choices of the simulation-based justification procedure and
//! notes they "can be eliminated by using a branch-and-bound procedure".
//! This module provides that alternative: a complete search over the
//! pattern values of the cone's primary inputs, pruned by the
//! [`Implicator`](pdf_faults::Implicator)'s three-valued implications.
//!
//! Unlike [`Justifier`](crate::Justifier), the outcome is definitive:
//! satisfiable (with a witness test), unsatisfiable, or — since robust
//! justification is NP-hard in general — a node-limit abort.

use pdf_faults::{Assignments, Implicator};
use pdf_logic::{Triple, Value};
use pdf_netlist::{Circuit, LineId, TwoPattern};

/// The definitive result of an exact justification.
#[derive(Clone, Debug)]
pub enum ExactOutcome {
    /// A witness test exists; inputs outside the requirement cone are
    /// filled with 0.
    Satisfiable(TwoPattern),
    /// No two-pattern test satisfies the requirements.
    Unsatisfiable,
    /// The search exceeded its node limit before deciding.
    LimitExceeded,
}

impl ExactOutcome {
    /// Returns the witness test, if satisfiable.
    #[must_use]
    pub fn test(&self) -> Option<&TwoPattern> {
        match self {
            ExactOutcome::Satisfiable(t) => Some(t),
            _ => None,
        }
    }

    /// Returns `true` for [`ExactOutcome::Satisfiable`].
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, ExactOutcome::Satisfiable(_))
    }
}

/// A complete, deterministic justification engine.
///
/// # Example
///
/// ```
/// use pdf_atpg::ExactJustifier;
/// use pdf_faults::{robust_assignments, PathDelayFault, Polarity};
/// use pdf_netlist::{iscas::s27, LineId};
/// use pdf_paths::Path;
///
/// let circuit = s27();
/// let path: Path = [2usize, 9, 10, 15].iter().map(|&k| LineId::new(k - 1)).collect();
/// let fault = PathDelayFault::new(path, Polarity::SlowToRise);
/// let a = robust_assignments(&circuit, &fault)?;
/// let outcome = ExactJustifier::new(&circuit).justify(&a);
/// assert!(outcome.is_satisfiable());
/// # Ok::<(), pdf_faults::ConditionError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ExactJustifier<'c> {
    circuit: &'c Circuit,
    node_limit: usize,
}

impl<'c> ExactJustifier<'c> {
    /// Creates an engine with a 100 000-node default limit.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> ExactJustifier<'c> {
        ExactJustifier {
            circuit,
            node_limit: 100_000,
        }
    }

    /// Sets the node (decision) limit.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> ExactJustifier<'c> {
        self.node_limit = limit.max(1);
        self
    }

    /// Decides whether a two-pattern test satisfying `req` exists.
    #[must_use]
    pub fn justify(&self, req: &Assignments) -> ExactOutcome {
        // Cone primary inputs: only they influence the constrained lines.
        let cone_pis = cone_inputs(self.circuit, req);
        let Ok(imp) = Implicator::from_assignments(self.circuit, req) else {
            return ExactOutcome::Unsatisfiable;
        };
        let mut nodes = 0usize;
        match self.search(req, &cone_pis, imp, &mut nodes) {
            Search::Found(test) => ExactOutcome::Satisfiable(test),
            Search::Exhausted => ExactOutcome::Unsatisfiable,
            Search::Limit => ExactOutcome::LimitExceeded,
        }
    }

    fn search(
        &self,
        req: &Assignments,
        cone_pis: &[LineId],
        imp: Implicator<'c>,
        nodes: &mut usize,
    ) -> Search {
        // Find the next undecided (input, pattern) slot.
        let next = cone_pis.iter().find_map(|&pi| {
            let v = imp.value(pi);
            if !v.first().is_specified() {
                Some((pi, 0))
            } else if !v.last().is_specified() {
                Some((pi, 2))
            } else {
                None
            }
        });
        let Some((pi, slot)) = next else {
            // Fully decided. The implication state asserts the
            // requirements rather than deriving them, so the leaf must be
            // validated by an actual hazard-conservative simulation of the
            // candidate test.
            let test = self.witness(cone_pis, &imp);
            let waves = pdf_netlist::simulate_triples(self.circuit, &test.to_triples());
            if req.satisfied_by(&waves) {
                return Search::Found(test);
            }
            return Search::Exhausted;
        };
        *nodes += 1;
        if *nodes > self.node_limit {
            return Search::Limit;
        }
        for value in [Value::Zero, Value::One] {
            let v = imp.value(pi);
            let triple = if slot == 0 {
                Triple::new(value, v.mid(), v.last())
            } else {
                Triple::new(v.first(), v.mid(), value)
            };
            let mut child = imp.clone();
            if child.assign(pi, triple).is_ok() && child.propagate().is_ok() {
                match self.search(req, cone_pis, child, nodes) {
                    Search::Exhausted => {}
                    other => return other,
                }
            }
        }
        Search::Exhausted
    }

    fn witness(&self, cone_pis: &[LineId], imp: &Implicator<'c>) -> TwoPattern {
        let inputs = self.circuit.inputs();
        let mut v1 = vec![Value::Zero; inputs.len()];
        let mut v2 = vec![Value::Zero; inputs.len()];
        for (slot, &input) in inputs.iter().enumerate() {
            if cone_pis.contains(&input) {
                let v = imp.value(input);
                v1[slot] = v.first();
                v2[slot] = v.last();
            }
        }
        TwoPattern::new(v1, v2)
    }
}

enum Search {
    Found(TwoPattern),
    Exhausted,
    Limit,
}

fn cone_inputs(circuit: &Circuit, req: &Assignments) -> Vec<LineId> {
    let mut member = vec![false; circuit.line_count()];
    let mut stack: Vec<LineId> = req.lines().collect();
    for &l in &stack {
        member[l.index()] = true;
    }
    while let Some(l) = stack.pop() {
        for &f in circuit.line(l).fanin() {
            if !member[f.index()] {
                member[f.index()] = true;
                stack.push(f);
            }
        }
    }
    circuit
        .inputs()
        .iter()
        .copied()
        .filter(|l| member[l.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Justifier;
    use pdf_faults::FaultList;
    use pdf_netlist::iscas::s27;
    use pdf_netlist::simulate_triples;
    use pdf_paths::PathEnumerator;

    #[test]
    fn exact_agrees_with_witness_simulation() {
        let c = s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        for e in faults.iter() {
            let outcome = ExactJustifier::new(&c).justify(&e.assignments);
            if let ExactOutcome::Satisfiable(test) = &outcome {
                let waves = simulate_triples(&c, &test.to_triples());
                assert!(
                    e.assignments.satisfied_by(&waves),
                    "witness for {} must detect it",
                    e.fault
                );
            }
        }
    }

    #[test]
    fn exact_dominates_randomized_engine() {
        // Whatever the randomized engine justifies, the exact engine must
        // agree is satisfiable.
        let c = s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        let mut j = Justifier::new(&c, 13).with_attempts(2);
        for e in faults.iter() {
            if j.justify(&e.assignments).is_some() {
                assert!(
                    ExactJustifier::new(&c)
                        .justify(&e.assignments)
                        .is_satisfiable(),
                    "{}",
                    e.fault
                );
            }
        }
    }

    #[test]
    fn unsatisfiable_requirements_proven() {
        let c = s27();
        let mut req = Assignments::new();
        // Line 8 = NOT(line 1): both stable 1 is impossible.
        req.require(LineId::new(0), Triple::STABLE1).unwrap();
        req.require(LineId::new(7), Triple::STABLE1).unwrap();
        assert!(matches!(
            ExactJustifier::new(&c).justify(&req),
            ExactOutcome::Unsatisfiable
        ));
    }

    #[test]
    fn node_limit_reported() {
        let c = s27();
        // An empty requirement is instantly satisfiable even at limit 1.
        let req = Assignments::new();
        let out = ExactJustifier::new(&c).with_node_limit(1).justify(&req);
        assert!(out.is_satisfiable());
    }
}
